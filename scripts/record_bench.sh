#!/usr/bin/env sh
# Append this build's simulation-core bench numbers to BENCH_core.json.
#
#   scripts/record_bench.sh [build_dir] [bench args...]
#
# Runs bench_micro_eventloop --json from <build_dir> (default: build) and
# appends an entry {label, date, results: [...]} to BENCH_core.json at the
# repo root, keeping the file one JSON array with one entry per recording
# (typically one per PR). Extra args (e.g. --quick) pass through.
#
# Environment overrides:
#   BENCH_BIN    bench binary name (default: bench_micro_eventloop) — any
#                bench emitting a JSON array under --json works, e.g.
#                BENCH_BIN=bench_ext_collab
#   BENCH_LABEL  entry label (default: short git hash)
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
[ $# -gt 0 ] && shift
OUT="$ROOT/BENCH_core.json"
BENCH="$BUILD_DIR/${BENCH_BIN:-bench_micro_eventloop}"

if [ ! -x "$BENCH" ]; then
  echo "record_bench.sh: $BENCH not found or not executable" >&2
  echo "  (build it first: cmake --build $BUILD_DIR --target ${BENCH_BIN:-bench_micro_eventloop})" >&2
  exit 1
fi

LABEL=${BENCH_LABEL:-$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)}
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT
{
  printf '{"label": "%s", "date": "%s", "results":\n' "$LABEL" "$DATE"
  "$BENCH" --json "$@"
  printf '}\n'
} > "$TMP"

if [ -f "$OUT" ]; then
  # Drop the closing "]" and append the new entry after a comma.
  sed -i '$d' "$OUT"
  printf ',\n' >> "$OUT"
else
  printf '[\n' > "$OUT"
fi
cat "$TMP" >> "$OUT"
printf ']\n' >> "$OUT"

echo "recorded $LABEL -> $OUT"
