#!/usr/bin/env bash
# End-to-end daemon smoke: launch agard, drive it with agarctl over the
# Unix-domain socket, verify the metrics dump matches an in-process run of
# the same replayed stream, and exercise a SIGHUP reload under live load.
#
#   scripts/daemon_smoke.sh <build_dir> <label>
#
# Artifacts (eq_spec_<label>.json, daemon_metrics_<label>.json, ...) land
# in the current directory so CI can upload them.
set -eu

cd "$(dirname "$0")/.."

BUILD=${1:?usage: daemon_smoke.sh <build_dir> <label>}
LABEL=${2:-daemon}
SOCK="/tmp/agard_${LABEL}_$$.sock"
CFG="/tmp/agard_${LABEL}_$$.json"
AGARD_PID=""

cleanup() {
  [ -n "$AGARD_PID" ] && kill "$AGARD_PID" 2>/dev/null
  rm -f "$CFG" "$SOCK"
  return 0
}
trap cleanup EXIT

cp examples/specs/daemon_routes.json "$CFG"
"$BUILD/agard" --config "$CFG" --listen "$SOCK" &
AGARD_PID=$!

ctl() { "$BUILD/agarctl" --socket "$SOCK" "$@"; }

for _ in $(seq 1 100); do
  ctl ping >/dev/null 2>&1 && break
  sleep 0.1
done
ctl ping

# --- Equivalence: replay the hot route's exact clients=1 stream over the
# socket, drain, and diff the daemon's metrics dump against the in-process
# run of the very spec the daemon reports for that route. planning_ms is
# planner wall clock — the one legitimately nondeterministic field.
ctl spec-of hot > "eq_spec_${LABEL}.json"
ctl load --replay-spec "eq_spec_${LABEL}.json" --tag hot --json \
  > "daemon_load_${LABEL}.json"
ctl drain
ctl metrics --results-only > "daemon_metrics_${LABEL}.json"
"$BUILD/example_agar_cli" --spec "eq_spec_${LABEL}.json" --json \
  > "daemon_inproc_${LABEL}.json"

python3 - "$LABEL" <<'EOF'
import json, re, sys
label = sys.argv[1]
norm = lambda t: re.sub(r'"planning_ms": [^,}]*', '"planning_ms": 0', t)
daemon = json.loads(norm(open(f"daemon_metrics_{label}.json").read()))
[entry] = json.loads(norm(open(f"daemon_inproc_{label}.json").read()))
match = [e for e in daemon if e["system"] == entry["system"]]
assert match, f"no daemon route served system {entry['system']!r}"
if match[0] != entry:
    for k in entry:
        if match[0].get(k) != entry.get(k):
            print(f"MISMATCH {k}:\n  daemon:     {match[0].get(k)}\n"
                  f"  in-process: {entry.get(k)}")
    sys.exit(1)
print(f"daemon metrics match the in-process run ({label})")
EOF

# --- Live reconfiguration: swap the default route lru -> arc via SIGHUP
# while a closed-loop load is in flight. The swap must become visible and
# the load must complete with zero failed or misrouted requests.
sed 's/"system": "lru"/"system": "arc"/' "$CFG" > "$CFG.tmp"
mv "$CFG.tmp" "$CFG"
ctl load --ops 30000 --clients 2 --json > "daemon_reload_load_${LABEL}.json" &
LOAD_PID=$!
sleep 0.1
kill -HUP "$AGARD_PID"
for _ in $(seq 1 100); do
  ctl routes | grep -q '"system": "arc"' && break
  sleep 0.1
done
ctl routes | grep -q '"system": "arc"'
wait "$LOAD_PID"

python3 - "$LABEL" <<'EOF'
import json, sys
label = sys.argv[1]
load = json.load(open(f"daemon_reload_load_{label}.json"))
assert load["ok"] == load["ops"], f"reload dropped requests: {load}"
print(f"SIGHUP reload dropped nothing: {load['ok']}/{load['ops']} ok ({label})")
EOF

ctl shutdown
wait "$AGARD_PID"
AGARD_PID=""
echo "daemon smoke (${LABEL}): OK"
