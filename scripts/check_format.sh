#!/usr/bin/env bash
# Formatting gate: run clang-format in diff mode over the C++ tree and fail
# if any file would change. Never rewrites files — CI and pre-commit safe.
#
# Usage:
#   scripts/check_format.sh            # check everything
#   scripts/check_format.sh --fix      # rewrite in place instead of checking
#   CLANG_FORMAT=clang-format-15 scripts/check_format.sh
#
# Exits 0 when clean, 1 when files need formatting, 0 with a notice when no
# clang-format binary is available (local containers without LLVM tools).
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for cand in clang-format clang-format-18 clang-format-17 clang-format-16 \
      clang-format-15 clang-format-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANG_FORMAT="$cand"
      break
    fi
  done
fi

if [ -z "$CLANG_FORMAT" ]; then
  echo "check_format: no clang-format binary found; skipping (not a failure)."
  echo "check_format: install clang-format or set CLANG_FORMAT to enforce."
  exit 0
fi

MODE="check"
if [ "${1:-}" = "--fix" ]; then
  MODE="fix"
fi

# Same file set the lint and tidy gates see. tests/lint fixtures are included
# on purpose: they are read by humans more than most files.
FILES=$(find src tests bench examples tools \
  \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) -type f 2>/dev/null | sort)

if [ -z "$FILES" ]; then
  echo "check_format: no C++ sources found."
  exit 0
fi

if [ "$MODE" = "fix" ]; then
  echo "$FILES" | xargs "$CLANG_FORMAT" -i
  echo "check_format: reformatted $(echo "$FILES" | wc -l) file(s)."
  exit 0
fi

STATUS=0
BAD=""
for f in $FILES; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    BAD="$BAD $f"
    STATUS=1
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "check_format: files need formatting:"
  for f in $BAD; do
    echo "  $f"
  done
  echo "check_format: run scripts/check_format.sh --fix"
  exit 1
fi

echo "check_format: $(echo "$FILES" | wc -l) file(s) clean ($CLANG_FORMAT)."
exit 0
