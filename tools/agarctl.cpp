// agarctl — control CLI and load generator for a running agard.
//
//   $ ./agarctl --socket /tmp/agard.sock ping
//   $ ./agarctl --socket /tmp/agard.sock get --tag hot object17
//   $ ./agarctl --socket /tmp/agard.sock load --ops 2000 --clients 4 --json
//   $ ./agarctl --socket /tmp/agard.sock load --rate 500 --ops 1000
//   $ ./agarctl --socket /tmp/agard.sock load --replay-spec eq_spec.json
//   $ ./agarctl --socket /tmp/agard.sock metrics --results-only
//
// Load modes: closed-loop (each client issues its next read when the
// previous completes — the paper's YCSB shape) and open-loop (wall-clock
// Poisson arrivals at --rate req/s, dispatched to a connection pool).
// --replay-spec replays the exact key stream of a runs=1 clients=1
// experiment spec, which is what lets CI diff the daemon's metrics dump
// against an in-process run of the same spec.
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment_spec.hpp"
#include "client/workload.hpp"
#include "daemon/client.hpp"
#include "stats/histogram.hpp"

using namespace agar;

namespace {

void usage() {
  std::cout <<
      "agarctl -- control CLI and load generator for agard\n"
      "\n"
      "connection (before the command):\n"
      "  --socket <path>       Unix-domain socket (default /tmp/agard.sock)\n"
      "  --tcp <host:port>     TCP instead of UDS\n"
      "\n"
      "commands:\n"
      "  ping                  liveness probe\n"
      "  get [--tag T] [--payload] <key>   one routed read\n"
      "  load [options]        closed/open-loop load generator (below)\n"
      "  metrics [--results-only]          JSON metrics dump\n"
      "  reload [path]         reload routing config (empty = start path)\n"
      "  routes                routing-table summary\n"
      "  spec-of <route>       the route's ExperimentSpec JSON\n"
      "  drain                 run each route to its next window boundary\n"
      "  repair [route]        scan-and-repair backend stripes\n"
      "  shutdown              graceful stop\n"
      "\n"
      "load options:\n"
      "  --ops <n>             total requests (default 1000)\n"
      "  --clients <n>         concurrent connections (default 1)\n"
      "  --rate <r>            open-loop Poisson arrivals/s (0 = closed loop)\n"
      "  --tag <t>             routing tag on every request\n"
      "  --objects <n>         key universe object0..N-1 (default 300)\n"
      "  --workload <w>        'uniform' or a zipf skew like '1.1'\n"
      "  --seed <n>            RNG seed (default 42)\n"
      "  --replay-spec <file>  replay the exact key stream of a runs=1\n"
      "                        clients=1 spec (forces closed loop, 1 client)\n"
      "  --payload             fetch payload bytes, not just telemetry\n"
      "  --json                machine-readable summary\n";
}

int fail(const std::string& message) {
  std::cerr << "agarctl: " << message << "\n";
  return 2;
}

struct Endpoint {
  std::string socket_path = "/tmp/agard.sock";
  std::string tcp_host;
  std::uint16_t tcp_port = 0;

  [[nodiscard]] daemon::DaemonClient connect() const {
    if (!tcp_host.empty()) {
      return daemon::DaemonClient::connect_tcp(tcp_host, tcp_port);
    }
    return daemon::DaemonClient::connect_uds(socket_path);
  }
};

/// Print a control reply; nonzero exit on a non-ok status.
int finish(const daemon::ControlReply& reply) {
  if (!reply.text.empty()) {
    std::cout << reply.text;
    if (reply.text.back() != '\n') std::cout << "\n";
  }
  if (reply.status != daemon::Status::kOk) {
    std::cerr << "agarctl: " << daemon::to_string(reply.status) << "\n";
    return 1;
  }
  return 0;
}

struct LoadOptions {
  std::size_t ops = 1000;
  std::size_t clients = 1;
  double rate = 0.0;  ///< arrivals/s; 0 = closed loop
  std::string tag;
  std::size_t objects = 300;
  client::WorkloadSpec workload = client::WorkloadSpec::zipfian(1.1);
  std::uint64_t seed = 42;
  bool payload = false;
  bool json = false;
};

struct LoadTotals {
  std::mutex mutex;
  stats::Histogram wall_ms;
  stats::Histogram virtual_ms;
  std::uint64_t ok = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t no_route = 0;
  std::uint64_t unknown_key = 0;
  std::uint64_t full_hits = 0;
  std::uint64_t partial_hits = 0;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void account(LoadTotals& totals, const daemon::GetResponse& response,
             double wall_elapsed_ms) {
  const std::lock_guard<std::mutex> lock(totals.mutex);
  totals.wall_ms.add(wall_elapsed_ms);
  switch (response.status) {
    case daemon::Status::kOk:
      ++totals.ok;
      totals.virtual_ms.add(response.virtual_ms);
      if (response.hit == daemon::HitKind::kFull) ++totals.full_hits;
      if (response.hit == daemon::HitKind::kPartial) ++totals.partial_hits;
      break;
    case daemon::Status::kFailedRead:
      ++totals.failed_reads;
      break;
    case daemon::Status::kNoRoute:
      ++totals.no_route;
      break;
    case daemon::Status::kUnknownKey:
      ++totals.unknown_key;
      break;
    default:
      break;
  }
}

void print_summary(const LoadOptions& options, LoadTotals& totals,
                   double wall_s) {
  const std::uint64_t total = totals.ok + totals.failed_reads +
                              totals.no_route + totals.unknown_key;
  const double rps = wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0;
  if (options.json) {
    std::cout << "{\"ops\": " << total << ", \"ok\": " << totals.ok
              << ", \"failed_reads\": " << totals.failed_reads
              << ", \"no_route\": " << totals.no_route
              << ", \"unknown_key\": " << totals.unknown_key
              << ", \"full_hits\": " << totals.full_hits
              << ", \"partial_hits\": " << totals.partial_hits
              << ", \"wall_s\": " << wall_s << ", \"requests_per_s\": " << rps
              << ", \"wall_ms\": {\"mean\": " << totals.wall_ms.mean()
              << ", \"p50\": " << totals.wall_ms.percentile(50)
              << ", \"p99\": " << totals.wall_ms.percentile(99)
              << "}, \"virtual_ms\": {\"mean\": " << totals.virtual_ms.mean()
              << ", \"p50\": " << totals.virtual_ms.percentile(50)
              << ", \"p99\": " << totals.virtual_ms.percentile(99) << "}}\n";
    return;
  }
  std::cout << total << " requests in " << wall_s << " s (" << rps
            << " req/s)\n"
            << "  ok " << totals.ok << ", failed " << totals.failed_reads
            << ", no-route " << totals.no_route << ", unknown-key "
            << totals.unknown_key << "\n"
            << "  wall    p50 " << totals.wall_ms.percentile(50) << " ms, p99 "
            << totals.wall_ms.percentile(99) << " ms\n"
            << "  virtual p50 " << totals.virtual_ms.percentile(50)
            << " ms, p99 " << totals.virtual_ms.percentile(99) << " ms\n"
            << "  hits full " << totals.full_hits << ", partial "
            << totals.partial_hits << "\n";
}

int run_closed_loop(const Endpoint& endpoint, const LoadOptions& options) {
  LoadTotals totals;
  std::atomic<bool> aborted{false};
  std::string first_error;
  std::mutex error_mutex;

  const double t0 = now_s();
  std::vector<std::thread> workers;
  workers.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    // Lane split mirrors the runner: client 0 absorbs the remainder.
    const std::size_t budget = options.ops / options.clients +
                               (c == 0 ? options.ops % options.clients : 0);
    workers.emplace_back([&, c, budget] {
      try {
        daemon::DaemonClient connection = endpoint.connect();
        // Per-client key stream, seeded exactly as the runner seeds its
        // closed-loop clients — one client replays a clients=1 run.
        client::Workload workload(
            options.workload, options.objects,
            client::workload_stream_seed(options.seed, 0, c));
        for (std::size_t i = 0; i < budget && !aborted.load(); ++i) {
          const std::string key = workload.next_key();
          const double start = now_s();
          const daemon::GetResponse response =
              connection.get(options.tag, key, options.payload);
          account(totals, response, (now_s() - start) * 1000.0);
        }
      } catch (const std::exception& e) {
        aborted.store(true);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.empty()) first_error = e.what();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s = now_s() - t0;
  if (aborted.load()) return fail("load aborted: " + first_error);
  print_summary(options, totals, wall_s);
  return 0;
}

int run_open_loop(const Endpoint& endpoint, const LoadOptions& options) {
  LoadTotals totals;
  std::atomic<bool> aborted{false};
  std::string first_error;
  std::mutex error_mutex;

  // Arrivals are timestamped by the Poisson process; workers pull them
  // from a queue, so latency includes any wait for a free connection —
  // the open-loop property (load keeps arriving while reads are slow).
  struct Arrival {
    std::string key;
    double due_s = 0.0;
  };
  std::deque<Arrival> queue;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  bool done_producing = false;

  std::vector<std::thread> workers;
  workers.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    workers.emplace_back([&] {
      try {
        daemon::DaemonClient connection = endpoint.connect();
        while (true) {
          Arrival arrival;
          {
            std::unique_lock<std::mutex> lock(queue_mutex);
            queue_cv.wait(lock, [&] {
              return !queue.empty() || done_producing || aborted.load();
            });
            if (queue.empty()) return;
            arrival = std::move(queue.front());
            queue.pop_front();
          }
          const daemon::GetResponse response =
              connection.get(options.tag, arrival.key, options.payload);
          account(totals, response, (now_s() - arrival.due_s) * 1000.0);
        }
      } catch (const std::exception& e) {
        aborted.store(true);
        queue_cv.notify_all();
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.empty()) first_error = e.what();
      }
    });
  }

  client::Workload workload(options.workload, options.objects,
                            client::workload_stream_seed(options.seed, 0, 0));
  std::mt19937_64 gaps(options.seed ^ 0x9E3779B97F4A7C15ULL);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double mean_gap_s = 1.0 / options.rate;
  const double t0 = now_s();
  double next_due = t0;
  for (std::size_t i = 0; i < options.ops && !aborted.load(); ++i) {
    const double wait_s = next_due - now_s();
    if (wait_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      queue.push_back(Arrival{workload.next_key(), next_due});
    }
    queue_cv.notify_one();
    next_due += -mean_gap_s * std::log(1.0 - uniform(gaps));
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    done_producing = true;
  }
  queue_cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  const double wall_s = now_s() - t0;
  if (aborted.load()) return fail("load aborted: " + first_error);
  print_summary(options, totals, wall_s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint endpoint;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  std::size_t at = 0;
  auto next_value = [&](const std::string& flag) -> std::string {
    if (at >= args.size()) {
      std::cerr << "agarctl: " << flag << " needs a value\n";
      std::exit(2);
    }
    return args[at++];
  };

  try {
    // Connection flags precede the command.
    while (at < args.size() && args[at].rfind("--", 0) == 0) {
      const std::string arg = args[at++];
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--socket") {
        endpoint.socket_path = next_value(arg);
      } else if (arg == "--tcp") {
        const std::string spec = next_value(arg);
        const std::size_t colon = spec.rfind(':');
        if (colon == std::string::npos) {
          return fail("--tcp needs host:port");
        }
        endpoint.tcp_host = spec.substr(0, colon);
        endpoint.tcp_port =
            static_cast<std::uint16_t>(std::stoul(spec.substr(colon + 1)));
      } else {
        usage();
        return fail("unknown flag " + arg + " before the command");
      }
    }
    if (at >= args.size()) {
      usage();
      return fail("missing command");
    }
    const std::string command = args[at++];

    if (command == "ping") {
      return finish(endpoint.connect().ping());
    } else if (command == "metrics") {
      bool results_only = false;
      while (at < args.size()) {
        if (args[at] == "--results-only") {
          results_only = true;
          ++at;
        } else {
          return fail("unknown metrics flag " + args[at]);
        }
      }
      return finish(endpoint.connect().metrics(results_only));
    } else if (command == "reload") {
      const std::string path = at < args.size() ? args[at++] : "";
      return finish(endpoint.connect().reload(path));
    } else if (command == "routes") {
      return finish(endpoint.connect().routes());
    } else if (command == "spec-of") {
      if (at >= args.size()) return fail("spec-of needs a route name");
      return finish(endpoint.connect().spec_of(args[at]));
    } else if (command == "drain") {
      return finish(endpoint.connect().drain());
    } else if (command == "repair") {
      const std::string route = at < args.size() ? args[at++] : "";
      return finish(endpoint.connect().repair(route));
    } else if (command == "shutdown") {
      return finish(endpoint.connect().shutdown());
    } else if (command == "get") {
      std::string tag;
      bool payload = false;
      std::string key;
      while (at < args.size()) {
        const std::string arg = args[at++];
        if (arg == "--tag") {
          tag = next_value(arg);
        } else if (arg == "--payload") {
          payload = true;
        } else if (key.empty()) {
          key = arg;
        } else {
          return fail("get takes one key");
        }
      }
      if (key.empty()) return fail("get needs a key");
      daemon::DaemonClient connection = endpoint.connect();
      const daemon::GetResponse response = connection.get(tag, key, payload);
      std::cout << "status=" << daemon::to_string(response.status)
                << " hit="
                << (response.hit == daemon::HitKind::kFull
                        ? "full"
                        : (response.hit == daemon::HitKind::kPartial
                               ? "partial"
                               : "miss"))
                << " degraded=" << (response.degraded ? "true" : "false")
                << " route=" << response.route
                << " virtual_ms=" << response.virtual_ms
                << " wall_us=" << response.wall_us
                << " payload_bytes=" << response.payload.size() << "\n";
      return response.status == daemon::Status::kOk ? 0 : 1;
    } else if (command == "load") {
      LoadOptions options;
      std::string replay_spec;
      while (at < args.size()) {
        const std::string arg = args[at++];
        if (arg == "--ops") {
          options.ops = std::stoul(next_value(arg));
        } else if (arg == "--clients") {
          options.clients = std::max<std::size_t>(
              1, std::stoul(next_value(arg)));
        } else if (arg == "--rate") {
          options.rate = std::stod(next_value(arg));
        } else if (arg == "--tag") {
          options.tag = next_value(arg);
        } else if (arg == "--objects") {
          options.objects = std::stoul(next_value(arg));
        } else if (arg == "--workload") {
          const std::string w = next_value(arg);
          options.workload = w == "uniform"
                                 ? client::WorkloadSpec::uniform()
                                 : client::WorkloadSpec::zipfian(std::stod(
                                       w.rfind("zipf:", 0) == 0 ? w.substr(5)
                                                                : w));
        } else if (arg == "--seed") {
          options.seed = std::stoull(next_value(arg));
        } else if (arg == "--replay-spec") {
          replay_spec = next_value(arg);
        } else if (arg == "--payload") {
          options.payload = true;
        } else if (arg == "--json") {
          options.json = true;
        } else {
          return fail("unknown load flag " + arg);
        }
      }
      if (!replay_spec.empty()) {
        // Exact replay of a batch run's key stream: the spec must be a
        // single runs=1 clients=1 closed-loop experiment, and the workload
        // shape comes from the spec, not the CLI flags.
        const auto specs = api::load_spec_file(replay_spec);
        if (specs.size() != 1) {
          return fail("--replay-spec needs exactly one spec (got " +
                      std::to_string(specs.size()) + ")");
        }
        const api::ExperimentSpec& spec = specs.front();
        const auto& experiment = spec.experiment;
        if (experiment.runs != 1 || experiment.num_clients != 1 ||
            experiment.arrival_rate_per_s > 0.0) {
          return fail("--replay-spec needs runs=1 clients=1 closed loop");
        }
        options.ops = experiment.ops_per_run;
        options.clients = 1;
        options.rate = 0.0;
        options.objects = experiment.deployment.num_objects;
        options.workload = experiment.workload;
        options.seed = experiment.deployment.seed;
      }
      return options.rate > 0.0 ? run_open_loop(endpoint, options)
                                : run_closed_loop(endpoint, options);
    }
    usage();
    return fail("unknown command " + command);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
