// agard — the Agar data plane as a long-running daemon.
//
//   $ ./agard --config examples/specs/daemon_routes.json
//   $ ./agard --config routes.json --listen /tmp/agard.sock --foreground
//
// Requests arrive on a Unix-domain socket (plus an optional loopback TCP
// listener enabled by the config's "tcp_port") and are routed to
// registered strategies/engines purely by the declarative routing config.
// SIGHUP — or `agarctl reload` — re-reads the config without dropping
// in-flight requests; `agarctl shutdown` (or SIGTERM/SIGINT) stops it.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <iostream>
#include <string>

#include "daemon/server.hpp"

using namespace agar;

namespace {

// Write end of the server's wake pipe, published for the termination
// handler (only the async-signal-safe write(2) happens there).
std::atomic<int> g_stop_fd{-1};

extern "C" void on_terminate(int) {
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'Q';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void usage() {
  std::cout <<
      "agard -- config-driven daemon front-end for the Agar data plane\n"
      "\n"
      "  --config <file.json>  routing config (required); see\n"
      "                        examples/specs/daemon_routes.json\n"
      "  --listen <path>       UDS path (overrides the config's \"listen\")\n"
      "  --no-sighup           do not install the SIGHUP reload handler\n"
      "  --print-socket        print the bound UDS path once serving\n"
      "\n"
      "Control the running daemon with agarctl (ping, get, load, metrics,\n"
      "reload, routes, spec-of, drain, repair, shutdown).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string listen_override;
  bool install_sighup = true;
  bool print_socket = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "agard: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--config") {
      config_path = next("--config");
    } else if (arg == "--listen") {
      listen_override = next("--listen");
    } else if (arg == "--no-sighup") {
      install_sighup = false;
    } else if (arg == "--print-socket") {
      print_socket = true;
    } else {
      usage();
      std::cerr << "agard: unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (config_path.empty()) {
    usage();
    std::cerr << "agard: --config is required\n";
    return 2;
  }

  try {
    daemon::DaemonConfig config = daemon::load_daemon_config(config_path);
    daemon::ServerOptions options;
    options.config_path = config_path;
    options.listen_override = listen_override;
    options.install_sighup = install_sighup;
    daemon::Server server(std::move(config), std::move(options));
    server.start();

    g_stop_fd.store(server.stop_fd(), std::memory_order_relaxed);
    struct sigaction action{};
    action.sa_handler = on_terminate;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    if (print_socket) {
      std::cout << server.socket_path() << "\n" << std::flush;
    }
    server.wait();
    g_stop_fd.store(-1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    std::cerr << "agard: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
