// Fig. 9: cumulative distribution of object popularity for Zipfian
// workloads with skews 0.5 / 0.8 / 1.1 / 1.4 — the share of all requests
// captured by the x most popular objects (x up to 50, as in the paper).
#include <iostream>

#include "client/report.hpp"
#include "client/workload.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 9", "cumulative popularity of Zipfian workloads",
      "300 objects; CDF of the analytic distribution (and what the "
      "generator actually samples)");

  const std::vector<double> skews = {0.5, 0.8, 1.1, 1.4};
  std::vector<client::ZipfianGenerator> gens;
  for (const double s : skews) gens.emplace_back(300, s);

  std::vector<std::string> headers = {"top-x objects"};
  for (const double s : skews) {
    headers.push_back("zipf " + client::fmt_ms(s));
  }
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t x : {1u, 5u, 10u, 15u, 20u, 25u, 30u, 40u, 50u}) {
    std::vector<std::string> row = {std::to_string(x)};
    for (const auto& g : gens) {
      row.push_back(client::fmt_pct(g.cdf(x - 1)));
    }
    rows.push_back(std::move(row));
  }
  std::cout << client::format_table(headers, rows);

  // Sanity: sampled frequencies match the analytic CDF.
  client::ZipfianGenerator gen(300, 1.1);
  Rng rng(5);
  std::vector<std::size_t> counts(300, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.next_index(rng)];
  std::size_t top5 = 0;
  for (int i = 0; i < 5; ++i) top5 += counts[i];
  std::cout << "\nsampled top-5 share at skew 1.1: "
            << client::fmt_pct(static_cast<double>(top5) / n)
            << " (analytic " << client::fmt_pct(gen.cdf(4)) << ")\n";

  std::cout << "paper example: x = 5 at skew 1.1 captures ~40% of "
               "requests.\n";
  return 0;
}
