// Fig. 2: average read latency while caching c in {0,1,3,5,7,9} chunks per
// object with an effectively infinite cache, clients in Frankfurt and
// Sydney.
//
// c = 0 is the Backend client; c > 0 is an LRU cache large enough to hold
// the whole working set (the paper's 500 MB memcached per region), so every
// read after the first is a (partial) hit with exactly c cached chunks.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 2", "latency vs number of chunks cached (infinite cache)",
      "300 x 1 MB objects, RS(9,3), zipf 1.1, 1000 reads x 5 runs, 500 MB "
      "cache");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "workload=zipf:1.1", "ops=1000",
       "runs=5"});

  for (const std::string region : {"frankfurt", "sydney"}) {
    std::vector<std::vector<std::string>> rows;
    for (const std::string c : {"0", "1", "3", "5", "7", "9"}) {
      const auto spec =
          c == "0" ? base.with({"system=backend", "region=" + region})
                   : base.with({"system=lru", "chunks=" + c,
                                "cache_bytes=500MB", "region=" + region});
      const auto report = api::run(spec);
      rows.push_back({c, client::fmt_ms(report.result.mean_latency_ms()),
                      client::fmt_pct(report.result.hit_ratio())});
    }
    std::cout << "client in " << region << ":\n"
              << client::format_table(
                     {"chunks cached", "avg latency (ms)", "hit ratio"},
                     rows)
              << "\n";
  }

  std::cout << "expected shape (paper): non-linear; little gain while the "
               "slowest remaining chunk dominates, plateau once nearby "
               "chunks dominate.\n";
  return 0;
}
