// Fig. 2: average read latency while caching c in {0,1,3,5,7,9} chunks per
// object with an effectively infinite cache, clients in Frankfurt and
// Sydney.
//
// c = 0 is the Backend client; c > 0 is an LRU cache large enough to hold
// the whole working set (the paper's 500 MB memcached per region), so every
// read after the first is a (partial) hit with exactly c cached chunks.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Fig. 2", "latency vs number of chunks cached (infinite cache)",
      "300 x 1 MB objects, RS(9,3), zipf 1.1, 1000 reads x 5 runs, 500 MB "
      "cache");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;

  const auto topology = sim::aws_six_regions();
  for (const RegionId region :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    config.client_region = region;
    std::vector<std::vector<std::string>> rows;
    for (const std::size_t c : {0u, 1u, 3u, 5u, 7u, 9u}) {
      const auto spec = c == 0 ? StrategySpec::backend()
                               : StrategySpec::lru(c, 500_MB);
      const auto result = run_experiment(config, spec);
      rows.push_back({std::to_string(c),
                      client::fmt_ms(result.mean_latency_ms()),
                      client::fmt_pct(result.hit_ratio())});
    }
    std::cout << "client in " << topology.name(region) << ":\n"
              << client::format_table(
                     {"chunks cached", "avg latency (ms)", "hit ratio"},
                     rows)
              << "\n";
  }

  std::cout << "expected shape (paper): non-linear; little gain while the "
               "slowest remaining chunk dominates, plateau once nearby "
               "chunks dominate.\n";
  return 0;
}
