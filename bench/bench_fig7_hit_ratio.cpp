// Fig. 7: hit ratio (full + partial hits over requests) for the same
// systems as Fig. 6.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Fig. 7", "hit ratio of Agar vs LRU/LFU",
      "300 x 1 MB, RS(9,3), zipf 1.1, 10 MB cache, 5 runs x 1000 reads; "
      "hit = all (full) or some (partial) chunks served from cache");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;
  config.reconfig_period_ms = 30'000.0;

  const std::size_t cache = 10_MB;
  std::vector<StrategySpec> specs = {StrategySpec::agar(cache)};
  for (const std::size_t c : {1u, 3u, 5u, 7u, 9u}) {
    specs.push_back(StrategySpec::lru(c, cache));
  }
  for (const std::size_t c : {1u, 3u, 5u, 7u, 9u}) {
    specs.push_back(StrategySpec::lfu(c, cache));
  }

  const auto topology = sim::aws_six_regions();
  for (const RegionId region :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    config.client_region = region;
    std::cout << "(" << (region == sim::region::kFrankfurt ? "a" : "b")
              << ") clients in " << topology.name(region) << ":\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& spec : specs) {
      const auto result = run_experiment(config, spec);
      rows.push_back({spec.label(), client::fmt_pct(result.hit_ratio()),
                      client::fmt_pct(result.full_hit_ratio()),
                      client::fmt_ms(result.mean_latency_ms())});
    }
    std::cout << client::format_table(
                     {"system", "hit ratio", "full hits", "avg ms"}, rows)
              << "\n";
  }

  std::cout << "expected shape (paper): fewer chunks per object -> higher "
               "hit ratio (up to ~76%) but worse latency; Agar sits above "
               "the 7/9-chunk policies on hits while winning on latency.\n";
  return 0;
}
