// Fig. 7: hit ratio (full + partial hits over requests) for the same
// systems as Fig. 6.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 7", "hit ratio of Agar vs LRU/LFU",
      "300 x 1 MB, RS(9,3), zipf 1.1, 10 MB cache, 5 runs x 1000 reads; "
      "hit = all (full) or some (partial) chunks served from cache");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "workload=zipf:1.1", "ops=1000",
       "runs=5", "period_s=30", "cache_bytes=10MB"});

  std::vector<api::ExperimentSpec> specs = {base.with({"system=agar"})};
  for (const std::string system : {"lru", "lfu"}) {
    for (const std::string c : {"1", "3", "5", "7", "9"}) {
      specs.push_back(base.with({"system=" + system, "chunks=" + c}));
    }
  }

  for (const std::string region : {"frankfurt", "sydney"}) {
    std::cout << "(" << (region == "frankfurt" ? "a" : "b") << ") clients in "
              << region << ":\n";
    std::vector<std::vector<std::string>> rows;
    for (auto& spec : specs) {
      spec.set("region", region);
      const auto report = api::run(spec);
      rows.push_back({report.label(),
                      client::fmt_pct(report.result.hit_ratio()),
                      client::fmt_pct(report.result.full_hit_ratio()),
                      client::fmt_ms(report.result.mean_latency_ms())});
    }
    std::cout << client::format_table(
                     {"system", "hit ratio", "full hits", "avg ms"}, rows)
              << "\n";
  }

  std::cout << "expected shape (paper): fewer chunks per object -> higher "
               "hit ratio (up to ~76%) but worse latency; Agar sits above "
               "the 7/9-chunk policies on hits while winning on latency.\n";
  return 0;
}
