// Extension: tail latency under gray failure — none vs retry vs hedge.
//
// The paper's evaluation assumes backends that are slow or fast but never
// *wrong*; real geo-distributed stores exhibit gray failure: a fraction of
// requests straggle at tens of times the healthy latency, or vanish
// entirely. This bench injects a persistent straggler tail on an on-path
// backend region and compares the three fetch policies on the
// metric gray failure actually moves: the high percentiles. Mean latency
// barely shifts; p99/p99.9 separate the policies cleanly — and not the
// way folklore says: naive timeout+retry *amplifies* the tail, hedging
// races the stragglers and wins.
//
//   $ ./bench_ext_tail [--quick] [--json]
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

namespace {

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    if (arg == "--quick") quick = true;
  }

  // Virginia sits on the cheapest-k read path for Frankfurt/Dublin
  // clients, so every read is exposed to its tail. The straggler field is
  // on for the whole run (stationary, so the percentiles are clean), and
  // the open-loop rate is low enough that the baseline tail is the
  // straggler cost itself, not queueing behind it.
  const auto base = api::ExperimentSpec::from_pairs({
      "system=agar",
      "regions=frankfurt,dublin",
      "cache_bytes=96KB",
      "objects=40",
      "object_bytes=9000",
      quick ? "ops=1200" : "ops=4000",
      "runs=1",
      "arrival_rate=4",
      "period_s=10",
      "seed=11",
      "scenario=0 straggle_region region=virginia frac=0.2 mult=30",
  });
  const std::vector<api::ExperimentSpec> specs = {
      base.with({"fetch=none"}),
      base.with({"fetch=retry"}),
      base.with({"fetch=hedge"}),
  };

  const auto reports = api::run_all(specs);
  if (json) {
    std::cout << client::results_json(api::results_of(reports));
    return 0;
  }

  client::print_experiment_banner(
      "Extension", "tail latency under gray failure (none/retry/hedge)",
      "RS(9,3), Frankfurt+Dublin clients, open loop 4/s; Virginia "
      "straggles 20% of requests at 30x for the whole run");

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : reports) {
    const auto& run = r.result.runs[0];
    rows.push_back({
        r.label(),
        client::fmt_ms(r.result.mean_latency_ms()),
        client::fmt_ms(r.result.percentile_ms(99)),
        client::fmt_ms(r.result.percentile_ms(99.9)),
        fmt_count(run.degraded_reads),
        fmt_count(run.failed_reads),
        fmt_count(run.fetch_timeouts),
        fmt_count(run.fetch_retries),
        fmt_count(run.hedges_won),
    });
  }
  std::cout << "latency by fetch policy (ms):\n"
            << client::format_table({"policy", "mean", "p99", "p99.9",
                                     "degraded", "failed", "timeouts",
                                     "retries", "hedges won"},
                                    rows);

  std::cout << "\ntakeaway: the straggler field multiplies the tail while "
               "barely moving the mean. Retry makes it worse: the timeout "
               "fires while the straggler still holds the wire, so each "
               "retry queues behind the very transfer it is trying to "
               "outrun, and exhausted arms pay a serial fallback on top. "
               "Hedging races the straggler from a clean start and "
               "recovers most of the healthy tail for a small "
               "duplicate-fetch cost.\n";
  return 0;
}
