// Fig. 6: average read latency of Agar vs LRU-{1,3,5,7,9}, LFU-{1,3,5,7,9}
// and Backend, clients in (a) Frankfurt and (b) Sydney.
//
// Paper setup: zipf 1.1, 10 MB cache (fits ten 9-chunk objects), 30 s
// reconfiguration period, averages of 5 runs x 1000 reads.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Fig. 6", "Agar vs LRU/LFU/Backend, average read latency",
      "300 x 1 MB, RS(9,3), zipf 1.1, 10 MB cache, 30 s reconfig, 5 runs x "
      "1000 reads");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;
  config.reconfig_period_ms = 30'000.0;

  const std::size_t cache = 10_MB;
  std::vector<StrategySpec> specs = {StrategySpec::agar(cache)};
  for (const std::size_t c : {1u, 3u, 5u, 7u, 9u}) {
    specs.push_back(StrategySpec::lru(c, cache));
  }
  for (const std::size_t c : {1u, 3u, 5u, 7u, 9u}) {
    specs.push_back(StrategySpec::lfu(c, cache));
  }
  specs.push_back(StrategySpec::backend());

  const auto topology = sim::aws_six_regions();
  for (const RegionId region :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    config.client_region = region;
    std::cout << "(" << (region == sim::region::kFrankfurt ? "a" : "b")
              << ") clients in " << topology.name(region) << ":\n";
    const auto results = run_comparison(config, specs);
    client::print_results_table(results);

    // Headline comparison: Agar vs the best static policy.
    const auto& agar = results.front();
    const client::ExperimentResult* best_static = nullptr;
    for (std::size_t i = 1; i + 1 < results.size(); ++i) {
      if (best_static == nullptr ||
          results[i].mean_latency_ms() < best_static->mean_latency_ms()) {
        best_static = &results[i];
      }
    }
    const double gain = 1.0 - agar.mean_latency_ms() /
                                  best_static->mean_latency_ms();
    std::cout << "Agar vs best static (" << best_static->spec.label()
              << "): " << client::fmt_pct(gain) << " lower latency\n\n";
  }

  std::cout << "paper: Agar 15% below LFU-7 at Frankfurt, 8.5% below LFU-9 "
               "at Sydney, 41% below LRU-1.\n";
  return 0;
}
