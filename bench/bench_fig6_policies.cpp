// Fig. 6: average read latency of Agar vs LRU-{1,3,5,7,9}, LFU-{1,3,5,7,9}
// and Backend, clients in (a) Frankfurt and (b) Sydney.
//
// Paper setup: zipf 1.1, 10 MB cache (fits ten 9-chunk objects), 30 s
// reconfiguration period, averages of 5 runs x 1000 reads.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 6", "Agar vs LRU/LFU/Backend, average read latency",
      "300 x 1 MB, RS(9,3), zipf 1.1, 10 MB cache, 30 s reconfig, 5 runs x "
      "1000 reads");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "workload=zipf:1.1", "ops=1000",
       "runs=5", "period_s=30"});

  std::vector<api::ExperimentSpec> specs = {
      base.with({"system=agar", "cache_bytes=10MB"})};
  for (const std::string system : {"lru", "lfu"}) {
    for (const std::string c : {"1", "3", "5", "7", "9"}) {
      specs.push_back(base.with(
          {"system=" + system, "chunks=" + c, "cache_bytes=10MB"}));
    }
  }
  specs.push_back(base.with({"system=backend"}));

  for (const std::string region : {"frankfurt", "sydney"}) {
    std::cout << "(" << (region == "frankfurt" ? "a" : "b") << ") clients in "
              << region << ":\n";
    for (auto& spec : specs) spec.set("region", region);
    const auto reports = api::run_all(specs);
    client::print_results_table(api::results_of(reports));

    // Headline comparison: Agar vs the best static policy.
    const auto& agar = reports.front();
    const api::RunReport* best_static = nullptr;
    for (std::size_t i = 1; i + 1 < reports.size(); ++i) {
      if (best_static == nullptr ||
          reports[i].result.mean_latency_ms() <
              best_static->result.mean_latency_ms()) {
        best_static = &reports[i];
      }
    }
    const double gain = 1.0 - agar.result.mean_latency_ms() /
                                  best_static->result.mean_latency_ms();
    std::cout << "Agar vs best static (" << best_static->label()
              << "): " << client::fmt_pct(gain) << " lower latency\n\n";
  }

  std::cout << "paper: Agar 15% below LFU-7 at Frankfurt, 8.5% below LFU-9 "
               "at Sydney, 41% below LRU-1.\n";
  return 0;
}
