// Ablation for §II-D's claim that greedy algorithms are a poor fit for the
// caching-options knapsack: compare the exact DP against a value-density
// greedy on (a) adversarial instances (greedy can lose ~50%) and (b) the
// realistic instances Agar's own option generator produces.
#include <cmath>
#include <iostream>
#include <map>

#include "client/report.hpp"
#include "client/runner.hpp"
#include "core/knapsack.hpp"

using namespace agar;
using core::CachingOption;

namespace {

CachingOption make_opt(const ObjectKey& key, std::size_t w, double v) {
  CachingOption o;
  o.key = key;
  o.weight = w;
  o.weight_units = w;
  o.value = v;
  return o;
}

}  // namespace

int main() {
  client::print_experiment_banner(
      "Ablation", "exact DP vs greedy knapsack (paper §II-D)",
      "adversarial instances + realistic zipf-shaped option sets");

  // (a) Adversarial: one tiny high-density option crowds out the big one.
  {
    std::vector<std::vector<CachingOption>> groups = {
        {make_opt("small", 1, 10.0)},
        {make_opt("large", 10, 99.0)},
    };
    const auto dp = core::solve_dp(groups, 10);
    const auto greedy = core::solve_greedy(groups, 10);
    std::cout << "adversarial 2-key instance: dp=" << dp.total_value
              << " greedy=" << greedy.total_value << " (greedy at "
              << client::fmt_pct(greedy.total_value / dp.total_value)
              << " of optimal)\n";
  }

  // (b) Realistic: Table-I improvement profile, zipf popularity, weights
  // {1,3,5,7,9}, sweeping the cache size.
  const std::vector<double> improvement = {2000, 2800, 3200, 3320, 3345};
  const std::vector<std::size_t> weights = {1, 3, 5, 7, 9};
  std::vector<std::vector<CachingOption>> groups;
  for (int key = 0; key < 300; ++key) {
    const double popularity =
        100.0 / std::pow(static_cast<double>(key + 1), 1.1);
    std::vector<CachingOption> group;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      group.push_back(make_opt("object" + std::to_string(key), weights[i],
                               popularity * improvement[i]));
    }
    groups.push_back(std::move(group));
  }

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t capacity : {9u, 45u, 90u, 180u, 450u, 900u}) {
    const auto dp = core::solve_dp(groups, capacity);
    const auto greedy = core::solve_greedy(groups, capacity);
    rows.push_back(
        {std::to_string(capacity) + " chunks",
         std::to_string(static_cast<long long>(dp.total_value)),
         std::to_string(static_cast<long long>(greedy.total_value)),
         client::fmt_pct(greedy.total_value / dp.total_value),
         std::to_string(dp.chosen.size()),
         std::to_string(greedy.chosen.size())});
  }
  std::cout << client::format_table({"capacity", "DP value", "greedy value",
                                     "greedy/optimal", "DP objects",
                                     "greedy objects"},
                                    rows);

  std::cout << "\ntakeaway: greedy tracks the DP on smooth zipf instances "
               "but collapses on boundary cases; the DP costs O(options x "
               "capacity) and is exact everywhere.\n";
  return 0;
}
