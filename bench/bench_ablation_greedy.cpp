// Ablation for §II-D's claim that greedy algorithms are a poor fit for the
// caching-options knapsack — now registry-driven: every planner registered
// in api::PlannerRegistry is compared against the exact DP on (a)
// adversarial instances (greedy can lose ~50%) and (b) the realistic
// instances Agar's own option generator produces, with per-plan timing.
// A newly registered planner shows up here with no edits.
#include <chrono>
#include <cmath>
#include <iostream>
#include <map>

#include "api/registry.hpp"
#include "client/report.hpp"
#include "client/runner.hpp"
#include "core/planner.hpp"

using namespace agar;
using core::CachingOption;

namespace {

CachingOption make_opt(const ObjectKey& key, std::size_t w, double v) {
  CachingOption o;
  o.key = key;
  o.weight = w;
  o.weight_units = w;
  o.value = v;
  return o;
}

std::unique_ptr<core::Planner> make_planner(const std::string& name) {
  return api::PlannerRegistry::instance().create(name, api::PlannerContext{},
                                                 api::ParamMap{});
}

double timed_plan_ms(core::Planner& planner,
                     const std::vector<std::vector<CachingOption>>& groups,
                     std::size_t capacity, core::KnapsackResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = planner.plan(groups, capacity);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string fmt_ms3(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

int main() {
  client::print_experiment_banner(
      "Ablation", "registered planners vs the exact DP (paper §II-D)",
      "adversarial instances + realistic zipf-shaped option sets, "
      "per-reconfiguration planning time");

  const auto planner_names = api::PlannerRegistry::instance().names();

  // (a) Adversarial: one tiny high-density option crowds out the big one.
  // Small enough for every planner, including the brute-force oracle.
  {
    const std::vector<std::vector<CachingOption>> groups = {
        {make_opt("small", 1, 10.0)},
        {make_opt("large", 10, 99.0)},
    };
    const double optimal = core::solve_dp(groups, 10).total_value;
    std::vector<std::vector<std::string>> rows;
    for (const auto& name : planner_names) {
      auto planner = make_planner(name);
      const auto r = planner->plan(groups, 10);
      rows.push_back({name, std::to_string(r.total_value),
                      client::fmt_pct(r.total_value / optimal)});
    }
    std::cout << "adversarial 2-key instance (greedy's classic failure):\n"
              << client::format_table({"planner", "value", "of optimal"},
                                      rows);
  }

  // (b) Realistic: Table-I improvement profile, zipf popularity, weights
  // {1,3,5,7,9}, sweeping the cache size. Brute force is exponential and
  // sits this one out.
  const std::vector<double> improvement = {2000, 2800, 3200, 3320, 3345};
  const std::vector<std::size_t> weights = {1, 3, 5, 7, 9};
  std::vector<std::vector<CachingOption>> groups;
  for (int key = 0; key < 300; ++key) {
    const double popularity =
        100.0 / std::pow(static_cast<double>(key + 1), 1.1);
    std::vector<CachingOption> group;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      group.push_back(make_opt("object" + std::to_string(key), weights[i],
                               popularity * improvement[i]));
    }
    groups.push_back(std::move(group));
  }

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t capacity : {9u, 45u, 90u, 180u, 450u, 900u}) {
    const double optimal = core::solve_dp(groups, capacity).total_value;
    for (const auto& name : planner_names) {
      if (name == "brute-force") continue;  // exponential oracle
      auto planner = make_planner(name);
      core::KnapsackResult r;
      const double ms = timed_plan_ms(*planner, groups, capacity, r);
      rows.push_back({std::to_string(capacity) + " chunks", name,
                      std::to_string(static_cast<long long>(r.total_value)),
                      client::fmt_pct(r.total_value / optimal),
                      std::to_string(r.chosen.size()), fmt_ms3(ms)});
    }
  }
  std::cout << "\nrealistic 300-object instances:\n"
            << client::format_table({"capacity", "planner", "value",
                                     "of optimal", "objects", "plan ms"},
                                    rows);

  // (c) The incremental planner's raison d'etre: after a full first plan,
  // steady-state re-plans with small popularity drift only touch dirty
  // keys and run far faster than re-running the full DP.
  {
    auto dp = make_planner("knapsack-dp");
    auto inc = make_planner("incremental");
    core::KnapsackResult r;
    (void)timed_plan_ms(*inc, groups, 900, r);  // warm start
    std::vector<std::vector<std::string>> replan_rows;
    for (int round = 1; round <= 3; ++round) {
      // ~1% drift per round: well under the 10% dirty threshold.
      for (auto& group : groups) {
        for (auto& o : group) o.value *= 1.01;
      }
      core::KnapsackResult rd, ri;
      const double dp_ms = timed_plan_ms(*dp, groups, 900, rd);
      const double inc_ms = timed_plan_ms(*inc, groups, 900, ri);
      replan_rows.push_back(
          {"drift round " + std::to_string(round), fmt_ms3(dp_ms),
           fmt_ms3(inc_ms),
           client::fmt_pct(ri.total_value / rd.total_value)});
    }
    std::cout << "\nwarm re-plan under 1% popularity drift (capacity 900):\n"
              << client::format_table({"round", "full DP ms",
                                       "incremental ms", "value vs DP"},
                                      replan_rows);
  }

  std::cout << "\ntakeaway: greedy tracks the DP on smooth zipf instances "
               "but collapses on boundary cases; the DP costs O(options x "
               "capacity) and is exact everywhere; incremental re-plans "
               "only drifted keys and approaches the DP's value at a "
               "fraction of its steady-state cost.\n";
  return 0;
}
