// Fig. 8b: average read latency while the workload varies: uniform, then
// Zipfian with skews 0.2 / 0.5 / 0.8 / 0.9 / 1.0 / 1.1 / 1.4. Clients in
// Frankfurt, 10 MB cache.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;
using client::WorkloadSpec;

int main() {
  client::print_experiment_banner(
      "Fig. 8b", "influence of the workload distribution",
      "300 x 1 MB, RS(9,3), Frankfurt, 10 MB cache, uniform + zipf sweeps");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.ops_per_run = 1000;
  config.runs = 5;
  config.client_region = sim::region::kFrankfurt;

  const std::size_t cache = 10_MB;
  const std::vector<StrategySpec> specs = {
      StrategySpec::agar(cache), StrategySpec::lru(5, cache),
      StrategySpec::lru(9, cache), StrategySpec::lfu(5, cache),
      StrategySpec::lfu(9, cache)};

  std::vector<WorkloadSpec> workloads = {WorkloadSpec::uniform()};
  for (const double skew : {0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4}) {
    workloads.push_back(WorkloadSpec::zipfian(skew));
  }

  // Backend reference (workload-independent).
  const auto backend = run_experiment(config, StrategySpec::backend());
  std::cout << "Backend reference: "
            << client::fmt_ms(backend.mean_latency_ms()) << " ms\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const auto& workload : workloads) {
    config.workload = workload;
    const auto results = run_comparison(config, specs);
    const double agar = results[0].mean_latency_ms();
    double best_static = results[1].mean_latency_ms();
    for (std::size_t i = 2; i < results.size(); ++i) {
      best_static = std::min(best_static, results[i].mean_latency_ms());
    }
    rows.push_back({workload.label(), client::fmt_ms(agar),
                    client::fmt_ms(results[1].mean_latency_ms()),
                    client::fmt_ms(results[2].mean_latency_ms()),
                    client::fmt_ms(results[3].mean_latency_ms()),
                    client::fmt_ms(results[4].mean_latency_ms()),
                    client::fmt_pct(1.0 - agar / best_static)});
  }
  std::cout << client::format_table(
      {"workload", "Agar", "LRU-5", "LRU-9", "LFU-5", "LFU-9", "Agar lead"},
      rows);

  std::cout << "\nexpected shape (paper): all systems equal under uniform/"
               "low skew; Agar's lead grows with skew (5.8% at 0.8 up to "
               "~15% at 1.1) and narrows again at 1.4 when the hot set "
               "fits any cache.\n";
  return 0;
}
