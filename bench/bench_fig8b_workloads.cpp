// Fig. 8b: average read latency while the workload varies: uniform, then
// Zipfian with skews 0.2 / 0.5 / 0.8 / 0.9 / 1.0 / 1.1 / 1.4. Clients in
// Frankfurt, 10 MB cache.
//
// The workload x system grid is one api::sweep call; the workload (first
// dimension) varies slowest, so reports come back row-major for the table.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 8b", "influence of the workload distribution",
      "300 x 1 MB, RS(9,3), Frankfurt, 10 MB cache, uniform + zipf sweeps");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "ops=1000", "runs=5",
       "region=frankfurt", "cache_bytes=10MB"});

  // Backend reference (workload-independent).
  const auto backend = api::run(base.with({"system=backend", "cache_bytes="}));
  std::cout << "Backend reference: "
            << client::fmt_ms(backend.result.mean_latency_ms()) << " ms\n\n";

  const std::vector<std::string> workloads = {
      "uniform",  "zipf:0.2", "zipf:0.5", "zipf:0.8",
      "zipf:0.9", "zipf:1.0", "zipf:1.1", "zipf:1.4"};

  // Agar carries no `chunks` parameter, so it sweeps separately from the
  // fixed-chunks systems; both sweeps share the workload dimension order.
  const auto agar_specs =
      api::sweep(base.with({"system=agar"}), {{"workload", workloads}});
  const auto static_specs = api::sweep(
      base, {{"workload", workloads},
             {"system", {"lru", "lfu"}},
             {"chunks", {"5", "9"}}});
  const auto agar_reports = api::run_all(agar_specs);
  const auto static_reports = api::run_all(static_specs);

  // static_reports layout per workload: lru-5, lru-9, lfu-5, lfu-9.
  std::vector<std::vector<std::string>> rows;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const double agar = agar_reports[w].result.mean_latency_ms();
    const auto* block = &static_reports[w * 4];
    double best_static = block[0].result.mean_latency_ms();
    for (std::size_t i = 1; i < 4; ++i) {
      best_static = std::min(best_static, block[i].result.mean_latency_ms());
    }
    rows.push_back({workloads[w], client::fmt_ms(agar),
                    client::fmt_ms(block[0].result.mean_latency_ms()),
                    client::fmt_ms(block[1].result.mean_latency_ms()),
                    client::fmt_ms(block[2].result.mean_latency_ms()),
                    client::fmt_ms(block[3].result.mean_latency_ms()),
                    client::fmt_pct(1.0 - agar / best_static)});
  }
  std::cout << client::format_table(
      {"workload", "Agar", "LRU-5", "LRU-9", "LFU-5", "LFU-9", "Agar lead"},
      rows);

  std::cout << "\nexpected shape (paper): all systems equal under uniform/"
               "low skew; Agar's lead grows with skew (5.8% at 0.8 up to "
               "~15% at 1.1) and narrows again at 1.4 when the hot set "
               "fits any cache.\n";
  return 0;
}
