// Simulation-core throughput harness: event dispatch through the rebuilt
// loop (reserved heap + timer wheel + move-only pops) against a verbatim
// copy of the seed's priority_queue loop, the wheel's periodic-timer path,
// the inter-shard SPSC ring, the sharded engine's aggregate dispatch rate
// at 1/2/4 worker threads, and end-to-end experiment reads/second at the
// same shard counts.
//
// The dispatch workload replays the production event mix: self-rescheduling
// one-shot events whose closures exceed the std::function small-buffer (as
// the client strategies' do — they capture state, a key and a completion
// continuation) plus a standing set of periodic timers (network probes,
// reconfiguration), so the seed loop pays its real costs: a full Event
// COPY out of priority_queue::top() per dispatch and a make_shared rebind
// per periodic firing.
//
// Self-contained (no Google Benchmark) so CI can always build and run it.
// Default output is an aligned table; --json emits a JSON array for
// artifact upload and trend tracking (scripts/record_bench.sh appends a
// labelled entry to BENCH_core.json). --quick shrinks the workloads for
// smoke runs.
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/api.hpp"
#include "sim/event_loop.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/spsc_ring.hpp"

namespace {

using namespace agar;
using Clock = std::chrono::steady_clock;

bool g_quick = false;

struct Result {
  std::string bench;
  std::string config;
  std::uint64_t events = 0;     ///< dispatches (or reads) measured
  double events_per_s = 0.0;
  double ns_per_event = 0.0;
  std::string note;
};

std::vector<Result>& results() {
  static std::vector<Result> r;
  return r;
}

void record(const std::string& bench, const std::string& config,
            std::uint64_t events, double seconds, std::string note = "") {
  Result r;
  r.bench = bench;
  r.config = config;
  r.events = events;
  r.events_per_s = seconds <= 0.0 ? 0.0
                                  : static_cast<double>(events) / seconds;
  r.ns_per_event =
      events == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(events);
  r.note = std::move(note);
  results().push_back(r);
}

template <typename Fn>
double wall_seconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------------- seed event loop
//
// The pre-refactor loop, reproduced verbatim (renamed only): one
// priority_queue, a copy of the full Event out of top() per dispatch, and
// periodic timers re-armed by wrapping the callback in a shared_ptr and a
// fresh closure every firing. This is the baseline the new core is
// measured against.

namespace seed {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using TimerId = std::uint64_t;

  [[nodiscard]] SimTimeMs now() const { return now_; }

  void schedule_at(SimTimeMs when, Callback fn) {
    queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
  }
  void schedule_in(SimTimeMs delay, Callback fn) {
    schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
  }
  TimerId schedule_periodic(SimTimeMs period, std::function<bool()> fn) {
    const TimerId id = next_timer_++;
    active_timers_.insert(id);
    arm_periodic(id, period,
                 std::make_shared<std::function<bool()>>(std::move(fn)));
    return id;
  }
  bool cancel(TimerId id) { return active_timers_.erase(id) > 0; }
  void run_until(SimTimeMs horizon) {
    while (!queue_.empty() && queue_.top().when <= horizon) pop_and_run();
    now_ = std::max(now_, horizon);
  }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTimeMs when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void arm_periodic(TimerId id, SimTimeMs period,
                    std::shared_ptr<std::function<bool()>> fn) {
    schedule_in(period, [this, id, period, fn = std::move(fn)]() mutable {
      if (!active_timers_.contains(id)) return;
      const bool keep = (*fn)();
      if (!keep || !active_timers_.contains(id)) {
        active_timers_.erase(id);
        return;
      }
      arm_periodic(id, period, std::move(fn));
    });
  }
  void pop_and_run() {
    Event ev = queue_.top();  // the seed's per-dispatch copy
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }

  SimTimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  TimerId next_timer_ = 1;
  std::unordered_set<TimerId> active_timers_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace seed

// ------------------------------------------------------------- dispatch
//
// Self-rescheduling event chains: every dispatch does ~40 ns of xorshift
// work (a stand-in for strategy bookkeeping) and re-arms itself at a
// pseudo-random 0.5-4.5 ms offset, so the heap sees realistic churn.
// Alongside, 8 periodic timers per lane with periods of 1-16 ms fire
// through whatever periodic machinery the loop under test has.

constexpr std::size_t kLanes = 8;
constexpr std::size_t kChainsPerLane = 4;
constexpr std::size_t kTimersPerLane = 8;

std::uint64_t spin(std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

template <typename Loop>
struct Chain {
  Loop* loop = nullptr;
  sim::ShardedEngine* engine = nullptr;
  std::size_t lane = 0;
  std::uint64_t lcg = 0;
  std::uint64_t fired = 0;
  std::function<void()> next;
  std::function<void()> hop;  ///< one-shot cross-lane event body
};

/// Arm the standard workload on `lane_loop`: kChainsPerLane chains and
/// kTimersPerLane periodic timers for the given lane. With an engine, 1/16
/// of chain dispatches additionally post a one-shot event to the next lane
/// (over a ring when the lanes live on different shards).
template <typename Loop>
void arm_lane(Loop& lane_loop, sim::ShardedEngine* engine, std::size_t lane,
              std::vector<std::unique_ptr<Chain<Loop>>>& chains) {
  for (std::size_t c = 0; c < kChainsPerLane; ++c) {
    chains.push_back(std::make_unique<Chain<Loop>>());
    Chain<Loop>* chain = chains.back().get();
    chain->loop = &lane_loop;
    chain->engine = engine;
    chain->lane = lane;
    chain->lcg = 0x9E3779B97F4A7C15ULL * (lane * kChainsPerLane + c + 1);
    // The hop body runs on the DESTINATION lane's shard thread, so it
    // must not touch this chain's state — pure stack work only.
    chain->hop = [] {
      volatile std::uint64_t sink = spin(0x243F6A8885A308D3ULL);
      (void)sink;
    };
    // The closure captures a state pointer plus two words of context —
    // over the std::function small-buffer, like the strategies' real
    // callbacks (state, key, continuation). Scheduling it allocates; the
    // seed loop then copies it AGAIN out of top() on dispatch.
    const std::uint64_t salt_a = chain->lcg * 3;
    const std::uint64_t salt_b = chain->lcg * 7;
    chain->next = [chain, salt_a, salt_b] {
      const std::uint64_t x = spin(chain->lcg ^ salt_a);
      chain->lcg = x + salt_b;
      ++chain->fired;
      const SimTimeMs delay =
          0.5 + static_cast<double>(x % 1024) / 256.0;  // 0.5 - 4.5 ms
      if (chain->engine != nullptr && (x & 15U) == 0) {
        chain->engine->post((chain->lane + 1) % kLanes,
                            chain->loop->now() + delay, chain->hop);
      }
      chain->loop->schedule_in(delay, chain->next);
    };
    lane_loop.schedule_in(0.0, chain->next);
  }
  for (std::size_t t = 0; t < kTimersPerLane; ++t) {
    const SimTimeMs period = 1.0 + static_cast<double>((lane + t * 3) % 16);
    lane_loop.schedule_periodic(period, [] { return true; });
  }
}

template <typename Loop>
void bench_serial_dispatch(const std::string& config, std::uint64_t target,
                           const std::string& note) {
  Loop loop;
  std::vector<std::unique_ptr<Chain<Loop>>> chains;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    arm_lane(loop, nullptr, lane, chains);
  }
  const double sec = wall_seconds([&] {
    while (loop.events_executed() < target) {
      loop.run_until(loop.now() + 1000.0);
    }
  });
  record("event_dispatch", config, loop.events_executed(), sec, note);
}

void bench_sharded_dispatch(std::size_t shards, std::uint64_t target) {
  sim::ShardedEngine engine(shards, kLanes);
  std::vector<std::unique_ptr<Chain<sim::EventLoop>>> chains;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    sim::EventLoop& loop = engine.loop_of_lane(lane);
    loop.reserve(1024);
    arm_lane(loop, &engine, lane, chains);
  }
  const double sec = wall_seconds([&] {
    engine.run_windows(1000.0,
                       [&] { return engine.events_executed() >= target; });
  });
  std::ostringstream note;
  note << engine.cross_shard_messages() << " ring messages";
  record("event_dispatch", "shards=" + std::to_string(shards),
         engine.events_executed(), sec, note.str());
}

// --------------------------------------------------------------- timers
//
// Periodic firings in isolation: the wheel's O(1) arm/fire/re-arm against
// the seed's shared_ptr-rebind-per-firing.

template <typename Loop>
void bench_periodic_timers(const std::string& config, std::uint64_t target,
                           const std::string& note) {
  Loop loop;
  std::uint64_t fired = 0;
  constexpr std::size_t kTimers = 64;
  for (std::size_t t = 0; t < kTimers; ++t) {
    // Periods spread across wheel levels: 1 ms .. ~1 s.
    const SimTimeMs period = 1.0 + static_cast<double>((t * 17) % 997);
    loop.schedule_periodic(period, [&fired] {
      ++fired;
      return true;
    });
  }
  const double sec = wall_seconds([&] {
    while (fired < target) loop.run_until(loop.now() + 10'000.0);
  });
  record("periodic_timers", config, fired, sec, note);
}

// ----------------------------------------------------------------- ring

void bench_ring(std::uint64_t target) {
  sim::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t transferred = 0;
  const double sec = wall_seconds([&] {
    std::uint64_t popped = 0;
    while (transferred < target) {
      // Batches of 512: half-fill, then drain — the window-boundary shape.
      for (std::uint64_t i = 0; i < 512; ++i) {
        std::uint64_t v = i;
        if (!ring.try_push(std::move(v))) break;
        ++transferred;
      }
      while (ring.try_pop(popped)) {
      }
    }
  });
  record("spsc_ring", "push+pop", transferred, sec, "single thread, cap 1024");
}

// ------------------------------------------------ end-to-end experiment

api::ExperimentSpec e2e_spec(std::size_t shards, std::size_t ops) {
  api::ExperimentSpec spec;
  spec.system = "agar";
  spec.experiment.deployment.num_objects = 50;
  spec.experiment.deployment.object_size_bytes = 16_KB;
  spec.experiment.deployment.seed = 7;
  spec.experiment.ops_per_run = ops;
  spec.experiment.runs = 1;
  spec.experiment.reconfig_period_ms = 10'000.0;
  spec.set("regions", "frankfurt,dublin,virginia,saopaulo,tokyo,sydney");
  spec.set("cache_bytes", "1MB");
  spec.set("shards", std::to_string(shards));
  return spec;
}

void bench_e2e(std::size_t shards, std::size_t ops) {
  client::ExperimentResult result;
  const double sec =
      wall_seconds([&] { result = api::run(e2e_spec(shards, ops)).result; });
  record("e2e_reads", "shards=" + std::to_string(shards),
         result.total_ops(), sec, "agar, 6 regions, setup included");
}

// -------------------------------------------------------------- output

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

double dispatch_rate(const std::string& config) {
  for (const Result& r : results()) {
    if (r.bench == "event_dispatch" && r.config == config) {
      return r.events_per_s;
    }
  }
  return 0.0;
}

void print_json() {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results().size(); ++i) {
    const Result& r = results()[i];
    os << "  {\"bench\": \"" << json_escape(r.bench) << "\", \"config\": \""
       << json_escape(r.config) << "\", \"events\": " << r.events
       << ", \"events_per_s\": " << r.events_per_s
       << ", \"ns_per_event\": " << r.ns_per_event;
    if (!r.note.empty()) os << ", \"note\": \"" << json_escape(r.note) << "\"";
    os << "}" << (i + 1 < results().size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << os.str();
}

void print_table() {
  std::printf("%-18s %-12s %12s %16s %12s\n", "bench", "config", "events",
              "events/s", "ns/event");
  for (const Result& r : results()) {
    std::printf("%-18s %-12s %12llu %16.0f %12.1f  %s\n", r.bench.c_str(),
                r.config.c_str(), static_cast<unsigned long long>(r.events),
                r.events_per_s, r.ns_per_event, r.note.c_str());
  }
  const double seed_rate = dispatch_rate("seed-serial");
  const double four = dispatch_rate("shards=4");
  if (seed_rate > 0.0 && four > 0.0) {
    std::printf("\ndispatch speedup, 4 shards vs seed serial loop: %.2fx\n",
                four / seed_rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quick") {
      g_quick = true;
    } else {
      std::cerr << "usage: bench_micro_eventloop [--json] [--quick]\n";
      return 2;
    }
  }

  const std::uint64_t dispatch_events = g_quick ? 300'000 : 2'000'000;
  const std::uint64_t timer_events = g_quick ? 200'000 : 1'000'000;
  const std::uint64_t ring_events = g_quick ? 2'000'000 : 20'000'000;
  const std::size_t e2e_ops = g_quick ? 1'000 : 4'000;
  const std::string host_note =
      std::to_string(std::thread::hardware_concurrency()) +
      " hardware threads";

  bench_serial_dispatch<seed::EventLoop>(
      "seed-serial", dispatch_events,
      "pre-refactor priority_queue loop, copy per dispatch");
  bench_serial_dispatch<sim::EventLoop>("serial", dispatch_events,
                                        "rebuilt loop, heap + wheel");
  for (const int shards : {1, 2, 4}) {
    bench_sharded_dispatch(static_cast<std::size_t>(shards), dispatch_events);
  }
  bench_periodic_timers<seed::EventLoop>(
      "seed", timer_events, "shared_ptr rebind per firing");
  bench_periodic_timers<sim::EventLoop>("wheel", timer_events,
                                        "64 timers, periods 1 ms - 1 s");
  bench_ring(ring_events);
  for (const int shards : {1, 2, 4}) {
    bench_e2e(static_cast<std::size_t>(shards), e2e_ops);
  }
  if (!json) std::cout << "\nhost: " << host_note << "\n";

  if (json) {
    print_json();
  } else {
    print_table();
  }
  return 0;
}
