// Extension: adaptivity under non-stationary workloads (paper §IV-V).
//
// The paper's central argument is that periodic knapsack reconfiguration
// *adapts* — a claim a stationary Zipfian run can never exercise. This
// bench scripts a scenario: at t=30 s the popularity order rotates by half
// the universe (the hot set changes completely) and the nearest backend
// region fails outright (restored at t=45 s). It then compares Agar
// against fixed-c LRU baselines on windowed mean latency, reporting how
// many reconfiguration periods each system needs to return to its
// pre-shift steady state.
//
//   $ ./bench_ext_adaptivity [--quick] [--json]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "client/report.hpp"
#include "scenario/scenario.hpp"

using namespace agar;

namespace {

/// First window at or after `shift_window` whose mean is within 15% of
/// the pre-shift steady mean, as periods elapsed since the shift window.
/// 0 means the shift window itself never left the band; -1 means no
/// recovery within the run.
int windows_to_recover(const std::vector<client::WindowStats>& windows,
                       std::size_t shift_window, double pre_shift_mean) {
  for (std::size_t w = shift_window; w < windows.size(); ++w) {
    if (windows[w].ops == 0) continue;
    if (windows[w].mean_ms <= pre_shift_mean * 1.15) {
      return static_cast<int>(w - shift_window);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    if (arg == "--quick") quick = true;
  }

  // Windows aligned with the 10 s reconfiguration period, so "windows to
  // recover" reads directly as "reconfiguration periods to recover".
  const auto base = api::ExperimentSpec::from_pairs({
      "region=sydney",
      "objects=40",
      "object_bytes=9000",
      // 20/s x 10 s windows: quick still covers two post-shift periods.
      quick ? "ops=1200" : "ops=1600",
      "runs=1",
      "arrival_rate=20",
      "period_s=10",
      "seed=9",
      "window_ms=10000",
      "scenario=30000 popularity_rotate by=20; "
      "30000 fail_region region=tokyo; 45000 restore_region region=tokyo",
  });
  const std::vector<api::ExperimentSpec> specs = {
      base.with({"system=agar", "cache_bytes=120KB"}),
      base.with({"system=lru", "chunks=3", "cache_bytes=120KB"}),
      base.with({"system=lru", "chunks=5", "cache_bytes=120KB"}),
      base.with({"system=lru", "chunks=9", "cache_bytes=120KB"}),
  };

  const auto reports = api::run_all(specs);
  if (json) {
    std::cout << client::results_json(api::results_of(reports));
    return 0;
  }

  client::print_experiment_banner(
      "Extension", "adaptivity under popularity shift + region outage",
      "RS(9,3), Sydney clients, open loop 20/s; at t=30s the hot set "
      "rotates by 20 objects and Tokyo fails (restored t=45s); windows = "
      "reconfiguration periods (10 s)");

  // Per-window mean latency, one column per system.
  std::vector<std::string> headers = {"window"};
  for (const auto& r : reports) headers.push_back(r.label());
  std::size_t num_windows = 0;
  for (const auto& r : reports) {
    num_windows = std::max(num_windows, r.result.runs[0].windows.size());
  }
  std::vector<std::vector<std::string>> rows;
  for (std::size_t w = 0; w + 1 < num_windows; ++w) {  // drop ragged tail
    std::vector<std::string> row;
    const auto& first = reports.front().result.runs[0].windows;
    row.push_back(w < first.size()
                      ? client::fmt_ms(first[w].start_ms / 1000.0) + "-" +
                            client::fmt_ms(first[w].end_ms / 1000.0) + "s"
                      : "");
    for (const auto& r : reports) {
      const auto& windows = r.result.runs[0].windows;
      if (w >= windows.size() || windows[w].ops == 0) {
        row.push_back("-");
        continue;
      }
      std::string cell = client::fmt_ms(windows[w].mean_ms);
      if (windows[w].failed_reads > 0) {
        cell += " (" + std::to_string(windows[w].failed_reads) + " fail)";
      }
      row.push_back(cell);
    }
    rows.push_back(std::move(row));
  }
  std::cout << "per-window mean latency (ms):\n"
            << client::format_table(headers, rows);

  // Recovery summary. The shift lands at window 3 (30-40 s); window 2 is
  // the pre-shift steady state.
  constexpr std::size_t kShiftWindow = 3;
  constexpr std::size_t kSteadyWindow = 2;
  std::cout << "\nrecovery to within 15% of own pre-shift mean:\n";
  for (const auto& r : reports) {
    const auto& windows = r.result.runs[0].windows;
    if (windows.size() <= kShiftWindow) continue;
    const double pre = windows[kSteadyWindow].mean_ms;
    const int periods = windows_to_recover(windows, kShiftWindow, pre);
    std::cout << "  " << r.label() << ": pre-shift "
              << client::fmt_ms(pre) << " ms, at shift "
              << client::fmt_ms(windows[kShiftWindow].mean_ms) << " ms, ";
    if (periods < 0) {
      std::cout << "no recovery within the run\n";
    } else if (periods == 0) {
      std::cout << "never left the 15% band\n";
    } else {
      std::cout << "recovered after " << periods
                << " reconfiguration period(s)\n";
    }
  }

  std::cout << "\ntakeaway: Agar's periodic knapsack re-optimizes for the "
               "new hot set and the degraded region within two periods; a "
               "fixed c recovers its hit ratio but stays pinned to its "
               "backend-bound latency plateau.\n";
  return 0;
}
