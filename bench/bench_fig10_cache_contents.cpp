// Fig. 10: what Agar actually keeps in its cache — the distribution of
// cache space across option weights (9/7/5/3/1 chunks per object) for
// clients in Frankfurt and Sydney with 5 MB and 10 MB caches.
#include <iostream>
#include <map>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Fig. 10", "Agar cache contents by option weight",
      "300 x 1 MB, zipf 1.1, snapshots of the final configuration after "
      "1000 reads");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 3;
  config.reconfig_period_ms = 30'000.0;

  const auto topology = sim::aws_six_regions();
  std::vector<std::vector<std::string>> rows;
  for (const RegionId region :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    for (const std::size_t mb : {10u, 5u}) {
      config.client_region = region;
      const auto result =
          run_experiment(config, StrategySpec::agar(mb * 1_MB));

      // Aggregate chunk counts per weight over the runs' final snapshots.
      std::map<std::size_t, std::size_t> chunks_by_weight;
      std::size_t total_chunks = 0;
      for (const auto& run : result.runs) {
        for (const auto& [w, objects] : run.weight_histogram) {
          chunks_by_weight[w] += w * objects;
          total_chunks += w * objects;
        }
      }
      std::vector<std::string> row = {
          topology.name(region) + " " + std::to_string(mb) + " MB"};
      for (const std::size_t w : {9u, 7u, 5u, 3u, 1u}) {
        const double fraction =
            total_chunks == 0
                ? 0.0
                : static_cast<double>(chunks_by_weight[w]) /
                      static_cast<double>(total_chunks);
        row.push_back(client::fmt_pct(fraction));
      }
      rows.push_back(std::move(row));
    }
  }
  std::cout << client::format_table(
      {"scenario", "9 blocks", "7 blocks", "5 blocks", "3 blocks",
       "1 block"},
      rows);

  std::cout << "\nexpected shape (paper): a mix of sizes rather than one "
               "weight dominating; a significant fraction still goes to "
               "full replicas because the hottest objects are worth it.\n";
  return 0;
}
