// Fig. 10: what Agar actually keeps in its cache — the distribution of
// cache space across option weights (9/7/5/3/1 chunks per object) for
// clients in Frankfurt and Sydney with 5 MB and 10 MB caches.
#include <iostream>
#include <map>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 10", "Agar cache contents by option weight",
      "300 x 1 MB, zipf 1.1, snapshots of the final configuration after "
      "1000 reads");

  const auto base = api::ExperimentSpec::from_pairs(
      {"system=agar", "objects=300", "object_bytes=1MB", "workload=zipf:1.1",
       "ops=1000", "runs=3", "period_s=30"});

  // Region x cache grid, row-major in the scenario order of the table.
  const auto specs = api::sweep(
      base, {{"region", {"frankfurt", "sydney"}},
             {"cache_bytes", {"10MB", "5MB"}}});
  const auto reports = api::run_all(specs);

  std::vector<std::vector<std::string>> rows;
  for (const auto& report : reports) {
    // Aggregate chunk counts per weight over the runs' final snapshots.
    std::map<std::size_t, std::size_t> chunks_by_weight;
    std::size_t total_chunks = 0;
    for (const auto& run : report.result.runs) {
      for (const auto& [w, objects] : run.weight_histogram) {
        chunks_by_weight[w] += w * objects;
        total_chunks += w * objects;
      }
    }
    const auto topology = sim::aws_six_regions();
    std::vector<std::string> row = {
        topology.name(report.spec.experiment.client_region) + " " +
        report.spec.params.get_string("cache_bytes", "?")};
    for (const std::size_t w : {9u, 7u, 5u, 3u, 1u}) {
      const double fraction =
          total_chunks == 0
              ? 0.0
              : static_cast<double>(chunks_by_weight[w]) /
                    static_cast<double>(total_chunks);
      row.push_back(client::fmt_pct(fraction));
    }
    rows.push_back(std::move(row));
  }
  std::cout << client::format_table(
      {"scenario", "9 blocks", "7 blocks", "5 blocks", "3 blocks",
       "1 block"},
      rows);

  std::cout << "\nexpected shape (paper): a mix of sizes rather than one "
               "weight dominating; a significant fraction still goes to "
               "full replicas because the hottest objects are worth it.\n";
  return 0;
}
