// Substrate microbenchmarks: GF(256) bulk ops and Reed-Solomon
// encode/decode throughput for the paper's RS(9,3) and neighbours.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ec/object_codec.hpp"
#include "ec/reed_solomon.hpp"
#include "gf/gf256.hpp"

namespace {

using namespace agar;

void BM_GfMulAddSlice(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes src(n), dst(n);
  rng.fill_bytes(src.data(), n);
  rng.fill_bytes(dst.data(), n);
  for (auto _ : state) {
    gf::mul_add_slice(0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulAddSlice)->Arg(4096)->Arg(114 * 1024);

void BM_RsEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const ec::ReedSolomon rs(ec::CodecParams{k, m});
  const std::size_t chunk = 114 * 1024;
  Rng rng(2);
  std::vector<Bytes> data(k, Bytes(chunk));
  for (auto& c : data) rng.fill_bytes(c.data(), c.size());
  std::vector<BytesView> views(data.begin(), data.end());
  for (auto _ : state) {
    auto parity = rs.encode(views);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * k));
}
BENCHMARK(BM_RsEncode)->Args({9, 3})->Args({6, 3})->Args({4, 2});

void BM_RsDecodeAllData(benchmark::State& state) {
  // Fast path: every data chunk present (the failure-free read).
  const ec::ReedSolomon rs(ec::CodecParams{9, 3});
  const std::size_t chunk = 114 * 1024;
  Rng rng(3);
  std::vector<Bytes> data(9, Bytes(chunk));
  for (auto& c : data) rng.fill_bytes(c.data(), c.size());
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = 0; i < 9; ++i) available.emplace_back(i, data[i]);
  for (auto _ : state) {
    auto out = rs.reconstruct_data(available);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 9));
}
BENCHMARK(BM_RsDecodeAllData);

void BM_RsDecodeWithParity(benchmark::State& state) {
  // Degraded path: `missing` data chunks replaced by parity.
  const std::size_t missing = static_cast<std::size_t>(state.range(0));
  const ec::ReedSolomon rs(ec::CodecParams{9, 3});
  const std::size_t chunk = 114 * 1024;
  Rng rng(4);
  std::vector<Bytes> data(9, Bytes(chunk));
  for (auto& c : data) rng.fill_bytes(c.data(), c.size());
  std::vector<BytesView> views(data.begin(), data.end());
  const auto parity = rs.encode(views);

  std::vector<std::pair<std::uint32_t, BytesView>> available;
  for (std::uint32_t i = static_cast<std::uint32_t>(missing); i < 9; ++i) {
    available.emplace_back(i, data[i]);
  }
  for (std::uint32_t p = 0; p < missing; ++p) {
    available.emplace_back(9 + p, parity[p]);
  }
  for (auto _ : state) {
    auto out = rs.reconstruct_data(available);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk * 9));
}
BENCHMARK(BM_RsDecodeWithParity)->Arg(1)->Arg(2)->Arg(3);

void BM_ObjectCodecRoundTrip(benchmark::State& state) {
  const ec::ObjectCodec codec(ec::CodecParams{9, 3});
  const Bytes payload = deterministic_payload("bench", 1_MB);
  for (auto _ : state) {
    auto encoded = codec.encode(BytesView(payload));
    auto decoded = codec.decode(encoded.object_size, encoded.chunks);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1_MB));
}
BENCHMARK(BM_ObjectCodecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
