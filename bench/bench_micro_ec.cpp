// EC data-plane throughput harness: GF(256) bulk kernels (every runtime
// backend vs the scalar reference), Reed-Solomon encode/decode for the
// paper's RS(9,3), and the decode-plan cache (cold vs memoized inversion).
//
// Self-contained (no Google Benchmark) so CI can always build and run it.
// Default output is an aligned table; --json emits a JSON array ("BENCH
// JSON") for artifact upload and trend tracking. --quick shrinks the
// per-measurement budget for smoke runs.
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ec/object_codec.hpp"
#include "ec/reed_solomon.hpp"
#include "gf/gf256.hpp"

namespace {

using namespace agar;
using Clock = std::chrono::steady_clock;

double g_budget_ms = 80.0;  // per measurement; --quick lowers it

struct Result {
  std::string bench;
  std::string backend;
  std::size_t bytes = 0;       ///< payload bytes processed per iteration
  double mb_per_s = 0.0;
  double ns_per_op = 0.0;
  std::string note;
};

std::vector<Result>& results() {
  static std::vector<Result> r;
  return r;
}

/// Run fn until the time budget is spent; returns seconds per iteration.
template <typename Fn>
double time_op(Fn&& fn) {
  fn();  // warm-up / first-touch
  std::uint64_t iters = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (ms >= g_budget_ms || iters > (1ULL << 30)) {
      return ms / 1e3 / static_cast<double>(iters);
    }
    const double target = g_budget_ms * 1.2;
    const std::uint64_t next =
        ms <= 0.01 ? iters * 32
                   : static_cast<std::uint64_t>(
                         static_cast<double>(iters) * target / ms) +
                         1;
    iters = std::max(next, iters + 1);
  }
}

template <typename Fn>
void record(const std::string& bench, const std::string& backend,
            std::size_t bytes_per_iter, Fn&& fn, std::string note = "") {
  const double sec = time_op(fn);
  Result r;
  r.bench = bench;
  r.backend = backend;
  r.bytes = bytes_per_iter;
  r.mb_per_s = bytes_per_iter == 0
                   ? 0.0
                   : static_cast<double>(bytes_per_iter) / sec / 1e6;
  r.ns_per_op = sec * 1e9;
  r.note = std::move(note);
  results().push_back(r);
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Bytes out(n);
  Rng rng(seed);
  rng.fill_bytes(out.data(), out.size());
  return out;
}

// ------------------------------------------------------------ gf kernels

void bench_kernels() {
  const std::vector<std::size_t> sizes = {4096, 114 * 1024, 1024 * 1024};
  for (const gf::Backend b : gf::supported_backends()) {
    if (!gf::set_backend(b)) continue;
    const std::string name = gf::backend_name(b);
    for (const std::size_t n : sizes) {
      const Bytes src = random_bytes(n, 1);
      Bytes dst = random_bytes(n, 2);
      record("mul_slice", name, n,
             [&] { gf::mul_slice(0x57, src, dst); });
      record("mul_add_slice", name, n,
             [&] { gf::mul_add_slice(0x57, src, dst); });
      record("xor_slice", name, n, [&] { gf::xor_slice(src, dst); });

      // Fused multi-source apply with the paper's k = 9 sources.
      constexpr std::size_t kSrcs = 9;
      std::vector<Bytes> srcs;
      std::vector<BytesView> views;
      std::vector<std::uint8_t> coeffs;
      for (std::size_t j = 0; j < kSrcs; ++j) {
        srcs.push_back(random_bytes(n, 10 + j));
        coeffs.push_back(static_cast<std::uint8_t>(3 + 2 * j));
      }
      for (const auto& s : srcs) views.emplace_back(s);
      record("mul_add_multi_k9", name, n * kSrcs,
             [&] { gf::mul_add_multi(coeffs, views, dst); });
    }
  }
  gf::reset_backend();
}

// --------------------------------------------------------- reed-solomon

void bench_rs() {
  const std::size_t chunk = 114 * 1024;
  const ec::ReedSolomon rs(ec::CodecParams{9, 3});
  std::vector<Bytes> data;
  std::vector<BytesView> views;
  for (std::size_t i = 0; i < 9; ++i) data.push_back(random_bytes(chunk, 20 + i));
  for (const auto& d : data) views.emplace_back(d);
  const auto parity = rs.encode(views);

  for (const gf::Backend b : gf::supported_backends()) {
    if (!gf::set_backend(b)) continue;
    const std::string name = gf::backend_name(b);
    record("rs_encode_9_3", name, chunk * 9,
           [&] { auto p = rs.encode(views); });
  }
  gf::reset_backend();

  // Decode paths on the active (best) backend.
  const std::string active = gf::backend_name(gf::active_backend());
  std::vector<std::pair<std::uint32_t, BytesView>> all_data;
  for (std::uint32_t i = 0; i < 9; ++i) all_data.emplace_back(i, data[i]);
  record("rs_decode_all_data", active, chunk * 9,
         [&] { auto out = rs.reconstruct_data(all_data); });

  for (const std::size_t missing : {std::size_t{1}, std::size_t{3}}) {
    std::vector<std::pair<std::uint32_t, BytesView>> degraded;
    for (std::uint32_t i = static_cast<std::uint32_t>(missing); i < 9; ++i) {
      degraded.emplace_back(i, data[i]);
    }
    for (std::uint32_t p = 0; p < missing; ++p) {
      degraded.emplace_back(9 + p, parity[p]);
    }
    const std::string tag = "rs_decode_missing" + std::to_string(missing);
    record(tag + "_cold_plan", active, chunk * 9, [&] {
      rs.clear_decode_plan_cache();
      auto out = rs.reconstruct_data(degraded);
    });
    record(tag + "_cached_plan", active, chunk * 9,
           [&] { auto out = rs.reconstruct_data(degraded); });
  }

  // Decode-plan setup cost in isolation: 64-byte chunks make the GF work
  // negligible, so cold-vs-cached is (almost) pure matrix-inversion time.
  std::vector<Bytes> tiny;
  std::vector<BytesView> tiny_views;
  for (std::size_t i = 0; i < 9; ++i) tiny.push_back(random_bytes(64, 40 + i));
  for (const auto& t : tiny) tiny_views.emplace_back(t);
  const auto tiny_parity = rs.encode(tiny_views);
  std::vector<std::pair<std::uint32_t, BytesView>> tiny_degraded;
  for (std::uint32_t i = 3; i < 9; ++i) tiny_degraded.emplace_back(i, tiny[i]);
  for (std::uint32_t p = 0; p < 3; ++p) {
    tiny_degraded.emplace_back(9 + p, tiny_parity[p]);
  }
  record("plan_setup_cold", active, 0, [&] {
    rs.clear_decode_plan_cache();
    auto out = rs.reconstruct_data(tiny_degraded);
  }, "64 B chunks: ~pure inversion cost");
  record("plan_setup_cached", active, 0,
         [&] { auto out = rs.reconstruct_data(tiny_degraded); },
         "64 B chunks: inversion memoized");
}

void bench_codec() {
  const ec::ObjectCodec codec(ec::CodecParams{9, 3});
  const Bytes payload = deterministic_payload("bench", 1_MB);
  const std::string active = gf::backend_name(gf::active_backend());
  record("object_codec_round_trip", active, 1_MB, [&] {
    auto encoded = codec.encode(BytesView(payload));
    auto decoded = codec.decode(encoded.object_size, encoded.chunks);
  });
}

// -------------------------------------------------------------- output

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void print_json() {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results().size(); ++i) {
    const Result& r = results()[i];
    os << "  {\"bench\": \"" << json_escape(r.bench) << "\", \"backend\": \""
       << json_escape(r.backend) << "\", \"bytes\": " << r.bytes
       << ", \"mb_per_s\": " << r.mb_per_s
       << ", \"ns_per_op\": " << r.ns_per_op;
    if (!r.note.empty()) os << ", \"note\": \"" << json_escape(r.note) << "\"";
    os << "}" << (i + 1 < results().size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << os.str();
}

void print_table() {
  std::printf("%-28s %-11s %12s %14s %14s\n", "bench", "backend", "bytes",
              "MB/s", "ns/op");
  for (const Result& r : results()) {
    std::printf("%-28s %-11s %12zu %14.1f %14.1f  %s\n", r.bench.c_str(),
                r.backend.c_str(), r.bytes, r.mb_per_s, r.ns_per_op,
                r.note.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quick") {
      g_budget_ms = 10.0;
    } else {
      std::cerr << "usage: bench_micro_ec [--json] [--quick]\n";
      return 2;
    }
  }

  if (!json) {
    std::cout << "gf backend (auto): "
              << gf::backend_name(gf::active_backend()) << "\n";
  }
  bench_kernels();
  bench_rs();
  bench_codec();
  if (json) {
    print_json();
  } else {
    print_table();
  }
  return 0;
}
