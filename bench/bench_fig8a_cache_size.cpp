// Fig. 8a: average read latency while the cache size varies from 0 MB
// (backend only) through 5/10/20/50/100 MB, clients in Frankfurt.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Fig. 8a", "influence of cache size",
      "300 x 1 MB, RS(9,3), zipf 1.1, Frankfurt, cache in {0,5,10,20,50,"
      "100} MB");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "workload=zipf:1.1", "ops=1000",
       "runs=5", "region=frankfurt"});

  // 0 MB = Backend baseline.
  const auto backend = api::run(base.with({"system=backend"}));
  std::cout << "0 MB (Backend): "
            << client::fmt_ms(backend.result.mean_latency_ms()) << " ms\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const std::string size : {"5MB", "10MB", "20MB", "50MB", "100MB"}) {
    const std::vector<api::ExperimentSpec> grid = {
        base.with({"system=agar", "cache_bytes=" + size}),
        base.with({"system=lru", "chunks=5", "cache_bytes=" + size}),
        base.with({"system=lru", "chunks=9", "cache_bytes=" + size}),
        base.with({"system=lfu", "chunks=5", "cache_bytes=" + size}),
        base.with({"system=lfu", "chunks=9", "cache_bytes=" + size}),
    };
    const auto reports = api::run_all(grid);

    const double agar = reports[0].result.mean_latency_ms();
    double best_static = reports[1].result.mean_latency_ms();
    std::string best_label = reports[1].label();
    for (std::size_t i = 2; i < reports.size(); ++i) {
      if (reports[i].result.mean_latency_ms() < best_static) {
        best_static = reports[i].result.mean_latency_ms();
        best_label = reports[i].label();
      }
    }
    rows.push_back({size, client::fmt_ms(agar),
                    client::fmt_ms(reports[1].result.mean_latency_ms()),
                    client::fmt_ms(reports[2].result.mean_latency_ms()),
                    client::fmt_ms(reports[3].result.mean_latency_ms()),
                    client::fmt_ms(reports[4].result.mean_latency_ms()),
                    best_label,
                    client::fmt_pct(1.0 - agar / best_static)});
  }
  std::cout << client::format_table({"cache", "Agar", "LRU-5", "LRU-9",
                                     "LFU-5", "LFU-9", "best static",
                                     "Agar lead"},
                                    rows);

  std::cout << "\nexpected shape (paper): Agar leads by ~6.5% at 5 MB, "
               "peaks ~15-16% at 10-20 MB, lead shrinks once everything "
               "popular fits (12% at 50 MB, 1% at 100 MB).\n";
  return 0;
}
