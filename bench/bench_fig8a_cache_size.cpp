// Fig. 8a: average read latency while the cache size varies from 0 MB
// (backend only) through 5/10/20/50/100 MB, clients in Frankfurt.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Fig. 8a", "influence of cache size",
      "300 x 1 MB, RS(9,3), zipf 1.1, Frankfurt, cache in {0,5,10,20,50,"
      "100} MB");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;
  config.client_region = sim::region::kFrankfurt;

  // 0 MB = Backend baseline.
  const auto backend = run_experiment(config, StrategySpec::backend());
  std::cout << "0 MB (Backend): "
            << client::fmt_ms(backend.mean_latency_ms()) << " ms\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const std::size_t mb : {5u, 10u, 20u, 50u, 100u}) {
    const std::size_t cache = mb * 1_MB;
    const std::vector<StrategySpec> specs = {
        StrategySpec::agar(cache), StrategySpec::lru(5, cache),
        StrategySpec::lru(9, cache), StrategySpec::lfu(5, cache),
        StrategySpec::lfu(9, cache)};
    const auto results = run_comparison(config, specs);

    const double agar = results[0].mean_latency_ms();
    double best_static = results[1].mean_latency_ms();
    std::string best_label = results[1].spec.label();
    for (std::size_t i = 2; i < results.size(); ++i) {
      if (results[i].mean_latency_ms() < best_static) {
        best_static = results[i].mean_latency_ms();
        best_label = results[i].spec.label();
      }
    }
    rows.push_back({std::to_string(mb) + " MB", client::fmt_ms(agar),
                    client::fmt_ms(results[1].mean_latency_ms()),
                    client::fmt_ms(results[2].mean_latency_ms()),
                    client::fmt_ms(results[3].mean_latency_ms()),
                    client::fmt_ms(results[4].mean_latency_ms()),
                    best_label,
                    client::fmt_pct(1.0 - agar / best_static)});
  }
  std::cout << client::format_table({"cache", "Agar", "LRU-5", "LRU-9",
                                     "LFU-5", "LFU-9", "best static",
                                     "Agar lead"},
                                    rows);

  std::cout << "\nexpected shape (paper): Agar leads by ~6.5% at 5 MB, "
               "peaks ~15-16% at 10-20 MB, lead shrinks once everything "
               "popular fits (12% at 50 MB, 1% at 100 MB).\n";
  return 0;
}
