// Extension: the cooperative cache tier under Zipf skew — collab=none vs
// collab=broadcast.
//
// The paper's Agar caches are islands: a chunk missing locally is fetched
// from its home region no matter how close a neighbour's cache sits. With
// a skewed workload, nearby regions end up caching largely the SAME hot
// chunks — exactly the chunks a peer could serve at a fraction of the
// home-region latency. This bench puts three European/US-east clients
// (mutually within the peer threshold) against the six-region backend and
// measures what peer-fetch buys: redirected wire fetches land at the
// 80-100 ms neighbour instead of the 150-300 ms chunk home, which shows
// up directly in mean read latency.
//
//   $ ./bench_ext_collab [--quick] [--json]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

namespace {

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

std::string fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    if (arg == "--quick") quick = true;
  }

  // Frankfurt/Dublin/Virginia sit within the 400 ms peer threshold of each
  // other; the Zipf-skewed hot set makes their configurations overlap, so
  // the peer directory is full of redirect opportunities. Closed loop so
  // the latency win is not masked by queueing.
  const auto base = api::ExperimentSpec::from_pairs({
      "system=agar",
      "regions=frankfurt,dublin,virginia",
      "cache_bytes=96KB",
      "workload=zipf:1.2",
      "objects=40",
      "object_bytes=9000",
      quick ? "ops=1200" : "ops=4000",
      "runs=2",
      "clients=2",
      "period_s=8",
      "seed=29",
  });
  const std::vector<api::ExperimentSpec> specs = {
      base,  // collab=none: the historical island caches
      base.with({"collab=broadcast", "collab.period_s=2"}),
  };

  const auto reports = api::run_all(specs);
  if (json) {
    std::cout << client::results_json(api::results_of(reports));
    return 0;
  }

  client::print_experiment_banner(
      "Extension", "cooperative cache tier under Zipf skew (none/broadcast)",
      "RS(9,3), Frankfurt+Dublin+Virginia clients, closed loop, zipf 1.2; "
      "peers broadcast their configurations every 2 s");

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : reports) {
    std::uint64_t peer_hits = 0, appends = 0, stale = 0;
    double overlap = 0.0;
    for (const auto& run : r.result.runs) {
      peer_hits += run.collab_peer_hits;
      appends += run.paxos_appends;
      stale += run.stale_config_reads;
      overlap = run.config_overlap;  // same log, last run's view
    }
    rows.push_back({
        r.label(),
        client::fmt_ms(r.result.mean_latency_ms()),
        client::fmt_ms(r.result.percentile_ms(50)),
        client::fmt_ms(r.result.percentile_ms(99)),
        fmt_count(peer_hits),
        fmt_count(appends),
        fmt_count(stale),
        fmt_ratio(overlap),
    });
  }
  std::cout << "latency by collab tier (ms):\n"
            << client::format_table({"tier", "mean", "p50", "p99",
                                     "peer hits", "appends", "stale",
                                     "overlap"},
                                    rows);

  std::cout << "\ntakeaway: with a skewed hot set, nearby regions cache "
               "the same chunks, and peer-fetch converts far home-region "
               "fetches into short neighbour hops — the mean drops while "
               "the p99 (cold-tail reads that no peer holds) stays put. "
               "The Paxos config log prices agreement honestly: appends "
               "cost two quorum round trips and slow application windows "
               "surface as stale-config reads, not silent divergence.\n";
  return 0;
}
