// Ablation: the reconfiguration period (the paper fixes 30 s and calls the
// period "a system parameter [that] depends on how rapidly access patterns
// are expected to change").
//
// Short periods see too few requests per period, so the EWMA popularity is
// noisy, marginal objects churn in and out of the configuration, and every
// churned object costs evictions plus re-population. Long periods adapt
// too slowly. This sweep quantifies the sweet spot for the paper's
// workload.
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Ablation", "Agar reconfiguration period sweep",
      "300 x 1 MB, zipf 1.1, Frankfurt, 10 MB cache");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;
  config.client_region = sim::region::kFrankfurt;

  std::vector<std::vector<std::string>> rows;
  for (const double period_s : {2.0, 5.0, 10.0, 30.0, 60.0, 120.0}) {
    config.reconfig_period_ms = period_s * 1000.0;
    const auto agar = run_experiment(config, StrategySpec::agar(10_MB));
    std::uint64_t evictions = 0;
    for (const auto& run : agar.runs) {
      evictions += run.cache_stats.evictions;
    }
    rows.push_back({client::fmt_ms(period_s) + " s",
                    client::fmt_ms(agar.mean_latency_ms()),
                    client::fmt_pct(agar.hit_ratio()),
                    std::to_string(evictions / agar.runs.size())});
  }
  std::cout << client::format_table(
      {"period", "avg latency (ms)", "hit ratio", "evictions/run"}, rows);

  std::cout << "\ntakeaway: very short periods churn the configuration "
               "(high evictions, lower hit ratio); the paper's 30 s sits "
               "near the optimum for this request rate.\n";
  return 0;
}
