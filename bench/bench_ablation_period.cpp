// Ablation: the reconfiguration period (the paper fixes 30 s and calls the
// period "a system parameter [that] depends on how rapidly access patterns
// are expected to change").
//
// Short periods see too few requests per period, so the EWMA popularity is
// noisy, marginal objects churn in and out of the configuration, and every
// churned object costs evictions plus re-population. Long periods adapt
// too slowly. This sweep quantifies the sweet spot for the paper's
// workload.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Ablation", "Agar reconfiguration period sweep",
      "300 x 1 MB, zipf 1.1, Frankfurt, 10 MB cache");

  const auto base = api::ExperimentSpec::from_pairs(
      {"system=agar", "objects=300", "object_bytes=1MB", "workload=zipf:1.1",
       "ops=1000", "runs=5", "region=frankfurt", "cache_bytes=10MB"});

  const auto specs = api::sweep(
      base, {{"period_s", {"2", "5", "10", "30", "60", "120"}}});

  std::vector<std::vector<std::string>> rows;
  for (const auto& spec : specs) {
    const auto report = api::run(spec);
    std::uint64_t evictions = 0;
    for (const auto& run : report.result.runs) {
      evictions += run.cache_stats.evictions;
    }
    rows.push_back(
        {client::fmt_ms(spec.experiment.reconfig_period_ms / 1000.0) + " s",
         client::fmt_ms(report.result.mean_latency_ms()),
         client::fmt_pct(report.result.hit_ratio()),
         std::to_string(evictions / report.result.runs.size())});
  }
  std::cout << client::format_table(
      {"period", "avg latency (ms)", "hit ratio", "evictions/run"}, rows);

  std::cout << "\ntakeaway: very short periods churn the configuration "
               "(high evictions, lower hit ratio); the paper's 30 s sits "
               "near the optimum for this request rate.\n";
  return 0;
}
