// Extension: daemon front-end overhead — UDS round-trips vs the
// in-process read path.
//
// agard adds a socket hop, framing, and a per-route mutex in front of the
// same simulator the batch runner drives directly. This bench quantifies
// that overhead: the identical closed-loop key stream is served twice —
// once through a live Server over a Unix-domain socket, once by calling
// the ServiceInstance in-process — and the wall-clock per-request cost of
// each path is reported (requests/s, p50/p99). The virtual-time results
// are byte-identical by construction (that is the daemon's equivalence
// contract, enforced by daemon_server_test); the wall-clock delta IS the
// daemon tax.
//
//   $ ./bench_ext_daemon [--quick] [--json]
#include <unistd.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment_spec.hpp"
#include "client/workload.hpp"
#include "daemon/client.hpp"
#include "daemon/routing.hpp"
#include "daemon/server.hpp"
#include "daemon/service.hpp"
#include "stats/histogram.hpp"

using namespace agar;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathResult {
  std::string name;
  double wall_s = 0.0;
  double rps = 0.0;
  stats::Histogram us;  ///< per-request wall latency, microseconds
};

std::vector<std::string> make_keys(const api::ExperimentSpec& spec,
                                   std::size_t ops) {
  const auto& experiment = spec.experiment;
  client::Workload workload(
      experiment.workload, experiment.deployment.num_objects,
      client::workload_stream_seed(experiment.deployment.seed, 0, 0));
  std::vector<std::string> keys;
  keys.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) keys.push_back(workload.next_key());
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    if (arg == "--quick") quick = true;
  }
  const std::size_t ops = quick ? 2000 : 10000;

  const api::ExperimentSpec spec = api::ExperimentSpec::from_pairs({
      "system=lru",
      "chunks=5",
      "cache_bytes=400KB",
      "objects=100",
      "object_bytes=9000",
      "ops=" + std::to_string(ops),
      "runs=1",
      "clients=1",
      "seed=17",
  });
  const std::vector<std::string> keys = make_keys(spec, ops);

  std::vector<PathResult> results;

  // -------------------------------------------------------- UDS path
  {
    const std::string socket_path =
        "/tmp/agard_bench" + std::to_string(::getpid()) + ".sock";
    daemon::DaemonConfig config;
    config.listen = socket_path;
    daemon::RouteRule rule;
    rule.name = "bench";
    rule.spec = spec;
    rule.spec_json = spec.to_json();
    config.routes.push_back(rule);
    daemon::Server server(std::move(config), daemon::ServerOptions{});
    server.start();

    daemon::DaemonClient connection =
        daemon::DaemonClient::connect_uds(socket_path);
    PathResult r;
    r.name = "uds";
    const double t0 = now_us();
    for (const std::string& key : keys) {
      const double start = now_us();
      const daemon::GetResponse response = connection.get("", key, false);
      if (response.status != daemon::Status::kOk) {
        std::cerr << "bench: unexpected status "
                  << daemon::to_string(response.status) << "\n";
        return 1;
      }
      r.us.add(now_us() - start);
    }
    r.wall_s = (now_us() - t0) / 1e6;
    r.rps = static_cast<double>(ops) / r.wall_s;
    results.push_back(std::move(r));
    server.stop();
  }

  // ------------------------------------------------- in-process path
  {
    daemon::RouteRule rule;
    rule.name = "bench";
    rule.spec = spec;
    rule.spec_json = spec.to_json();
    daemon::ServiceInstance instance(rule);
    PathResult r;
    r.name = "in-process";
    const double t0 = now_us();
    for (const std::string& key : keys) {
      const double start = now_us();
      const daemon::GetResponse response = instance.serve_get(key, false);
      if (response.status != daemon::Status::kOk) {
        std::cerr << "bench: unexpected status "
                  << daemon::to_string(response.status) << "\n";
        return 1;
      }
      r.us.add(now_us() - start);
    }
    r.wall_s = (now_us() - t0) / 1e6;
    r.rps = static_cast<double>(ops) / r.wall_s;
    results.push_back(std::move(r));
  }

  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::cout << (i > 0 ? "," : "") << "\n  {\"system\": \"" << r.name
                << "\", \"ops\": " << ops << ", \"wall_s\": " << r.wall_s
                << ", \"requests_per_s\": " << r.rps
                << ", \"p50_us\": " << r.us.percentile(50)
                << ", \"p99_us\": " << r.us.percentile(99)
                << ", \"mean_us\": " << r.us.mean() << "}";
    }
    std::cout << "\n]\n";
    return 0;
  }

  std::cout << "daemon front-end overhead (" << ops
            << " closed-loop reads, same key stream)\n";
  for (const auto& r : results) {
    std::cout << "  " << r.name << ": " << r.rps << " req/s, p50 "
              << r.us.percentile(50) << " us, p99 " << r.us.percentile(99)
              << " us\n";
  }
  const double tax =
      results[0].us.percentile(50) - results[1].us.percentile(50);
  std::cout << "  p50 socket tax: " << tax << " us/request\n";
  return 0;
}
