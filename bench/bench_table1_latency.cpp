// Table I: per-region chunk read latency as seen from Frankfurt.
//
// The paper measured these with S3 GETs during a warm-up phase; we print
// what the region manager's probe measures against the simulated WAN, for
// both Frankfurt (the paper's table) and Sydney (used throughout §V).
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"
#include "core/region_manager.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Table I", "chunk read latency per backend region",
      "region-manager probes, 20 rounds, ~114 KB chunks, simulated WAN");

  client::DeploymentConfig dep;
  dep.num_objects = 1;
  dep.store_payloads = false;
  client::Deployment deployment(dep);
  const auto& topology = deployment.topology();

  for (const RegionId vantage :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    core::RegionManagerParams params;
    params.local_region = vantage;
    core::RegionManager rm(&deployment.backend(), &deployment.network(),
                           params);
    for (int i = 0; i < 20; ++i) rm.probe();

    std::vector<std::string> headers, row;
    for (RegionId r = 0; r < topology.num_regions(); ++r) {
      headers.push_back(topology.name(r));
      row.push_back(client::fmt_ms(rm.estimate_ms(r)) + " ms");
    }
    std::cout << "from " << topology.name(vantage) << ":\n"
              << client::format_table(headers, {row}) << "\n";
  }

  std::cout << "paper (from Frankfurt): 80 / 200 / 600 / 1400 / 3400 / 4600 "
               "ms -- same ordering, different absolute scale (see "
               "DESIGN.md substitutions).\n";
  return 0;
}
