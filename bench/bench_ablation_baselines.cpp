// Ablation: baseline strength. The paper's LFU client is a frequency proxy
// with a 30 s reconfiguration period; a modern eviction-driven LFU engine
// (instant adaptation, cumulative counts) and a TinyLFU-admission cache
// are strictly stronger baselines. How does Agar fare against each?
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::print_experiment_banner(
      "Ablation", "baseline strength: periodic vs eviction LFU vs TinyLFU",
      "300 x 1 MB, zipf 1.1, Frankfurt, 10 MB cache, 5 runs x 1000 reads");

  client::ExperimentConfig config;
  config.deployment.num_objects = 300;
  config.deployment.object_size_bytes = 1_MB;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 1000;
  config.runs = 5;
  config.client_region = sim::region::kFrankfurt;
  config.reconfig_period_ms = 30'000.0;

  const std::size_t cache = 10_MB;
  const std::vector<StrategySpec> specs = {
      StrategySpec::agar(cache),
      StrategySpec::lfu(5, cache),           // paper's baseline semantics
      StrategySpec::lfu(7, cache),
      StrategySpec::lfu_eviction(5, cache),  // stronger: instant adaptation
      StrategySpec::lfu_eviction(7, cache),
      StrategySpec::tinylfu(5, cache),       // stronger still: admission
      StrategySpec::tinylfu(7, cache),
      StrategySpec::lru(3, cache),
  };
  const auto results = run_comparison(config, specs);
  client::print_results_table(results);

  const double agar = results[0].mean_latency_ms();
  double best_other = results[1].mean_latency_ms();
  std::string best_label = results[1].spec.label();
  for (std::size_t i = 2; i < results.size(); ++i) {
    if (results[i].mean_latency_ms() < best_other) {
      best_other = results[i].mean_latency_ms();
      best_label = results[i].spec.label();
    }
  }
  std::cout << "Agar vs strongest baseline (" << best_label
            << "): " << client::fmt_pct(1.0 - agar / best_other)
            << " lower latency\n"
            << "\ntakeaway: eviction-driven variants adapt instantly and "
               "close part of the gap the paper reports against the "
               "periodic proxy, but the knapsack's chunk-level allocation "
               "still pays at this cache size.\n";
  return 0;
}
