// Ablation: baseline strength. The paper's LFU client is a frequency proxy
// with a 30 s reconfiguration period; a modern eviction-driven LFU engine
// (instant adaptation, cumulative counts), a TinyLFU-admission cache and a
// self-tuning ARC cache are strictly stronger baselines. How does Agar
// fare against each?
//
// ARC appears here purely because its engine is registered — the spec
// literals below are the only place that names it.
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Ablation",
      "baseline strength: periodic vs eviction LFU vs TinyLFU vs ARC",
      "300 x 1 MB, zipf 1.1, Frankfurt, 10 MB cache, 5 runs x 1000 reads");

  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=300", "object_bytes=1MB", "workload=zipf:1.1", "ops=1000",
       "runs=5", "region=frankfurt", "period_s=30", "cache_bytes=10MB"});

  const std::vector<api::ExperimentSpec> specs = {
      base.with({"system=agar"}),
      base.with({"system=lfu", "chunks=5"}),  // paper's baseline semantics
      base.with({"system=lfu", "chunks=7"}),
      base.with({"system=lfu-eviction", "chunks=5"}),  // instant adaptation
      base.with({"system=lfu-eviction", "chunks=7"}),
      base.with({"system=tinylfu", "chunks=5"}),  // stronger: admission
      base.with({"system=tinylfu", "chunks=7"}),
      base.with({"system=arc", "chunks=5"}),  // self-tuning recency/freq
      base.with({"system=arc", "chunks=7"}),
      base.with({"system=lru", "chunks=3"}),
  };
  const auto reports = api::run_all(specs);
  client::print_results_table(api::results_of(reports));

  const double agar = reports[0].result.mean_latency_ms();
  double best_other = reports[1].result.mean_latency_ms();
  std::string best_label = reports[1].label();
  for (std::size_t i = 2; i < reports.size(); ++i) {
    if (reports[i].result.mean_latency_ms() < best_other) {
      best_other = reports[i].result.mean_latency_ms();
      best_label = reports[i].label();
    }
  }
  std::cout << "Agar vs strongest baseline (" << best_label
            << "): " << client::fmt_pct(1.0 - agar / best_other)
            << " lower latency\n"
            << "\ntakeaway: eviction-driven variants adapt instantly and "
               "close part of the gap the paper reports against the "
               "periodic proxy, but the knapsack's chunk-level allocation "
               "still pays at this cache size.\n";
  return 0;
}
