// Cache-engine microbenchmarks: get/put throughput of every engine in the
// api registry under a zipfian key stream, plus the static (Agar) cache.
//
// Benchmarks are registered dynamically from api::EngineRegistry, so a
// newly registered engine (ARC, ...) shows up here with no edits.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_set>

#include "api/registry.hpp"
#include "cache/static_cache.hpp"
#include "client/workload.hpp"

namespace {

using namespace agar;

constexpr std::size_t kChunk = 1024;
constexpr std::size_t kUniverse = 1000;

std::vector<std::string> make_keys() {
  std::vector<std::string> keys;
  keys.reserve(kUniverse);
  for (std::size_t i = 0; i < kUniverse; ++i) {
    keys.push_back("object" + std::to_string(i) + "#0");
  }
  return keys;
}

void run_mixed(benchmark::State& state, cache::CacheEngine& engine) {
  const auto keys = make_keys();
  client::ZipfianGenerator gen(kUniverse, 1.1);
  Rng rng(42);
  for (auto _ : state) {
    const auto& key = keys[gen.next_index(rng)];
    auto hit = engine.get(key);
    if (!hit.has_value()) {
      engine.put(key, Bytes(kChunk, 0));
    }
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_engine_mixed(benchmark::State& state, const std::string& name) {
  const auto engine = api::EngineRegistry::instance().create(
      name,
      api::EngineContext{static_cast<std::size_t>(state.range(0)) * kChunk},
      api::ParamMap{});
  run_mixed(state, *engine);
}

void bm_static_cache_mixed(benchmark::State& state) {
  cache::StaticConfigCache engine(
      static_cast<std::size_t>(state.range(0)) * kChunk);
  // Configure the hot prefix (what the knapsack would pick).
  std::unordered_set<std::string> configured;
  const auto keys = make_keys();
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    configured.insert(keys[i]);
  }
  engine.install_configuration(std::move(configured));
  run_mixed(state, engine);
}

void bm_static_cache_reconfigure(benchmark::State& state) {
  // Cost of installing a new configuration over a populated cache.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  cache::StaticConfigCache engine((n + 1) * kChunk);
  const auto keys = make_keys();
  std::unordered_set<std::string> even, odd;
  for (std::size_t i = 0; i < n && i < keys.size(); ++i) {
    (i % 2 == 0 ? even : odd).insert(keys[i]);
  }
  bool flip = false;
  for (auto _ : state) {
    engine.install_configuration(flip ? even : odd);
    flip = !flip;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : agar::api::EngineRegistry::instance().names()) {
    benchmark::RegisterBenchmark(
        ("BM_EngineMixed/" + name).c_str(),
        [name](benchmark::State& state) { bm_engine_mixed(state, name); })
        ->Arg(100)
        ->Arg(500);
  }
  benchmark::RegisterBenchmark("BM_StaticCacheMixed", bm_static_cache_mixed)
      ->Arg(100)
      ->Arg(500);
  benchmark::RegisterBenchmark("BM_StaticCacheReconfigure",
                               bm_static_cache_reconfigure)
      ->Arg(100)
      ->Arg(900);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
