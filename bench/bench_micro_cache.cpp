// Cache-engine microbenchmarks: get/put throughput of the LRU, LFU, static
// and TinyLFU engines under a zipfian key stream.
#include <benchmark/benchmark.h>

#include <unordered_set>

#include "cache/lfu_cache.hpp"
#include "cache/lru_cache.hpp"
#include "cache/static_cache.hpp"
#include "cache/tinylfu_cache.hpp"
#include "client/workload.hpp"

namespace {

using namespace agar;

constexpr std::size_t kChunk = 1024;
constexpr std::size_t kUniverse = 1000;

std::vector<std::string> make_keys() {
  std::vector<std::string> keys;
  keys.reserve(kUniverse);
  for (std::size_t i = 0; i < kUniverse; ++i) {
    keys.push_back("object" + std::to_string(i) + "#0");
  }
  return keys;
}

template <typename Engine>
void run_mixed(benchmark::State& state, Engine& engine) {
  const auto keys = make_keys();
  client::ZipfianGenerator gen(kUniverse, 1.1);
  Rng rng(42);
  for (auto _ : state) {
    const auto& key = keys[gen.next_index(rng)];
    auto hit = engine.get(key);
    if (!hit.has_value()) {
      engine.put(key, Bytes(kChunk, 0));
    }
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LruMixed(benchmark::State& state) {
  cache::LruCache engine(static_cast<std::size_t>(state.range(0)) * kChunk);
  run_mixed(state, engine);
}
BENCHMARK(BM_LruMixed)->Arg(100)->Arg(500);

void BM_LfuMixed(benchmark::State& state) {
  cache::LfuCache engine(static_cast<std::size_t>(state.range(0)) * kChunk);
  run_mixed(state, engine);
}
BENCHMARK(BM_LfuMixed)->Arg(100)->Arg(500);

void BM_TinyLfuMixed(benchmark::State& state) {
  cache::TinyLfuCache engine(static_cast<std::size_t>(state.range(0)) *
                             kChunk);
  run_mixed(state, engine);
}
BENCHMARK(BM_TinyLfuMixed)->Arg(100)->Arg(500);

void BM_StaticCacheMixed(benchmark::State& state) {
  cache::StaticConfigCache engine(
      static_cast<std::size_t>(state.range(0)) * kChunk);
  // Configure the hot prefix (what the knapsack would pick).
  std::unordered_set<std::string> configured;
  const auto keys = make_keys();
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    configured.insert(keys[i]);
  }
  engine.install_configuration(std::move(configured));
  run_mixed(state, engine);
}
BENCHMARK(BM_StaticCacheMixed)->Arg(100)->Arg(500);

void BM_StaticCacheReconfigure(benchmark::State& state) {
  // Cost of installing a new configuration over a populated cache.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  cache::StaticConfigCache engine((n + 1) * kChunk);
  const auto keys = make_keys();
  std::unordered_set<std::string> even, odd;
  for (std::size_t i = 0; i < n && i < keys.size(); ++i) {
    (i % 2 == 0 ? even : odd).insert(keys[i]);
  }
  bool flip = false;
  for (auto _ : state) {
    engine.install_configuration(flip ? even : odd);
    flip = !flip;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StaticCacheReconfigure)->Arg(100)->Arg(900);

}  // namespace

BENCHMARK_MAIN();
