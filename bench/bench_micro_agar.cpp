// §VI microbenchmarks: the paper reports ~0.5 ms request-monitor handling,
// ~5 ms for the reconfiguration algorithm, and O(C^2) growth in the cache
// size. Measure our implementations directly.
//
// Planner and popularity-estimator benchmarks are registered dynamically
// from api::PlannerRegistry / api::EstimatorRegistry — per-reconfiguration
// planning time for a newly registered planner shows up with no edits.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "api/registry.hpp"
#include "core/agar_node.hpp"
#include "core/knapsack.hpp"
#include "core/option_generator.hpp"
#include "core/planner.hpp"
#include "core/popularity_estimator.hpp"

namespace {

using namespace agar;

// --- request monitor path (every registered estimator) ----------------------

void bm_monitor_record(benchmark::State& state, const std::string& estimator) {
  core::RequestMonitorParams params;
  params.estimator = estimator;
  core::RequestMonitor monitor(params);
  std::vector<ObjectKey> keys;
  for (int i = 0; i < 300; ++i) keys.push_back("object" + std::to_string(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.record_access(keys[i % keys.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// --- option generation ------------------------------------------------------

void BM_OptionGeneration(benchmark::State& state) {
  core::OptionGeneratorParams p;
  p.k = 9;
  p.m = 3;
  p.candidate_weights = {1, 3, 5, 7, 9};
  const core::OptionGenerator gen(p);
  std::vector<core::ChunkCost> costs;
  const std::vector<double> latency = {80, 200, 600, 1000, 1100, 1200};
  for (ChunkIndex i = 0; i < 12; ++i) {
    costs.push_back({i, i % 6, latency[i % 6]});
  }
  for (auto _ : state) {
    auto options = gen.generate("key", costs, 42.0);
    benchmark::DoNotOptimize(options.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptionGeneration);

// --- the knapsack DP: O(C^2)-style growth in the cache size -----------------

std::vector<std::vector<core::CachingOption>> make_groups(std::size_t keys) {
  const std::vector<double> improvement = {2000, 2800, 3200, 3320, 3345};
  const std::vector<std::size_t> weights = {1, 3, 5, 7, 9};
  std::vector<std::vector<core::CachingOption>> groups;
  for (std::size_t key = 0; key < keys; ++key) {
    const double popularity =
        100.0 / std::pow(static_cast<double>(key + 1), 1.1);
    std::vector<core::CachingOption> group;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      core::CachingOption o;
      o.key = "object" + std::to_string(key);
      o.weight = weights[i];
      o.weight_units = weights[i];
      o.value = popularity * improvement[i];
      group.push_back(std::move(o));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

// One cold plan per iteration: this IS the per-reconfiguration planning
// time the control plane charges (capacity in chunks: 45 = 5 MB, 90 =
// 10 MB, ... 900 = 100 MB).
void bm_planner_cold(benchmark::State& state, const std::string& planner_name) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto groups = make_groups(300);
  for (auto _ : state) {
    // Fresh planner per plan: stateful planners must not warm-start here.
    auto planner = api::PlannerRegistry::instance().create(
        planner_name, api::PlannerContext{}, api::ParamMap{});
    auto result = planner->plan(groups, capacity);
    benchmark::DoNotOptimize(result.total_value);
  }
}

// Steady state of the incremental planner: warm re-plans under a small
// per-iteration popularity drift (the EWMA's behavior between shifts).
void bm_planner_warm_replan(benchmark::State& state,
                            const std::string& planner_name) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  auto groups = make_groups(300);
  auto planner = api::PlannerRegistry::instance().create(
      planner_name, api::PlannerContext{}, api::ParamMap{});
  benchmark::DoNotOptimize(planner->plan(groups, capacity).total_value);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& group : groups) {
      for (auto& o : group) o.value *= 1.001;
    }
    state.ResumeTiming();
    auto result = planner->plan(groups, capacity);
    benchmark::DoNotOptimize(result.total_value);
  }
}

// --- a full reconfiguration (probe + roll + solve + install) ---------------

class ReconfigFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    topology_ = std::make_unique<sim::Topology>(sim::aws_six_regions());
    network_ = std::make_unique<sim::Network>(
        sim::LatencyModel(topology_.get(), {}, 5));
    backend_ = std::make_unique<store::BackendCluster>(
        6, ec::CodecParams{9, 3},
        std::make_shared<ec::RoundRobinPlacement>(false));
    for (int i = 0; i < 300; ++i) {
      backend_->register_object("object" + std::to_string(i), 1_MB);
    }
    core::AgarNodeParams p;
    p.region = sim::region::kFrankfurt;
    p.cache_capacity_bytes = 10_MB;
    p.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
    node_ = std::make_unique<core::AgarNode>(backend_.get(), network_.get(),
                                             p);
    node_->warm_up();
  }

  void TearDown(const benchmark::State&) override {
    node_.reset();
    backend_.reset();
    network_.reset();
    topology_.reset();
  }

  std::unique_ptr<sim::Topology> topology_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<store::BackendCluster> backend_;
  std::unique_ptr<core::AgarNode> node_;
};

BENCHMARK_F(ReconfigFixture, FullReconfiguration)(benchmark::State& state) {
  for (auto _ : state) {
    // Keep the monitor warm so the solver sees a realistic key set.
    for (int i = 0; i < 300; ++i) {
      (void)node_->request_monitor().record_access(
          "object" + std::to_string(i % 50));
    }
    node_->reconfigure();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

int main(int argc, char** argv) {
  // Registry-driven registration: every estimator's record path and every
  // planner's per-reconfiguration planning time, no per-entry bench code.
  for (const auto& name : api::EstimatorRegistry::instance().names()) {
    benchmark::RegisterBenchmark(("BM_MonitorRecord/" + name).c_str(),
                                 [name](benchmark::State& state) {
                                   bm_monitor_record(state, name);
                                 });
  }
  for (const auto& name : api::PlannerRegistry::instance().names()) {
    if (name == "brute-force") continue;  // exponential, test-sized only
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_PlannerCold/" + name).c_str(),
        [name](benchmark::State& state) { bm_planner_cold(state, name); });
    for (const int cap : {45, 90, 180, 450, 900}) bench->Arg(cap);
  }
  for (const auto& name : {std::string("knapsack-dp"),
                           std::string("incremental")}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_PlannerWarmReplan/" + name).c_str(),
        [name](benchmark::State& state) {
          bm_planner_warm_replan(state, name);
        });
    bench->Arg(900);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
