// Extension (§VI): write latency with Paxos-backed cache coherence.
//
// Not an experiment from the paper — the paper's evaluation is read-only
// and §VI sketches writes + coherence as future work. This bench measures
// what that future work costs in our implementation: per-region write
// latency (data path vs consensus commit) and the effect of invalidation
// on a read workload with a writer mixed in.
#include <iostream>

#include "api/api.hpp"
#include "client/agar_strategy.hpp"
#include "client/report.hpp"
#include "client/writer.hpp"

using namespace agar;

int main() {
  client::print_experiment_banner(
      "Extension", "writes with Paxos-backed cache coherence (§VI)",
      "RS(9,3), six regions, 1 MB objects; consensus quorum 4/6");

  client::DeploymentConfig dep;
  dep.num_objects = 50;
  dep.object_size_bytes = 1_MB;
  dep.seed = 77;
  dep.store_payloads = false;
  client::Deployment deployment(dep);
  paxos::CoherenceCoordinator coherence(6, &deployment.network());

  // (a) Write latency per writer region.
  const auto topology = sim::aws_six_regions();
  std::vector<std::vector<std::string>> rows;
  for (RegionId r = 0; r < topology.num_regions(); ++r) {
    client::WriterContext wctx;
    wctx.backend = &deployment.backend();
    wctx.network = &deployment.network();
    wctx.region = r;
    wctx.store_payloads = false;
    client::WriterClient writer(wctx, &coherence);

    stats::Histogram total, consensus;
    const Bytes payload(1_MB, 0);
    for (int i = 0; i < 20; ++i) {
      const auto result =
          writer.write("object" + std::to_string(i % 50), BytesView(payload));
      if (!result.ok) continue;
      total.add(result.latency_ms);
      consensus.add(result.consensus_ms);
    }
    rows.push_back({topology.name(r), client::fmt_ms(total.mean()),
                    client::fmt_ms(consensus.mean()),
                    client::fmt_ms(total.mean() - consensus.mean())});
  }
  std::cout << client::format_table(
      {"writer region", "write latency (ms)", "consensus", "data path"},
      rows);

  // (b) Reader + writer mix: invalidations force re-population. The Agar
  // reader comes from the api registry, like every other system.
  const auto reader_spec = api::ExperimentSpec::from_pairs(
      {"system=agar", "region=frankfurt", "cache_bytes=10MB"});
  const auto strategy =
      api::make_strategy(reader_spec, deployment, sim::region::kFrankfurt);
  auto& reader = *dynamic_cast<client::AgarStrategy*>(strategy.get());
  reader.warm_up();
  coherence.attach_cache(sim::region::kFrankfurt, &reader.node().cache(), 12);

  client::WriterContext wctx;
  wctx.backend = &deployment.backend();
  wctx.network = &deployment.network();
  wctx.region = sim::region::kSydney;
  wctx.store_payloads = false;
  client::WriterClient writer(wctx, &coherence);

  client::Workload workload(client::WorkloadSpec::zipfian(1.1), 50, 11);
  stats::Histogram read_only, with_writes;
  // Warm phase, no writer.
  for (int i = 0; i < 200; ++i) (void)reader.read(workload.next_key());
  reader.reconfigure();
  for (int i = 0; i < 300; ++i) {
    read_only.add(reader.read(workload.next_key()).latency_ms);
  }
  // Writer interferes: every 10th operation rewrites a hot object.
  const Bytes payload(1_MB, 0);
  for (int i = 0; i < 300; ++i) {
    if (i % 10 == 0) {
      (void)writer.write("object" + std::to_string(i % 5), BytesView(payload));
    }
    with_writes.add(reader.read(workload.next_key()).latency_ms);
  }
  std::cout << "\nreader mean latency, read-only phase : "
            << client::fmt_ms(read_only.mean()) << " ms\n"
            << "reader mean latency, 10% hot writes  : "
            << client::fmt_ms(with_writes.mean()) << " ms\n"
            << "invalidations applied                : "
            << coherence.invalidations_applied() << "\n";

  std::cout << "\ntakeaway: consensus adds ~2 quorum RTTs per write; "
               "invalidations of hot objects cost readers re-population "
               "misses, which is the coherence tax §VI anticipates.\n";
  return 0;
}
