// SharedBytes — a cheaply copyable, immutable, refcounted chunk buffer.
//
// Chunk payloads used to be deep-copied std::vectors at every hand-off on
// the read path (bucket -> backend -> strategy -> cache -> codec). A chunk
// is written once and then only ever read, so the payload can live in one
// shared immutable allocation and every layer can hold a refcount instead
// of a copy. Copying a SharedBytes is a refcount bump; the bytes themselves
// are never duplicated.
//
// Interop: SharedBytes converts implicitly from Bytes (adopting the buffer
// by move, no byte copy) and to BytesView (a borrowed view into the shared
// allocation), so codec/kernel code keeps operating on plain spans.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "common/bytes.hpp"

namespace agar {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Adopt an owning buffer. Implicit on purpose: call sites that built a
  /// Bytes and hand it off (`put(key, std::move(payload))`) keep working,
  /// now moving into shared ownership instead of copying.
  SharedBytes(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<const Bytes>(std::move(bytes))) {}

  /// Deep-copy from a borrowed view (the only constructor that copies).
  [[nodiscard]] static SharedBytes copy_of(BytesView view) {
    return SharedBytes(Bytes(view.begin(), view.end()));
  }

  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ ? buf_->data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }
  /// Precondition: i < size() (like vector; never dereferences a null
  /// handle ahead of the bounds violation itself).
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  /// Borrowed view; valid while any SharedBytes referencing the buffer
  /// lives.
  [[nodiscard]] BytesView view() const { return BytesView(data(), size()); }
  operator BytesView() const { return view(); }  // NOLINT

  /// Number of owners (tests assert hand-offs don't deep-copy).
  [[nodiscard]] long use_count() const { return buf_.use_count(); }

  /// Value equality: byte-wise content comparison.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    if (a.size() != b.size()) return false;
    if (a.data() == b.data()) return true;
    return std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const Bytes> buf_;
};

}  // namespace agar
