// Byte-buffer helpers used by the erasure codec and the object store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace agar {

/// Owning byte buffer. Chunks, objects and cache entries are Bytes.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning views.
using BytesView = std::span<const std::uint8_t>;
using BytesSpan = std::span<std::uint8_t>;

/// Deterministic payload generator: produces the same bytes for the same
/// (key, size). Used to populate the simulated backend so tests can verify
/// end-to-end reads byte-for-byte without storing golden files.
Bytes deterministic_payload(const std::string& key, std::size_t size);

/// FNV-1a 64-bit hash over a byte range; used for payload fingerprints in
/// tests and for stable key->int mapping.
std::uint64_t fnv1a(BytesView data);
std::uint64_t fnv1a(const std::string& s);

/// Render a byte count human-readably ("10.0 MB"); used by reports.
std::string format_bytes(std::size_t n);

}  // namespace agar
