// Core vocabulary types shared across the Agar reproduction.
//
// These are deliberately small value types: region identifiers, object keys,
// chunk identifiers and simulated-time aliases. Everything that moves between
// subsystems (simulator, store, cache, core algorithm, client) speaks in
// these types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace agar {

/// Identifier of a geographic region (index into a Topology).
using RegionId = std::uint32_t;

/// Sentinel for "no region".
inline constexpr RegionId kInvalidRegion = static_cast<RegionId>(-1);

/// Key identifying a stored object (YCSB-style, e.g. "user4953").
using ObjectKey = std::string;

/// Simulated time in milliseconds. The discrete-event simulator and every
/// latency figure in the reproduction use this unit (the paper reports
/// latencies in ms).
using SimTimeMs = double;

/// Index of a chunk within an erasure-coded stripe: data chunks occupy
/// [0, k), parity chunks occupy [k, k+m).
using ChunkIndex = std::uint32_t;

/// Identifies one chunk of one object.
struct ChunkId {
  ObjectKey key;
  ChunkIndex index = 0;

  bool operator==(const ChunkId&) const = default;

  /// Canonical string form used as a cache key, e.g. "user42#3".
  /// Mirrors how the paper's prototype addressed chunks in memcached.
  [[nodiscard]] std::string cache_key() const {
    return key + "#" + std::to_string(index);
  }
};

/// Bytes helper literals.
inline constexpr std::size_t operator""_KB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024;
}
inline constexpr std::size_t operator""_MB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024 * 1024;
}

}  // namespace agar

template <>
struct std::hash<agar::ChunkId> {
  std::size_t operator()(const agar::ChunkId& c) const noexcept {
    const std::size_t h1 = std::hash<std::string>{}(c.key);
    const std::size_t h2 = std::hash<std::uint32_t>{}(c.index);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
