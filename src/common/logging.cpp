#include "common/logging.hpp"

namespace agar {

namespace {
// agar-lint: global-ok(log verbosity knob; gates stderr diagnostics only,
// never touches results_json or simulation state)
LogLevel g_level = LogLevel::kWarn;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view tag)
    : enabled_(level >= g_level && g_level != LogLevel::kOff) {
  if (enabled_) {
    stream_ << "[" << level_name(level) << "][" << tag << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

}  // namespace detail
}  // namespace agar
