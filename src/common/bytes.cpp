#include "common/bytes.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"

namespace agar {

Bytes deterministic_payload(const std::string& key, std::size_t size) {
  // One SplitMix64 step per 8 output bytes, written word-at-a-time. Keeps
  // working-set population (hundreds of MB for the large-object scenarios)
  // off the wall-clock critical path of tests and benches.
  Bytes out(size);
  SplitMix64 sm(fnv1a(key) ^ 0xa5a5a5a55a5a5a5aULL);
  std::uint8_t* p = out.data();
  std::size_t n = size;
  while (n >= 8) {
    const std::uint64_t v = sm.next();
    std::memcpy(p, &v, 8);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    const std::uint64_t v = sm.next();
    std::memcpy(p, &v, n);
  }
  return out;
}

std::uint64_t fnv1a(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s) {
  return fnv1a(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                         s.size()));
}

std::string format_bytes(std::size_t n) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double v = static_cast<double>(n);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace agar
