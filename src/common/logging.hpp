// Minimal leveled logger.
//
// The simulator and the Agar managers emit structured progress lines; tests
// and benchmarks keep the level at kWarn so output stays clean. This is a
// tiny, allocation-light logger — not a general logging framework.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace agar {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level; defaults to kWarn. Not thread-safe by design: the
/// reproduction is a single-threaded discrete-event simulation and tests set
/// the level once up front.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug(std::string_view tag) {
  return detail::LogLine(LogLevel::kDebug, tag);
}
inline detail::LogLine log_info(std::string_view tag) {
  return detail::LogLine(LogLevel::kInfo, tag);
}
inline detail::LogLine log_warn(std::string_view tag) {
  return detail::LogLine(LogLevel::kWarn, tag);
}
inline detail::LogLine log_error(std::string_view tag) {
  return detail::LogLine(LogLevel::kError, tag);
}

}  // namespace agar
