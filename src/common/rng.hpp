// Deterministic random number generation.
//
// Every stochastic element of the reproduction (workload key choice, network
// jitter, data payloads) draws from explicitly seeded generators so that
// experiments are reproducible run-to-run. We implement splitmix64 (for
// seeding) and xoshiro256** (as the workhorse generator) rather than relying
// on std::mt19937 so the stream is stable across standard library
// implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace agar {

/// splitmix64: tiny, high-quality 64-bit mixer. Used to expand a single
/// user-provided seed into the 256-bit state xoshiro256** requires.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, statistically strong PRNG with a 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef01ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// bias is negligible for the bounds used here (< 2^32).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fill a buffer with pseudo-random bytes (test payloads).
  void fill_bytes(void* data, std::size_t len);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace agar
