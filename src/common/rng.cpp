#include "common/rng.hpp"

#include <cmath>
#include <cstring>

namespace agar {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire reduction: map a 64-bit draw into [0, bound) without modulo.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next_u64()) *
      static_cast<unsigned __int128>(bound);
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

void Rng::fill_bytes(void* data, std::size_t len) {
  auto* out = static_cast<unsigned char*>(data);
  while (len >= 8) {
    const std::uint64_t v = next_u64();
    std::memcpy(out, &v, 8);
    out += 8;
    len -= 8;
  }
  if (len > 0) {
    const std::uint64_t v = next_u64();
    std::memcpy(out, &v, len);
  }
}

}  // namespace agar
