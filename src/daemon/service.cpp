#include "daemon/service.hpp"

#include <algorithm>
#include <cmath>

#include "common/bytes.hpp"

namespace agar::daemon {

ServiceInstance::ServiceInstance(const RouteRule& rule) : rule_(rule) {
  const client::ExperimentConfig& config = rule_.spec.experiment;
  // Mirror the runner's single-lane deployment: run seed = base seed (run
  // 0), payloads materialized only in verify mode (a GET's payload is
  // regenerated from the key instead — same deterministic bytes).
  client::DeploymentConfig dep_config = config.deployment;
  dep_config.store_payloads = config.verify_data;
  deployment_ = std::make_unique<client::Deployment>(dep_config);
  deployment_->bind_lanes({config.client_region});

  loop_.set_scheduling_lane(0);
  loop_.reserve(1024);
  sim::Network& network = deployment_->lane_network(0);
  network.set_max_outstanding_per_region(config.max_outstanding_per_region);
  network.bind_loop(&loop_);

  const client::StrategyFactory factory =
      api::make_strategy_factory(rule_.spec);
  strategy_ = factory(config, *deployment_, config.client_region, &loop_);
  strategy_->warm_up();
  strategy_->attach_to_loop(loop_);
}

GetResponse ServiceInstance::serve_get(const std::string& key,
                                       bool want_payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  GetResponse response;
  if (!deployment_->backend().has_object(key)) {
    response.status = Status::kUnknownKey;
    return response;
  }
  // The sync wrapper drives the shared loop until this read completes —
  // the read starts at the previous completion's virtual time, which is
  // exactly the closed-loop single-client schedule the runner replays.
  // One read in flight at a time, so the runner's concurrency gauge pins
  // at 1 once anything was issued.
  partial_.max_reads_in_flight = std::max<std::size_t>(
      partial_.max_reads_in_flight, 1);
  const client::ReadResult result = strategy_->read(key);

  // Record as the runner's completion closure does, so snapshot() merges
  // into a RunResult byte-identical to a batch run of the same stream.
  ++partial_.ops;
  if (result.failed) {
    ++partial_.failed_reads;
    response.status = Status::kFailedRead;
  } else {
    partial_.latencies.add(result.latency_ms);
    if (result.full_hit) ++partial_.full_hits;
    if (result.partial_hit && !result.full_hit) ++partial_.partial_hits;
    if (result.verified) ++partial_.verified;
    if (result.degraded) ++partial_.degraded_reads;
  }
  partial_.duration_ms = std::max(partial_.duration_ms, loop_.now());

  response.hit = result.full_hit
                     ? HitKind::kFull
                     : (result.partial_hit ? HitKind::kPartial : HitKind::kMiss);
  response.degraded = result.degraded;
  response.virtual_ms = result.latency_ms;
  if (want_payload && !result.failed) {
    const store::ObjectInfo info = deployment_->backend().object_info(key);
    // The working set is deterministic-by-key, so the payload can be
    // regenerated instead of threaded through the strategies (which only
    // move bytes in verify mode).
    const Bytes payload = deterministic_payload(key, info.object_size);
    response.payload.assign(payload.begin(), payload.end());
  }
  return response;
}

void ServiceInstance::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // The windowed engine runs whole 1 s windows and stops at the first
  // boundary at or after the last completion — run the same boundary so
  // trailing populations and control-plane timers fire identically.
  const double window_ms = 1000.0;
  const double boundary = std::ceil(loop_.now() / window_ms) * window_ms;
  loop_.run_until(boundary);
}

void ServiceInstance::advance_idle(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ms > 0.0) loop_.run_until(loop_.now() + ms);
}

store::RepairReport ServiceInstance::repair() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // The repair scan reads chunk bytes out of the buckets; a metadata-only
  // deployment (store_payloads off) would misreport every object as
  // unrecoverable.
  if (!rule_.spec.experiment.verify_data) {
    throw std::runtime_error(
        "route '" + rule_.name +
        "' serves a metadata-only backend; set verify=true in its spec to "
        "materialize chunks and enable repair");
  }
  return store::repair_all(deployment_->backend());
}

client::RunResult ServiceInstance::snapshot() {
  const std::lock_guard<std::mutex> lock(mutex_);
  client::RunResult result = partial_;

  // End-of-run merge, single lane — field for field the runner's version.
  sim::Network& network = deployment_->lane_network(0);
  result.wire_fetches = network.wire_fetches();
  result.queued_fetches = network.queued_fetches();
  result.max_queue_depth = network.max_queue_depth();
  result.max_net_in_flight = network.max_in_flight();
  result.aborted_on_wire = network.aborted_on_wire();
  result.failed_in_queue = network.failed_in_queue();
  result.timed_out_fetches = network.timed_out();

  result.coalesced_fetches = strategy_->fetch_coordinator().coalesced();
  const core::ControlPlaneStats cp = strategy_->control_plane_stats();
  result.reconfigurations = cp.reconfigurations;
  result.planning_ms = cp.planning_ms;
  result.config_chunks_installed = cp.chunks_installed;
  result.config_chunks_evicted = cp.chunks_evicted;

  if (const client::FetchPolicy* policy = strategy_->fetch_policy()) {
    const client::FetchPolicyStats& fs = policy->stats();
    result.fetch_attempts = fs.attempts;
    result.fetch_timeouts = fs.timeouts;
    result.fetch_retries = fs.retries;
    result.hedges_issued = fs.hedges_issued;
    result.hedges_won = fs.hedges_won;
    result.hedges_wasted = fs.hedges_wasted;
    result.fetch_exhausted = fs.exhausted;
    result.region_success_ewma.clear();
    result.region_success_ewma.reserve(policy->num_regions());
    for (RegionId r = 0; r < policy->num_regions(); ++r) {
      result.region_success_ewma.push_back(policy->region_success_ewma(r));
    }
  }

  if (const cache::CacheEngine* cache_engine = strategy_->cache_engine()) {
    result.cache_stats = cache_engine->stats();
    result.cache_used_bytes = cache_engine->used_bytes();
  }
  result.weight_histogram = strategy_->config_weight_histogram();
  result.decode_plan_hits =
      deployment_->backend().codec().rs().decode_plan_hits();
  result.decode_plan_misses =
      deployment_->backend().codec().rs().decode_plan_misses();
  return result;
}

std::uint64_t ServiceInstance::ops_served() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return partial_.ops;
}

}  // namespace agar::daemon
