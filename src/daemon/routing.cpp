#include "daemon/routing.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "api/json.hpp"

namespace agar::daemon {
namespace {

std::uint64_t member_size(const api::JsonValue& object, const std::string& key,
                          std::uint64_t fallback, std::uint64_t max) {
  const api::JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  std::uint64_t parsed = 0;
  try {
    std::size_t pos = 0;
    parsed = std::stoull(value->as_param_text(), &pos);
    if (pos != value->as_param_text().size()) throw std::invalid_argument("");
  } catch (const std::exception&) {
    throw std::invalid_argument("daemon config: '" + key +
                                "' must be a non-negative integer");
  }
  if (parsed > max) {
    throw std::invalid_argument("daemon config: '" + key + "' exceeds " +
                                std::to_string(max));
  }
  return parsed;
}

RouteRule parse_route(const api::JsonValue& entry, std::size_t index) {
  const std::string where = "daemon config: routes[" + std::to_string(index) +
                            "]";
  if (!entry.is_object()) {
    throw std::invalid_argument(where + " must be an object");
  }
  RouteRule rule;
  if (const api::JsonValue* name = entry.find("name")) {
    rule.name = name->as_param_text();
  }
  if (rule.name.empty()) {
    throw std::invalid_argument(where + " needs a non-empty 'name'");
  }
  if (const api::JsonValue* tag = entry.find("tag")) {
    rule.tag = tag->as_param_text();
  }
  if (const api::JsonValue* prefix = entry.find("prefix")) {
    rule.prefix = prefix->as_param_text();
  }
  const api::JsonValue* spec = entry.find("spec");
  if (spec == nullptr || !spec->is_object()) {
    throw std::invalid_argument(where + " needs a 'spec' object");
  }
  try {
    rule.spec = api::spec_from_json_object(*spec);
  } catch (const std::exception& e) {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): " + e.what());
  }

  // The daemon serves each route on one event loop with one strategy
  // instance; spec shapes that only make sense as multi-lane batch runs
  // are rejected at load time so a reload can never wedge the data plane.
  const auto& experiment = rule.spec.experiment;
  if (experiment.effective_client_regions().size() != 1) {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): route specs serve one region (use "
                                "'region', not a 'regions' list)");
  }
  if (experiment.shards != 1) {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): route specs must use shards=1");
  }
  if (!experiment.scenario.empty()) {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): scripted scenarios are a batch-run "
                                "feature; route specs must omit 'scenario'");
  }
  if (experiment.metric_window_ms > 0.0) {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): windowed time-series metrics are a "
                                "batch-run feature; route specs must omit "
                                "'window_ms'");
  }
  if (experiment.collab != "none") {
    throw std::invalid_argument(where + " ('" + rule.name +
                                "'): the cooperative tier spans multiple "
                                "lanes; route specs must use collab=none");
  }
  rule.spec_json = rule.spec.to_json();
  return rule;
}

}  // namespace

DaemonConfig parse_daemon_config(const std::string& text) {
  const api::JsonValue doc = api::parse_json(text);
  if (!doc.is_object()) {
    throw std::invalid_argument(
        "daemon config: top level must be a JSON object");
  }
  DaemonConfig config;
  if (const api::JsonValue* listen = doc.find("listen")) {
    config.listen = listen->as_param_text();
  }
  config.tcp_port = static_cast<std::uint16_t>(
      member_size(doc, "tcp_port", 0, 0xFFFF));
  config.idle_tick_ms = static_cast<std::uint32_t>(
      member_size(doc, "idle_tick_ms", 0, 3'600'000));

  const api::JsonValue* routes = doc.find("routes");
  if (routes == nullptr || !routes->is_array() || routes->array.empty()) {
    throw std::invalid_argument(
        "daemon config: needs a non-empty 'routes' array");
  }
  std::set<std::string> names;
  for (std::size_t i = 0; i < routes->array.size(); ++i) {
    RouteRule rule = parse_route(routes->array[i], i);
    if (!names.insert(rule.name).second) {
      throw std::invalid_argument("daemon config: duplicate route name '" +
                                  rule.name + "'");
    }
    config.routes.push_back(std::move(rule));
  }
  return config;
}

DaemonConfig load_daemon_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read daemon config '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_daemon_config(text.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::optional<std::size_t> match_route(const std::vector<RouteRule>& routes,
                                       const std::string& tag,
                                       const std::string& key) {
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const RouteRule& rule = routes[i];
    if (!rule.tag.empty() && rule.tag != tag) continue;
    if (!rule.prefix.empty() && key.rfind(rule.prefix, 0) != 0) continue;
    return i;
  }
  return std::nullopt;
}

}  // namespace agar::daemon
