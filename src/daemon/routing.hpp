// Declarative request routing for agard — the halmap idea from the GAPS
// HAL exemplar applied to the Agar data plane: a config file is the only
// thing that decides which registered strategy/engine/planner serves a
// request. Adding a route is a config edit; adding a routable system is a
// registry registration. No enum, no daemon code change.
//
// Config grammar (JSON):
//
//   {
//     "listen": "/tmp/agard.sock",      // UDS path (server may override)
//     "tcp_port": 0,                    // optional TCP listener, 0 = off
//     "idle_tick_ms": 0,                // wall-clock virtual-time ticks, 0 = off
//     "routes": [
//       {
//         "name": "hot",                // unique handle (control commands)
//         "tag": "hot",                 // request tag to match ("" = any)
//         "prefix": "object",           // key prefix to match ("" = any)
//         "spec": { "system": "agar", "objects": 300, ... }  // ExperimentSpec
//       }
//     ]
//   }
//
// Matching is first-match-wins in file order: a request (tag, key) matches
// a rule when the rule's tag is empty or equal to the request tag, AND the
// rule's prefix is empty or a prefix of the key. Route specs are full
// ExperimentSpec objects validated against the registries at load time, so
// a typo fails the reload, never a request.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/experiment_spec.hpp"

namespace agar::daemon {

struct RouteRule {
  std::string name;    ///< unique handle, used by control commands
  std::string tag;     ///< request tag to match; empty matches any
  std::string prefix;  ///< key prefix to match; empty matches any
  api::ExperimentSpec spec;
  /// The spec's JSON sub-document, re-serialized canonically
  /// (ExperimentSpec::to_json). Route identity across reloads: a reload
  /// whose rule has the same name/tag/prefix/spec_json keeps the warm
  /// serving instance.
  std::string spec_json;
};

struct DaemonConfig {
  std::string listen = "/tmp/agard.sock";
  std::uint16_t tcp_port = 0;  ///< 0 disables the TCP listener
  /// Wall-clock housekeeping period: every idle_tick_ms of real time the
  /// server advances each idle route's virtual clock by the same amount,
  /// so periodic control planes (probe -> reconfigure -> populate) fire
  /// even with no traffic. 0 disables — virtual time then advances only
  /// when requests are served, which keeps runs exactly replayable.
  std::uint32_t idle_tick_ms = 0;
  std::vector<RouteRule> routes;
};

/// Parse a routing config document. Throws std::invalid_argument with the
/// offending key/route on any malformed or non-routable entry (duplicate
/// route names, multi-region/sharded/scenario specs, unknown systems).
[[nodiscard]] DaemonConfig parse_daemon_config(const std::string& text);

/// `parse_daemon_config` over a file. Throws std::invalid_argument naming
/// the path on read failure.
[[nodiscard]] DaemonConfig load_daemon_config(const std::string& path);

/// First rule matching (tag, key) in file order, or nullopt.
[[nodiscard]] std::optional<std::size_t> match_route(
    const std::vector<RouteRule>& routes, const std::string& tag,
    const std::string& key);

}  // namespace agar::daemon
