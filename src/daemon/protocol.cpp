#include "daemon/protocol.hpp"

#include <cstring>

namespace agar::daemon {
namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian reader over a body string. Any read past
/// the end is a truncated body -> ProtocolError.
class Reader {
 public:
  explicit Reader(const std::string& body) : body_(body) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(body_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<unsigned char>(body_[pos_]) |
        (static_cast<unsigned char>(body_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    need(4);
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(body_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    need(8);
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(body_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string bytes(std::size_t n) {
    need(n);
    std::string v = body_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::string str16() { return bytes(u16()); }
  std::string str32() {
    std::uint32_t n = u32();
    if (n > kMaxBodyBytes) {
      throw ProtocolError("embedded length exceeds frame limit");
    }
    return bytes(n);
  }

  /// Everything not yet consumed (control-reply text).
  std::string rest() { return body_.substr(pos_); }

  void expect_end() const {
    if (pos_ != body_.size()) {
      throw ProtocolError("trailing bytes after message body");
    }
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > body_.size()) {
      throw ProtocolError("truncated message body");
    }
  }

  const std::string& body_;
  std::size_t pos_ = 0;
};

Status decode_status(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Status::kShuttingDown)) {
    throw ProtocolError("unknown status byte");
  }
  return static_cast<Status>(raw);
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kFailedRead:
      return "failed_read";
    case Status::kNoRoute:
      return "no_route";
    case Status::kUnknownKey:
      return "unknown_key";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kError:
      return "error";
    case Status::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

std::string encode_frame(MsgType type, bool is_reply, const std::string& body) {
  if (body.size() > kMaxBodyBytes) {
    throw ProtocolError("frame body exceeds kMaxBodyBytes");
  }
  std::string out;
  out.reserve(kHeaderBytes + body.size());
  put_u32(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(type) |
                                  (is_reply ? kReplyBit : 0)));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out += body;
  return out;
}

FrameHeader decode_header(const unsigned char* bytes, std::size_t len) {
  if (len < kHeaderBytes) {
    throw ProtocolError("short frame header");
  }
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  if (magic != kMagic) {
    throw ProtocolError("bad frame magic");
  }
  if (bytes[4] != kVersion) {
    throw ProtocolError("unsupported protocol version");
  }
  std::uint8_t raw_type = bytes[5];
  bool is_reply = (raw_type & kReplyBit) != 0;
  raw_type = static_cast<std::uint8_t>(raw_type & ~kReplyBit);
  if (raw_type < static_cast<std::uint8_t>(MsgType::kGet) ||
      raw_type > static_cast<std::uint8_t>(MsgType::kSpecOf)) {
    throw ProtocolError("unknown message type");
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    throw ProtocolError("nonzero reserved header bits");
  }
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(bytes[8 + i]) << (8 * i);
  }
  if (body_len > kMaxBodyBytes) {
    throw ProtocolError("frame body length exceeds limit");
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(raw_type);
  header.is_reply = is_reply;
  header.body_len = body_len;
  return header;
}

std::string encode_get_request(const GetRequest& request) {
  if (request.tag.size() > 0xFFFF || request.key.size() > 0xFFFF) {
    throw ProtocolError("tag/key too long");
  }
  std::string out;
  put_u16(out, static_cast<std::uint16_t>(request.tag.size()));
  out += request.tag;
  put_u16(out, static_cast<std::uint16_t>(request.key.size()));
  out += request.key;
  out.push_back(request.want_payload ? 1 : 0);
  return out;
}

GetRequest decode_get_request(const std::string& body) {
  Reader reader(body);
  GetRequest request;
  request.tag = reader.str16();
  request.key = reader.str16();
  request.want_payload = reader.u8() != 0;
  reader.expect_end();
  if (request.key.empty()) {
    throw ProtocolError("empty key in GET request");
  }
  return request;
}

std::string encode_get_response(const GetResponse& response) {
  std::string out;
  out.push_back(static_cast<char>(response.status));
  out.push_back(static_cast<char>(response.hit));
  out.push_back(response.degraded ? 1 : 0);
  put_u32(out, response.route);
  put_f64(out, response.virtual_ms);
  put_u64(out, response.wall_us);
  put_u32(out, static_cast<std::uint32_t>(response.payload.size()));
  out += response.payload;
  return out;
}

GetResponse decode_get_response(const std::string& body) {
  Reader reader(body);
  GetResponse response;
  response.status = decode_status(reader.u8());
  std::uint8_t hit = reader.u8();
  if (hit > static_cast<std::uint8_t>(HitKind::kFull)) {
    throw ProtocolError("unknown hit kind");
  }
  response.hit = static_cast<HitKind>(hit);
  response.degraded = reader.u8() != 0;
  response.route = reader.u32();
  response.virtual_ms = reader.f64();
  response.wall_us = reader.u64();
  response.payload = reader.str32();
  reader.expect_end();
  return response;
}

std::string encode_control_reply(const ControlReply& reply) {
  std::string out;
  out.push_back(static_cast<char>(reply.status));
  out += reply.text;
  return out;
}

ControlReply decode_control_reply(const std::string& body) {
  Reader reader(body);
  ControlReply reply;
  reply.status = decode_status(reader.u8());
  reply.text = reader.rest();
  return reply;
}

}  // namespace agar::daemon
