// The agard server: a poll-driven accept loop on a Unix-domain socket
// (plus an optional loopback TCP listener), one connection thread per
// client, and a shared routing table of warm ServiceInstances swapped
// atomically on reload.
//
// Reload semantics (SIGHUP or the RELOAD control command): the new config
// is parsed and validated off to the side; rules whose identity
// (name/tag/prefix/spec) is unchanged keep their warm instance — cache
// contents, control-plane state and virtual clock intact — while changed
// or new rules get fresh instances. The table pointer is then swapped
// under the lock. In-flight requests hold a shared_ptr to the table they
// matched against, so a reload never drops or reroutes a request that has
// already been admitted; a failed parse leaves the old table serving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.hpp"
#include "daemon/routing.hpp"
#include "daemon/service.hpp"

namespace agar::daemon {

struct ServerOptions {
  /// Routing config path — kept for SIGHUP / argument-less RELOAD.
  std::string config_path;
  /// Overrides the config's "listen" UDS path when non-empty.
  std::string listen_override;
  /// Install the SIGHUP -> reload handler (a process-wide action; tests
  /// that run several servers in one process leave it off and reload via
  /// the control command instead).
  bool install_sighup = false;
};

/// Daemon-level counters (everything results_json cannot know about).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t requests = 0;        ///< frames dispatched, all types
  std::uint64_t gets = 0;
  std::uint64_t no_route = 0;
  std::uint64_t unknown_key = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t reloads = 0;
};

class Server {
 public:
  Server(DaemonConfig config, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listeners and start the accept thread. Throws
  /// std::runtime_error on bind failure.
  void start();

  /// Block until a SHUTDOWN command (or stop()) ends the serve loop.
  void wait();

  /// Stop serving: closes listeners, shuts down live connections, joins
  /// every thread. Idempotent.
  void stop();

  /// Apply a new routing config (empty path = re-read the start path).
  /// Returns a human-readable summary ("5 routes: 3 kept, 2 new").
  /// Throws std::invalid_argument on a bad config — the old table stays.
  std::string reload(const std::string& path);

  /// The metrics dump. `results_only` emits just the client::results_json
  /// array (what an equivalent in-process run prints), the full form wraps
  /// it with the daemon counters.
  [[nodiscard]] std::string metrics_json(bool results_only);

  [[nodiscard]] const std::string& socket_path() const { return uds_path_; }
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Write end of the wake pipe: writing 'Q' stops the serve loop, 'H'
  /// triggers a reload. The async-signal-safe stop channel for callers
  /// that install their own SIGTERM/SIGINT handlers (agard's main).
  [[nodiscard]] int stop_fd() const { return wake_pipe_[1]; }

 private:
  struct RouteTable {
    std::vector<RouteRule> rules;
    std::vector<std::shared_ptr<ServiceInstance>> instances;
  };

  [[nodiscard]] std::shared_ptr<const RouteTable> table();
  [[nodiscard]] static std::shared_ptr<RouteTable> build_table(
      const DaemonConfig& config, const RouteTable* previous,
      std::size_t* kept_out);

  void accept_loop();
  void handle_connection(int fd);
  /// Dispatch one decoded frame; returns the reply frame.
  [[nodiscard]] std::string dispatch(const FrameHeader& header,
                                     const std::string& body);
  [[nodiscard]] std::string handle_get(const std::string& body);
  [[nodiscard]] std::string control_reply(MsgType type, Status status,
                                          const std::string& text);
  void request_stop();

  DaemonConfig config_;
  ServerOptions options_;
  std::string uds_path_;
  std::uint16_t tcp_port_ = 0;

  std::mutex mutex_;  ///< guards table_, stats_, conn_fds_
  std::shared_ptr<const RouteTable> table_;
  ServerStats stats_;
  std::set<int> conn_fds_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int tcp_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: signal handler + stop()
  std::thread accept_thread_;
  std::thread tick_thread_;  ///< idle_tick_ms > 0: wall-clock virtual ticks
  std::vector<std::thread> conn_threads_;
  std::condition_variable stopped_cv_;
  std::mutex stopped_mutex_;
  bool stopped_ = false;
};

}  // namespace agar::daemon
