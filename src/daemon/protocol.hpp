// agard wire protocol: a small length-prefixed binary framing shared by the
// daemon, the agarctl client and the tests.
//
// Every message is one frame:
//
//   offset  size  field
//        0     4  magic "AGAR" (0x41474152, little-endian on the wire)
//        4     1  protocol version (kVersion)
//        5     1  message type (MsgType; bit 7 set on replies)
//        6     2  reserved, must be zero
//        8     4  body length in bytes (<= kMaxBodyBytes)
//       12     n  body
//
// All integers are little-endian. Doubles travel as the IEEE-754 bit
// pattern of the value in a u64. A malformed frame (bad magic, unknown
// version, oversized body) is a protocol error: the peer answers with an
// error reply when it still can and closes the connection — it never
// crashes and never guesses at resynchronization.
//
// GET is the data-plane request (tag + key -> status + telemetry +
// optional payload); everything else is a control command whose body is
// UTF-8 text in and UTF-8 JSON out, so new control verbs need no new
// binary encodings.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace agar::daemon {

inline constexpr std::uint32_t kMagic = 0x41474152u;  // "AGAR"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on one frame body: large enough for any object payload the
/// experiments use (<= tens of MB), small enough that a garbage length
/// field cannot drive an allocation bomb.
inline constexpr std::uint32_t kMaxBodyBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kGet = 1,       ///< data plane: read one object through the routed engine
  kMetrics = 2,   ///< control: JSON metrics dump (body: options text)
  kReload = 3,    ///< control: reload routing config (body: optional path)
  kPing = 4,      ///< control: liveness probe
  kShutdown = 5,  ///< control: graceful shutdown
  kRoutes = 6,    ///< control: JSON routing-table summary
  kDrain = 7,     ///< control: run each route's loop to its window boundary
  kRepair = 8,    ///< control: scan-and-repair a route's backend stripes
  kSpecOf = 9,    ///< control: the ExperimentSpec JSON of one route
};
inline constexpr std::uint8_t kReplyBit = 0x80;

/// Status byte of a reply frame.
enum class Status : std::uint8_t {
  kOk = 0,
  kFailedRead = 1,    ///< read exhausted every fallback (outage semantics)
  kNoRoute = 2,       ///< no routing rule matched the (tag, key)
  kUnknownKey = 3,    ///< route matched but the key is not in its working set
  kBadRequest = 4,    ///< malformed request body
  kError = 5,         ///< internal error (message in body text)
  kShuttingDown = 6,  ///< daemon is draining; retry against a new instance
};

[[nodiscard]] const char* to_string(Status status);

/// Malformed frame or body. The server turns this into an error reply (when
/// a header was readable) and closes; the client surfaces it to the caller.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FrameHeader {
  MsgType type = MsgType::kPing;
  bool is_reply = false;
  std::uint32_t body_len = 0;
};

/// Serialize a frame header + body.
[[nodiscard]] std::string encode_frame(MsgType type, bool is_reply,
                                       const std::string& body);

/// Parse and validate the 12 header bytes. Throws ProtocolError on bad
/// magic, unknown version, nonzero reserved bits, unknown type, or a body
/// length above kMaxBodyBytes.
[[nodiscard]] FrameHeader decode_header(const unsigned char* bytes,
                                        std::size_t len);

// ------------------------------------------------------------------ GET

struct GetRequest {
  std::string tag;   ///< routing tag (halmap-style; may be empty)
  std::string key;   ///< object key
  bool want_payload = false;  ///< return the object bytes, not just telemetry
};

/// How the read was served (mirrors ReadResult's hit classification).
enum class HitKind : std::uint8_t { kMiss = 0, kPartial = 1, kFull = 2 };

struct GetResponse {
  Status status = Status::kOk;
  HitKind hit = HitKind::kMiss;
  bool degraded = false;
  std::uint32_t route = 0;        ///< index of the matched routing rule
  double virtual_ms = 0.0;        ///< simulated read latency
  std::uint64_t wall_us = 0;      ///< wall-clock service time in the daemon
  std::string payload;            ///< object bytes (want_payload && kOk)
};

[[nodiscard]] std::string encode_get_request(const GetRequest& request);
[[nodiscard]] GetRequest decode_get_request(const std::string& body);

[[nodiscard]] std::string encode_get_response(const GetResponse& response);
[[nodiscard]] GetResponse decode_get_response(const std::string& body);

// ------------------------------------------------- control message bodies
// Control replies lead with a status byte; the rest of the body is UTF-8
// text (JSON for metrics/routes/spec dumps, a plain message otherwise).

struct ControlReply {
  Status status = Status::kOk;
  std::string text;
};

[[nodiscard]] std::string encode_control_reply(const ControlReply& reply);
[[nodiscard]] ControlReply decode_control_reply(const std::string& body);

}  // namespace agar::daemon
