// Client side of the agard protocol: one blocking connection, one
// request/reply in flight at a time. Shared by agarctl, the daemon tests
// and bench_ext_daemon so the wire encoding lives in exactly one place.
#pragma once

#include <cstdint>
#include <string>

#include "daemon/protocol.hpp"

namespace agar::daemon {

class DaemonClient {
 public:
  /// Connect to a Unix-domain socket. Throws std::runtime_error.
  static DaemonClient connect_uds(const std::string& path);
  /// Connect to a TCP endpoint (agard binds loopback only).
  static DaemonClient connect_tcp(const std::string& host, std::uint16_t port);

  DaemonClient(DaemonClient&& other) noexcept;
  DaemonClient& operator=(DaemonClient&& other) noexcept;
  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;
  ~DaemonClient();

  /// One routed read. Throws on transport/protocol failure; a routing or
  /// read failure comes back in the response status.
  [[nodiscard]] GetResponse get(const std::string& tag, const std::string& key,
                                bool want_payload = false);

  /// Control commands; each returns the reply (status + text). Throws on
  /// transport/protocol failure only.
  [[nodiscard]] ControlReply ping();
  [[nodiscard]] ControlReply metrics(bool results_only = false);
  [[nodiscard]] ControlReply reload(const std::string& path = "");
  [[nodiscard]] ControlReply routes();
  [[nodiscard]] ControlReply drain();
  [[nodiscard]] ControlReply repair(const std::string& route = "");
  [[nodiscard]] ControlReply spec_of(const std::string& route);
  [[nodiscard]] ControlReply shutdown();

  /// Raw frame exchange (protocol tests drive malformed frames with it).
  [[nodiscard]] std::string roundtrip(const std::string& frame,
                                      MsgType expect_type);

 private:
  explicit DaemonClient(int fd) : fd_(fd) {}
  [[nodiscard]] ControlReply control(MsgType type, const std::string& body);

  int fd_ = -1;
};

}  // namespace agar::daemon
