// One route's serving core: the simulator wired up exactly as the
// experiment runner's single-lane setup, but driven request-by-request
// from the socket instead of by closed-loop client events.
//
// The equivalence contract this file exists for: serving the key stream of
// a clients=1 runs=1 run through `serve_get`, then `drain()`, produces the
// same RunResult — byte for byte, via client::results_json — as
// client::run_experiment on the same spec. Virtual time advances only
// while a request drives the loop (each read starts at the previous read's
// completion time, which is precisely the closed-loop single-client
// schedule), and `drain()` replays the windowed engine's final-boundary
// semantics. That is what lets CI diff a daemon metrics dump against an
// in-process agar_cli run.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "api/run.hpp"
#include "daemon/protocol.hpp"
#include "daemon/routing.hpp"
#include "sim/event_loop.hpp"
#include "store/repair.hpp"

namespace agar::daemon {

/// A live, warmed strategy instance serving one routing rule. Thread-safe:
/// the server's connection threads funnel every call through one internal
/// mutex, so the simulator only ever advances under one thread at a time.
class ServiceInstance {
 public:
  explicit ServiceInstance(const RouteRule& rule);

  ServiceInstance(const ServiceInstance&) = delete;
  ServiceInstance& operator=(const ServiceInstance&) = delete;

  [[nodiscard]] const RouteRule& rule() const { return rule_; }

  /// Serve one read on the virtual timeline. Fills everything except
  /// `route` and `wall_us` (the server stamps those).
  [[nodiscard]] GetResponse serve_get(const std::string& key,
                                      bool want_payload);

  /// Run the loop to the next whole metric window boundary — the windowed
  /// engine's end-of-run semantics (trailing populations and control-plane
  /// timers at or before the boundary fire; later ones stay queued).
  void drain();

  /// Advance the virtual clock by `ms` with no request in flight (the
  /// wall-clock idle tick): periodic control planes keep reconfiguring on
  /// a quiet daemon.
  void advance_idle(double ms);

  /// Scan-and-repair this route's backend stripes (the store/repair
  /// operator path, live behind the REPAIR control command).
  [[nodiscard]] store::RepairReport repair();

  /// End-of-run result assembled exactly as the runner's lane merge; the
  /// server serializes it through client::results_json.
  [[nodiscard]] client::RunResult snapshot();

  /// Reads served so far (daemon-level counters).
  [[nodiscard]] std::uint64_t ops_served();

 private:
  RouteRule rule_;
  std::mutex mutex_;
  std::unique_ptr<client::Deployment> deployment_;
  sim::EventLoop loop_;
  std::unique_ptr<client::ReadStrategy> strategy_;
  client::RunResult partial_;  ///< completion counters, as the runner records
};

}  // namespace agar::daemon
