#include "daemon/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace agar::daemon {
namespace {

void read_exact(int fd, unsigned char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
}

void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

DaemonClient DaemonClient::connect_uds(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("UDS path empty or too long: '" + path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect '" + path + "': " + err);
  }
  return DaemonClient(fd);
}

DaemonClient DaemonClient::connect_tcp(const std::string& host,
                                       std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + err);
  }
  return DaemonClient(fd);
}

DaemonClient::DaemonClient(DaemonClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

DaemonClient& DaemonClient::operator=(DaemonClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string DaemonClient::roundtrip(const std::string& frame,
                                    MsgType expect_type) {
  write_all(fd_, frame);
  unsigned char header_bytes[kHeaderBytes];
  read_exact(fd_, header_bytes, kHeaderBytes);
  const FrameHeader header = decode_header(header_bytes, kHeaderBytes);
  if (!header.is_reply || header.type != expect_type) {
    throw ProtocolError("unexpected reply frame type");
  }
  std::string body(header.body_len, '\0');
  if (header.body_len > 0) {
    read_exact(fd_, reinterpret_cast<unsigned char*>(body.data()),
               body.size());
  }
  return body;
}

GetResponse DaemonClient::get(const std::string& tag, const std::string& key,
                              bool want_payload) {
  const std::string frame =
      encode_frame(MsgType::kGet, /*is_reply=*/false,
                   encode_get_request(GetRequest{tag, key, want_payload}));
  return decode_get_response(roundtrip(frame, MsgType::kGet));
}

ControlReply DaemonClient::control(MsgType type, const std::string& body) {
  const std::string frame = encode_frame(type, /*is_reply=*/false, body);
  return decode_control_reply(roundtrip(frame, type));
}

ControlReply DaemonClient::ping() { return control(MsgType::kPing, ""); }

ControlReply DaemonClient::metrics(bool results_only) {
  return control(MsgType::kMetrics, results_only ? "results-only" : "");
}

ControlReply DaemonClient::reload(const std::string& path) {
  return control(MsgType::kReload, path);
}

ControlReply DaemonClient::routes() { return control(MsgType::kRoutes, ""); }

ControlReply DaemonClient::drain() { return control(MsgType::kDrain, ""); }

ControlReply DaemonClient::repair(const std::string& route) {
  return control(MsgType::kRepair, route);
}

ControlReply DaemonClient::spec_of(const std::string& route) {
  return control(MsgType::kSpecOf, route);
}

ControlReply DaemonClient::shutdown() {
  return control(MsgType::kShutdown, "");
}

}  // namespace agar::daemon
