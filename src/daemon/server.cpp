#include "daemon/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "api/json.hpp"
#include "client/report.hpp"
#include "common/logging.hpp"

namespace agar::daemon {
namespace {

// Self-pipe write end for the SIGHUP handler. Signal dispositions are
// process-wide, so this cannot live inside a Server instance; only the
// async-signal-safe write(2) happens in the handler.
std::atomic<int> g_sighup_pipe_fd{-1};  // agar-lint: global-ok(signal handler state is process-wide by nature of signal(2))

extern "C" void on_sighup(int) {
  const int fd = g_sighup_pipe_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'H';
    // The return value is unusable in a signal handler; a full pipe just
    // coalesces reload requests.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Read exactly `len` bytes. Returns false on clean EOF at offset 0;
/// throws on mid-frame EOF or I/O error.
bool read_exact(int fd, unsigned char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, out + got, len - got);
    if (n == 0) {
      if (got == 0) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

int bind_uds(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("UDS path empty or too long: '" + path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // a stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen '" + path + "': " + err);
  }
  return fd;
}

int bind_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Loopback only: agard is a load-test target, not an internet service.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind/listen 127.0.0.1:" + std::to_string(port) +
                             ": " + err);
  }
  return fd;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(DaemonConfig config, ServerOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  uds_path_ = options_.listen_override.empty() ? config_.listen
                                               : options_.listen_override;
  tcp_port_ = config_.tcp_port;
}

Server::~Server() { stop(); }

std::shared_ptr<const Server::RouteTable> Server::table() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

std::shared_ptr<Server::RouteTable> Server::build_table(
    const DaemonConfig& config, const RouteTable* previous,
    std::size_t* kept_out) {
  auto next = std::make_shared<RouteTable>();
  next->rules = config.routes;
  next->instances.reserve(config.routes.size());
  std::size_t kept = 0;
  for (const RouteRule& rule : config.routes) {
    std::shared_ptr<ServiceInstance> instance;
    if (previous != nullptr) {
      // Identity match keeps the warm instance: cache contents, control
      // plane and virtual clock survive the reload.
      for (std::size_t i = 0; i < previous->rules.size(); ++i) {
        const RouteRule& old = previous->rules[i];
        if (old.name == rule.name && old.tag == rule.tag &&
            old.prefix == rule.prefix && old.spec_json == rule.spec_json) {
          instance = previous->instances[i];
          ++kept;
          break;
        }
      }
    }
    if (instance == nullptr) {
      instance = std::make_shared<ServiceInstance>(rule);
    }
    next->instances.push_back(std::move(instance));
  }
  if (kept_out != nullptr) *kept_out = kept;
  return next;
}

void Server::start() {
  if (running_.load()) return;
  table_ = build_table(config_, nullptr, nullptr);

  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  listen_fd_ = bind_uds(uds_path_);
  if (tcp_port_ != 0) tcp_fd_ = bind_tcp(tcp_port_);
  if (options_.install_sighup) {
    g_sighup_pipe_fd.store(wake_pipe_[1], std::memory_order_relaxed);
    struct sigaction action{};
    action.sa_handler = on_sighup;
    ::sigaction(SIGHUP, &action, nullptr);
  }

  running_.store(true);
  stopped_ = false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.idle_tick_ms > 0) {
    // The wall-clock bridge for the control plane: every tick advances
    // each route's virtual clock by the tick width, so periodic
    // reconfiguration fires on a quiet daemon. Off by default — a ticked
    // daemon's metrics are no longer replayable against a batch run.
    // Tick width is fixed at start (a reload cannot change it; restart to
    // retune) so the thread never races reload's config writes.
    const std::uint32_t tick_ms = std::max<std::uint32_t>(
        1, config_.idle_tick_ms);
    tick_thread_ = std::thread([this, tick_ms] {
      std::unique_lock<std::mutex> lock(stopped_mutex_);
      while (running_.load()) {
        if (stopped_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                                 [this] { return !running_.load(); })) {
          break;
        }
        lock.unlock();
        const auto t = table();
        for (const auto& instance : t->instances) {
          instance->advance_idle(static_cast<double>(tick_ms));
        }
        lock.lock();
      }
    });
  }
  log_info("agard") << "listening on " << uds_path_
                    << (tcp_fd_ >= 0
                            ? " and 127.0.0.1:" + std::to_string(tcp_port_)
                            : "")
                    << " (" << table()->rules.size() << " routes)";
}

void Server::accept_loop() {
  while (running_.load()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {wake_pipe_[0], POLLIN, 0};
    fds[nfds++] = {listen_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char bytes[64];
      const ssize_t n = ::read(wake_pipe_[0], bytes, sizeof(bytes));
      bool hup = false;
      bool quit = false;
      for (ssize_t i = 0; i < n; ++i) {
        hup = hup || bytes[i] == 'H';
        quit = quit || bytes[i] == 'Q';
      }
      if (quit) request_stop();
      if (!running_.load()) break;
      if (hup) {
        try {
          const std::string summary = reload("");
          log_info("agard") << "SIGHUP reload: " << summary;
        } catch (const std::exception& e) {
          log_info("agard") << "SIGHUP reload failed (old config stays): "
                            << e.what();
        }
      }
    }
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.accepted;
        ++stats_.active_connections;
        conn_fds_.insert(fd);
      }
      conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
    }
  }
}

void Server::handle_connection(int fd) {
  bool want_stop = false;
  try {
    while (running_.load()) {
      unsigned char header_bytes[kHeaderBytes];
      if (!read_exact(fd, header_bytes, kHeaderBytes)) break;  // clean EOF
      FrameHeader header;
      try {
        header = decode_header(header_bytes, kHeaderBytes);
      } catch (const ProtocolError&) {
        // Framing is lost — no reply can be trusted to parse. Close.
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.protocol_errors;
        break;
      }
      std::string body(header.body_len, '\0');
      if (header.body_len > 0 &&
          !read_exact(fd, reinterpret_cast<unsigned char*>(body.data()),
                      body.size())) {
        break;
      }

      std::string reply;
      try {
        reply = dispatch(header, body);
      } catch (const ProtocolError& e) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.protocol_errors;
        }
        reply = control_reply(header.type, Status::kBadRequest, e.what());
      } catch (const std::exception& e) {
        reply = control_reply(header.type, Status::kError, e.what());
      }
      write_all(fd, reply);
      if (header.type == MsgType::kShutdown) {
        want_stop = true;
        break;
      }
    }
  } catch (const std::exception&) {
    // Torn connection (reset mid-frame, write to a closed peer): drop it.
  }
  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    conn_fds_.erase(fd);
    --stats_.active_connections;
  }
  if (want_stop) request_stop();
}

std::string Server::control_reply(MsgType type, Status status,
                                  const std::string& text) {
  return encode_frame(type, /*is_reply=*/true,
                      encode_control_reply(ControlReply{status, text}));
}

std::string Server::dispatch(const FrameHeader& header,
                             const std::string& body) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }
  switch (header.type) {
    case MsgType::kGet:
      return handle_get(body);
    case MsgType::kPing:
      return control_reply(header.type, Status::kOk, "pong");
    case MsgType::kMetrics:
      return control_reply(header.type, Status::kOk,
                           metrics_json(body == "results-only"));
    case MsgType::kReload: {
      const std::string summary = reload(body);
      return control_reply(header.type, Status::kOk, summary);
    }
    case MsgType::kRoutes: {
      const auto t = table();
      std::ostringstream out;
      out << "[";
      for (std::size_t i = 0; i < t->rules.size(); ++i) {
        const RouteRule& rule = t->rules[i];
        out << (i > 0 ? ",\n " : "") << "{\"name\": \""
            << api::json_escape(rule.name) << "\", \"tag\": \""
            << api::json_escape(rule.tag) << "\", \"prefix\": \""
            << api::json_escape(rule.prefix) << "\", \"system\": \""
            << api::json_escape(rule.spec.system) << "\", \"label\": \""
            << api::json_escape(rule.spec.label()) << "\", \"ops\": "
            << t->instances[i]->ops_served() << "}";
      }
      out << "]\n";
      return control_reply(header.type, Status::kOk, out.str());
    }
    case MsgType::kDrain: {
      const auto t = table();
      for (const auto& instance : t->instances) instance->drain();
      return control_reply(header.type, Status::kOk, "drained");
    }
    case MsgType::kRepair: {
      const auto t = table();
      std::ostringstream out;
      out << "[";
      bool any = false;
      for (std::size_t i = 0; i < t->rules.size(); ++i) {
        if (!body.empty() && t->rules[i].name != body) continue;
        const store::RepairReport report = t->instances[i]->repair();
        out << (any ? ",\n " : "") << "{\"name\": \""
            << api::json_escape(t->rules[i].name)
            << "\", \"objects_scanned\": " << report.objects_scanned
            << ", \"objects_damaged\": " << report.objects_damaged
            << ", \"objects_repaired\": " << report.objects_repaired
            << ", \"objects_unrecoverable\": " << report.objects_unrecoverable
            << ", \"chunks_rebuilt\": " << report.chunks_rebuilt << "}";
        any = true;
      }
      out << "]\n";
      if (!body.empty() && !any) {
        return control_reply(header.type, Status::kBadRequest,
                             "no route named '" + body + "'");
      }
      return control_reply(header.type, Status::kOk, out.str());
    }
    case MsgType::kSpecOf: {
      const auto t = table();
      for (const RouteRule& rule : t->rules) {
        if (rule.name == body) {
          return control_reply(header.type, Status::kOk, rule.spec_json);
        }
      }
      return control_reply(header.type, Status::kBadRequest,
                           "no route named '" + body + "'");
    }
    case MsgType::kShutdown:
      return control_reply(header.type, Status::kOk, "shutting down");
  }
  throw ProtocolError("unhandled message type");
}

std::string Server::handle_get(const std::string& body) {
  const GetRequest request = decode_get_request(body);  // throws ProtocolError
  const std::uint64_t t0 = now_us();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.gets;
  }
  GetResponse response;
  const auto t = table();
  const std::optional<std::size_t> route =
      match_route(t->rules, request.tag, request.key);
  if (!route.has_value()) {
    response.status = Status::kNoRoute;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.no_route;
  } else {
    // The shared_ptr keeps the instance alive across a concurrent reload:
    // an admitted request always completes against the table it matched.
    response = t->instances[*route]->serve_get(request.key,
                                               request.want_payload);
    response.route = static_cast<std::uint32_t>(*route);
    if (response.status == Status::kUnknownKey) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.unknown_key;
    } else if (response.status == Status::kFailedRead) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed_reads;
    }
  }
  response.wall_us = now_us() - t0;
  return encode_frame(MsgType::kGet, /*is_reply=*/true,
                      encode_get_response(response));
}

std::string Server::reload(const std::string& path) {
  const std::string effective = path.empty() ? options_.config_path : path;
  if (effective.empty()) {
    throw std::invalid_argument(
        "reload: no config path (daemon was started without one)");
  }
  const DaemonConfig next_config = load_daemon_config(effective);
  const auto previous = table();
  std::size_t kept = 0;
  // Built outside the lock: instance construction (deployment + warm-up)
  // is slow, and in-flight requests keep serving the old table meanwhile.
  auto next = build_table(next_config, previous.get(), &kept);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    table_ = next;
    config_.routes = next_config.routes;
    ++stats_.reloads;
  }
  std::ostringstream summary;
  summary << next->rules.size() << " routes: " << kept << " kept, "
          << (next->rules.size() - kept) << " new";
  return summary.str();
}

std::string Server::metrics_json(bool results_only) {
  const auto t = table();
  std::vector<client::ExperimentResult> results;
  results.reserve(t->rules.size());
  for (std::size_t i = 0; i < t->rules.size(); ++i) {
    client::ExperimentResult result;
    result.label = t->rules[i].spec.label();
    result.runs.push_back(t->instances[i]->snapshot());
    results.push_back(std::move(result));
  }
  const std::string results_array = client::results_json(results);
  if (results_only) return results_array;

  ServerStats stats;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
  }
  std::ostringstream out;
  out << "{\n  \"daemon\": {\n"
      << "    \"accepted\": " << stats.accepted << ",\n"
      << "    \"active_connections\": " << stats.active_connections << ",\n"
      << "    \"requests\": " << stats.requests << ",\n"
      << "    \"gets\": " << stats.gets << ",\n"
      << "    \"no_route\": " << stats.no_route << ",\n"
      << "    \"unknown_key\": " << stats.unknown_key << ",\n"
      << "    \"failed_reads\": " << stats.failed_reads << ",\n"
      << "    \"protocol_errors\": " << stats.protocol_errors << ",\n"
      << "    \"reloads\": " << stats.reloads << ",\n"
      << "    \"routes\": " << t->rules.size() << "\n  },\n"
      << "  \"results\": " << results_array << "\n}\n";
  return out.str();
}

void Server::request_stop() {
  running_.store(false);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'Q';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  {
    const std::lock_guard<std::mutex> lock(stopped_mutex_);
    stopped_cv_.notify_all();
  }
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stopped_mutex_);
    stopped_cv_.wait(lock, [this] { return !running_.load(); });
  }
  stop();
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(stopped_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  request_stop();
  if (options_.install_sighup) {
    g_sighup_pipe_fd.store(-1, std::memory_order_relaxed);
    ::signal(SIGHUP, SIG_DFL);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tick_thread_.joinable()) tick_thread_.join();
  {
    // Unblock connection threads parked in read().
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& thread : conn_threads_) {
    if (thread.joinable()) thread.join();
  }
  conn_threads_.clear();
  for (int* fd : {&listen_fd_, &tcp_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  if (!uds_path_.empty()) ::unlink(uds_path_.c_str());
}

}  // namespace agar::daemon
