#include "gf/gf256.hpp"

#include <cstring>
#include <stdexcept>

#include "gf/gf256_kernels.hpp"

namespace agar::gf {

namespace detail {

Tables::Tables() {
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    exp_[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(x);
    log_[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPolynomial;
  }
  exp_[510] = exp_[0];
  exp_[511] = exp_[1];
  log_[0] = 0;  // never consulted for 0; guarded by callers.

  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      if (a == 0 || b == 0) {
        mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 0;
      } else {
        mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            exp_[static_cast<std::size_t>(log_[static_cast<std::size_t>(a)]) +
                 static_cast<std::size_t>(log_[static_cast<std::size_t>(b)])];
      }
    }
  }

  // Split-nibble tables derive from the full table: every byte b is
  // (b & 15) ^ (b & 0xF0), and multiplication is linear over GF(2).
  for (std::size_t c = 0; c < 256; ++c) {
    for (std::size_t x4 = 0; x4 < 16; ++x4) {
      lo_[c][x4] = mul_[c][x4];
      hi_[c][x4] = mul_[c][x4 << 4];
    }
  }
}

const Tables& tables() {
  static const Tables t;
  return t;
}

namespace {

// ----------------------------------------------------------- scalar set

void mul_slice_scalar(std::uint8_t c, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n) {
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void mul_add_slice_scalar(std::uint8_t c, const std::uint8_t* src,
                          std::uint8_t* dst, std::size_t n) {
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void xor_slice_scalar(const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void mul_add_multi_scalar(const std::uint8_t* coeffs,
                          const std::uint8_t* const* srcs, std::size_t nsrc,
                          std::uint8_t* dst, std::size_t n) {
  for (std::size_t j = 0; j < nsrc; ++j) {
    mul_add_slice_scalar(coeffs[j], srcs[j], dst, n);
  }
}

// ------------------------------------------------- portable 64-bit set
//
// Still table lookups per byte, but eight products are composed into one
// 64-bit word so loads/stores (and the dst read-modify-write) happen
// word-at-a-time. This is the fallback when no SIMD unit is available.

inline std::uint64_t mul_word(const std::array<std::uint8_t, 256>& row,
                              std::uint64_t s) {
  return static_cast<std::uint64_t>(row[s & 0xFF]) |
         static_cast<std::uint64_t>(row[(s >> 8) & 0xFF]) << 8 |
         static_cast<std::uint64_t>(row[(s >> 16) & 0xFF]) << 16 |
         static_cast<std::uint64_t>(row[(s >> 24) & 0xFF]) << 24 |
         static_cast<std::uint64_t>(row[(s >> 32) & 0xFF]) << 32 |
         static_cast<std::uint64_t>(row[(s >> 40) & 0xFF]) << 40 |
         static_cast<std::uint64_t>(row[(s >> 48) & 0xFF]) << 48 |
         static_cast<std::uint64_t>(row[(s >> 56) & 0xFF]) << 56;
}

void mul_slice_portable(std::uint8_t c, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t n) {
  const auto& row = tables().mul_[c];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t s;
    std::memcpy(&s, src + i, 8);
    const std::uint64_t v = mul_word(row, s);
    std::memcpy(dst + i, &v, 8);
  }
  for (; i < n; ++i) dst[i] = row[src[i]];
}

void mul_add_slice_portable(std::uint8_t c, const std::uint8_t* src,
                            std::uint8_t* dst, std::size_t n) {
  const auto& row = tables().mul_[c];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t s, d;
    std::memcpy(&s, src + i, 8);
    std::memcpy(&d, dst + i, 8);
    d ^= mul_word(row, s);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void xor_slice_portable(const std::uint8_t* src, std::uint8_t* dst,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t s[4], d[4];
    std::memcpy(s, src + i, 32);
    std::memcpy(d, dst + i, 32);
    d[0] ^= s[0];
    d[1] ^= s[1];
    d[2] ^= s[2];
    d[3] ^= s[3];
    std::memcpy(dst + i, d, 32);
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t s, d;
    std::memcpy(&s, src + i, 8);
    std::memcpy(&d, dst + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_add_multi_portable(const std::uint8_t* coeffs,
                            const std::uint8_t* const* srcs, std::size_t nsrc,
                            std::uint8_t* dst, std::size_t n) {
  const auto& mul = tables().mul_;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d;
    std::memcpy(&d, dst + i, 8);
    for (std::size_t j = 0; j < nsrc; ++j) {
      std::uint64_t s;
      std::memcpy(&s, srcs[j] + i, 8);
      d ^= mul_word(mul[coeffs[j]], s);
    }
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) b ^= mul[coeffs[j]][srcs[j][i]];
    dst[i] = b;
  }
}

}  // namespace

const KernelTable kScalarKernels{mul_slice_scalar, mul_add_slice_scalar,
                                 xor_slice_scalar, mul_add_multi_scalar};
const KernelTable kPortable64Kernels{mul_slice_portable,
                                     mul_add_slice_portable,
                                     xor_slice_portable,
                                     mul_add_multi_portable};

}  // namespace detail

// ----------------------------------------------------------- field scalars

namespace {

/// Reduce an exponent modulo 255 without division: 256 == 1 (mod 255), so
/// folding the high byte onto the low byte preserves the residue. Converges
/// to < 510 in a handful of iterations, which the 512-entry antilog table
/// indexes directly.
inline std::uint64_t fold255(std::uint64_t n) {
  while (n >= 510) n = (n >> 8) + (n & 0xFF);
  return n;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return detail::tables().mul_[a][b];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const int diff = static_cast<int>(t.log_[a]) - static_cast<int>(t.log_[b]);
  return t.exp_[static_cast<std::size_t>(diff < 0 ? diff + 255 : diff)];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256: inverse of zero");
  const auto& t = detail::tables();
  return t.exp_[static_cast<std::size_t>(255 - t.log_[a])];
}

std::uint8_t pow(std::uint8_t a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const std::uint64_t e =
      static_cast<std::uint64_t>(t.log_[a]) * fold255(n);
  return t.exp_[fold255(e)];
}

std::uint8_t exp(unsigned n) { return detail::tables().exp_[fold255(n)]; }

std::uint8_t log(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256: log of zero");
  return detail::tables().log_[a];
}

// -------------------------------------------------------------- dispatch

namespace {

const detail::KernelTable* backend_table(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &detail::kScalarKernels;
    case Backend::kPortable64:
      return &detail::kPortable64Kernels;
    case Backend::kSsse3:
      return detail::ssse3_kernels();
    case Backend::kAvx2:
      return detail::avx2_kernels();
  }
  return nullptr;
}

Backend best_backend() {
  if (detail::avx2_kernels() != nullptr) return Backend::kAvx2;
  if (detail::ssse3_kernels() != nullptr) return Backend::kSsse3;
  return Backend::kPortable64;
}

struct Dispatch {
  Backend backend;
  const detail::KernelTable* table;
};

Dispatch& dispatch() {
  // agar-lint: global-ok(runtime kernel dispatch; every backend computes
  // identical bytes, and set_backend re-pinning is test/bench-only)
  static Dispatch d{best_backend(), backend_table(best_backend())};
  return d;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kPortable64:
      return "portable64";
    case Backend::kSsse3:
      return "ssse3";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool backend_supported(Backend b) { return backend_table(b) != nullptr; }

std::vector<Backend> supported_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kPortable64,
                          Backend::kSsse3, Backend::kAvx2}) {
    if (backend_supported(b)) out.push_back(b);
  }
  return out;
}

Backend active_backend() { return dispatch().backend; }

bool set_backend(Backend b) {
  const detail::KernelTable* table = backend_table(b);
  if (table == nullptr) return false;
  dispatch() = Dispatch{b, table};
  return true;
}

void reset_backend() { (void)set_backend(best_backend()); }

// ---------------------------------------------------------- bulk wrappers

void mul_slice(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: mul_slice size mismatch");
  }
  if (dst.empty()) return;
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (src.data() != dst.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  dispatch().table->mul_slice(c, src.data(), dst.data(), dst.size());
}

void mul_add_slice(std::uint8_t c, std::span<const std::uint8_t> src,
                   std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: mul_add_slice size mismatch");
  }
  if (dst.empty() || c == 0) return;
  if (c == 1) {
    dispatch().table->xor_slice(src.data(), dst.data(), dst.size());
    return;
  }
  dispatch().table->mul_add_slice(c, src.data(), dst.data(), dst.size());
}

void xor_slice(std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: xor_slice size mismatch");
  }
  if (dst.empty()) return;
  dispatch().table->xor_slice(src.data(), dst.data(), dst.size());
}

void mul_add_multi(std::span<const std::uint8_t> coeffs,
                   std::span<const std::span<const std::uint8_t>> srcs,
                   std::span<std::uint8_t> dst) {
  if (coeffs.size() != srcs.size()) {
    throw std::invalid_argument("gf256: mul_add_multi count mismatch");
  }
  for (const auto& s : srcs) {
    if (s.size() != dst.size()) {
      throw std::invalid_argument("gf256: mul_add_multi size mismatch");
    }
  }
  if (dst.empty()) return;

  // Strip zero coefficients so kernels never see them.
  constexpr std::size_t kMaxInline = 32;
  std::uint8_t coeff_buf[kMaxInline];
  const std::uint8_t* src_buf[kMaxInline];
  std::vector<std::uint8_t> coeff_heap;
  std::vector<const std::uint8_t*> src_heap;
  std::uint8_t* cs = coeff_buf;
  const std::uint8_t** ss = src_buf;
  if (coeffs.size() > kMaxInline) {
    coeff_heap.resize(coeffs.size());
    src_heap.resize(coeffs.size());
    cs = coeff_heap.data();
    ss = src_heap.data();
  }
  std::size_t nsrc = 0;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] == 0) continue;
    cs[nsrc] = coeffs[j];
    ss[nsrc] = srcs[j].data();
    ++nsrc;
  }
  if (nsrc == 0) return;
  if (nsrc == 1 && cs[0] == 1) {
    dispatch().table->xor_slice(ss[0], dst.data(), dst.size());
    return;
  }
  dispatch().table->mul_add_multi(cs, ss, nsrc, dst.data(), dst.size());
}

}  // namespace agar::gf
