#include "gf/gf256.hpp"

#include <array>
#include <stdexcept>

namespace agar::gf {
namespace {

struct Tables {
  // exp_ has 512 entries so mul can index log[a]+log[b] without a mod.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  // 256x256 full multiplication table: 64 KiB, fits in L2 and makes the
  // bulk slice loops branch-free.
  std::array<std::array<std::uint8_t, 256>, 256> mul_{};

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      exp_[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(x);
      log_[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPolynomial;
    }
    exp_[510] = exp_[0];
    exp_[511] = exp_[1];
    log_[0] = 0;  // never consulted for 0; guarded by callers.

    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 0;
        } else {
          mul_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              exp_[static_cast<std::size_t>(log_[static_cast<std::size_t>(a)]) +
                   static_cast<std::size_t>(log_[static_cast<std::size_t>(b)])];
        }
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul_[a][b];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  const int diff = static_cast<int>(t.log_[a]) - static_cast<int>(t.log_[b]);
  return t.exp_[static_cast<std::size_t>(diff < 0 ? diff + 255 : diff)];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256: inverse of zero");
  const auto& t = tables();
  return t.exp_[static_cast<std::size_t>(255 - t.log_[a])];
}

std::uint8_t pow(std::uint8_t a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned e = (static_cast<unsigned>(t.log_[a]) * n) % 255u;
  return t.exp_[e];
}

std::uint8_t exp(unsigned n) { return tables().exp_[n % 255u]; }

std::uint8_t log(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256: log of zero");
  return tables().log_[a];
}

void mul_slice(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: mul_slice size mismatch");
  }
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    return;
  }
  if (c == 1) {
    std::copy(src.begin(), src.end(), dst.begin());
    return;
  }
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = row[src[i]];
}

void mul_add_slice(std::uint8_t c, std::span<const std::uint8_t> src,
                   std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: mul_add_slice size mismatch");
  }
  if (c == 0) return;
  if (c == 1) {
    add_slice(src, dst);
    return;
  }
  const auto& row = tables().mul_[c];
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= row[src[i]];
}

void add_slice(std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("gf256: add_slice size mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
}

}  // namespace agar::gf
