// Arithmetic over GF(2^8), the Galois field with 256 elements.
//
// The field is constructed as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1),
// i.e. the reducing polynomial 0x11D used by standard Reed-Solomon codes
// (the same field as ISA-L, Jerasure and Longhair's default tables).
//
// Addition is XOR. Multiplication/division/inversion use log/antilog tables
// generated once at static-initialization time from the generator element 2.
//
// Bulk operations (mul_slice, mul_add_slice, xor_slice, mul_add_multi) are
// the hot path of the erasure codec: dst[i] (^)= c * src[i] over whole chunk
// buffers. They are served by runtime-dispatched kernels — split-nibble
// pshufb SIMD on x86 (AVX2 or SSSE3, picked once at startup) with a
// portable 64-bit-word fallback — all behind this scalar-identical API.
// `set_backend` pins a specific kernel set (benchmarks, differential tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace agar::gf {

/// The reducing polynomial, sans the x^8 term: x^8 = x^4 + x^3 + x^2 + 1.
inline constexpr std::uint16_t kPolynomial = 0x11D;

/// Number of field elements.
inline constexpr int kFieldSize = 256;

/// Addition and subtraction coincide in characteristic 2.
[[nodiscard]] constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}
[[nodiscard]] constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// Multiply two field elements.
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Divide a by b. Precondition: b != 0 (checked; throws std::domain_error).
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0 (checked).
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

/// a raised to the integer power n (n may be 0; 0^0 == 1 by convention).
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned n);

/// The generator element (2) raised to the n-th power; n is reduced mod 255.
[[nodiscard]] std::uint8_t exp(unsigned n);

/// Discrete log base 2 of a nonzero element.
[[nodiscard]] std::uint8_t log(std::uint8_t a);

// --------------------------------------------------------- bulk kernels

/// dst[i] = c * src[i] for every i. dst and src must have equal sizes and
/// must not partially overlap (identical or disjoint is fine).
void mul_slice(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst);

/// dst[i] ^= c * src[i] for every i — the fused multiply-accumulate the
/// encoder/decoder inner loops are built from.
void mul_add_slice(std::uint8_t c, std::span<const std::uint8_t> src,
                   std::span<std::uint8_t> dst);

/// dst[i] ^= src[i] — the c == 1 kernel.
void xor_slice(std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst);

/// Legacy name for xor_slice.
inline void add_slice(std::span<const std::uint8_t> src,
                      std::span<std::uint8_t> dst) {
  xor_slice(src, dst);
}

/// Fused multi-source apply (ISA-L gf_vect_mad style):
///   dst[i] ^= coeffs[0]*srcs[0][i] ^ coeffs[1]*srcs[1][i] ^ ...
/// One pass over dst for all sources, so dst traffic is paid once per block
/// instead of once per source. All srcs must have dst's size; coeffs and
/// srcs must have equal counts. Zero coefficients are skipped.
void mul_add_multi(std::span<const std::uint8_t> coeffs,
                   std::span<const std::span<const std::uint8_t>> srcs,
                   std::span<std::uint8_t> dst);

// ------------------------------------------------------ kernel dispatch

/// Kernel families, slowest to fastest. kAuto resolves to the best
/// supported one at first use.
enum class Backend : std::uint8_t {
  kScalar,      ///< byte-at-a-time 64 KiB-table lookups (reference)
  kPortable64,  ///< table lookups batched into 64-bit word loads/stores
  kSsse3,       ///< 16-byte split-nibble pshufb
  kAvx2,        ///< 32-byte split-nibble vpshufb
};

[[nodiscard]] const char* backend_name(Backend b);

/// Is this kernel family compiled in AND supported by the running CPU?
[[nodiscard]] bool backend_supported(Backend b);

/// Every supported backend, slowest first (always contains kScalar).
[[nodiscard]] std::vector<Backend> supported_backends();

/// The backend currently serving the bulk kernels.
[[nodiscard]] Backend active_backend();

/// Pin the bulk kernels to one backend. Returns false (and changes
/// nothing) if it is not supported. Used by benchmarks and differential
/// tests; production code leaves the startup choice alone.
bool set_backend(Backend b);

/// Restore the automatic (best supported) choice.
void reset_backend();

}  // namespace agar::gf
