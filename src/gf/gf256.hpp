// Arithmetic over GF(2^8), the Galois field with 256 elements.
//
// The field is constructed as GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1),
// i.e. the reducing polynomial 0x11D used by standard Reed-Solomon codes
// (the same field as ISA-L, Jerasure and Longhair's default tables).
//
// Addition is XOR. Multiplication/division/inversion use log/antilog tables
// generated once at static-initialization time from the generator element 2.
// Bulk operations (mul_slice, mul_add_slice) are the hot path of the erasure
// codec: dst[i] (^)= c * src[i] over whole chunk buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace agar::gf {

/// The reducing polynomial, sans the x^8 term: x^8 = x^4 + x^3 + x^2 + 1.
inline constexpr std::uint16_t kPolynomial = 0x11D;

/// Number of field elements.
inline constexpr int kFieldSize = 256;

/// Addition and subtraction coincide in characteristic 2.
[[nodiscard]] constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}
[[nodiscard]] constexpr std::uint8_t sub(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// Multiply two field elements.
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Divide a by b. Precondition: b != 0 (checked; throws std::domain_error).
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0 (checked).
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

/// a raised to the integer power n (n may be 0; 0^0 == 1 by convention).
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned n);

/// The generator element (2) raised to the n-th power; n is reduced mod 255.
[[nodiscard]] std::uint8_t exp(unsigned n);

/// Discrete log base 2 of a nonzero element.
[[nodiscard]] std::uint8_t log(std::uint8_t a);

/// dst[i] = c * src[i] for every i. dst and src must have equal sizes and
/// must not partially overlap (identical or disjoint is fine).
void mul_slice(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst);

/// dst[i] ^= c * src[i] for every i — the fused multiply-accumulate the
/// encoder/decoder inner loops are built from.
void mul_add_slice(std::uint8_t c, std::span<const std::uint8_t> src,
                   std::span<std::uint8_t> dst);

/// dst[i] ^= src[i] (c == 1 fast path).
void add_slice(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst);

}  // namespace agar::gf
