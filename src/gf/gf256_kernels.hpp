// Internal kernel plumbing shared by gf256.cpp (scalar + portable kernels,
// dispatch) and gf256_simd.cpp (SSSE3/AVX2 kernels). Not part of the public
// gf:: API — include gf/gf256.hpp instead.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace agar::gf::detail {

/// Raw kernel signatures. Sizes are pre-validated and the c == 0 / c == 1
/// fast paths are taken by the public wrappers, so kernels only see
/// c >= 2 (mul kernels) and may assume src.size() == dst.size() == n.
struct KernelTable {
  void (*mul_slice)(std::uint8_t c, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n);
  void (*mul_add_slice)(std::uint8_t c, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t n);
  void (*xor_slice)(const std::uint8_t* src, std::uint8_t* dst,
                    std::size_t n);
  /// Fused multi-source apply: dst[i] ^= XOR_j coeffs[j] * srcs[j][i].
  /// nsrc >= 1 and every coeffs[j] >= 1 (the wrapper strips zeros).
  void (*mul_add_multi)(const std::uint8_t* coeffs,
                        const std::uint8_t* const* srcs, std::size_t nsrc,
                        std::uint8_t* dst, std::size_t n);
};

/// Precomputed multiplication tables.
struct Tables {
  /// exp_ has 512 entries so mul can index log[a]+log[b] without a mod.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  /// 256x256 full multiplication table: 64 KiB, fits in L2 and makes the
  /// scalar/portable slice loops branch-free.
  std::array<std::array<std::uint8_t, 256>, 256> mul_{};
  /// Split-nibble tables for pshufb kernels (ISA-L gf_vect_mul_init
  /// layout): lo_[c][x] = c * x, hi_[c][x] = c * (x << 4) for x in
  /// [0, 16). A byte product is lo_[c][b & 15] ^ hi_[c][b >> 4].
  alignas(64) std::array<std::array<std::uint8_t, 16>, 256> lo_{};
  alignas(64) std::array<std::array<std::uint8_t, 16>, 256> hi_{};

  Tables();
};

const Tables& tables();

// Kernel sets defined in gf256.cpp.
extern const KernelTable kScalarKernels;
extern const KernelTable kPortable64Kernels;

// Kernel sets defined in gf256_simd.cpp. Null when the SIMD translation
// unit is compiled out (AGAR_DISABLE_SIMD or a non-x86 target); when
// non-null the CPU has been verified to support them at startup.
const KernelTable* ssse3_kernels();
const KernelTable* avx2_kernels();

}  // namespace agar::gf::detail
