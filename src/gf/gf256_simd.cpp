// SSSE3 / AVX2 split-nibble GF(256) kernels (Longhair / ISA-L technique).
//
// A byte b is (b & 0x0F) ^ (high nibble), and GF multiplication by a fixed
// c is GF(2)-linear, so c*b == lo_table[b & 15] ^ hi_table[b >> 4]. The two
// 16-entry tables fit exactly one pshufb register each: 16 (SSSE3) or 2x16
// (AVX2) products per shuffle pair, versus one per lookup in the scalar
// path.
//
// Functions carry `target` attributes so this file builds with the default
// compiler flags; the dispatcher in gf256.cpp only installs a kernel set
// after __builtin_cpu_supports verifies the CPU at startup. Unaligned
// loads/stores throughout — callers pass arbitrary chunk buffers.
#include "gf/gf256_kernels.hpp"

#if defined(__x86_64__) && !defined(AGAR_DISABLE_SIMD) && \
    (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace agar::gf::detail {
namespace {

// ------------------------------------------------------------------ SSSE3

__attribute__((target("ssse3"))) inline __m128i mul_block_128(
    __m128i lo, __m128i hi, __m128i mask, __m128i s) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void mul_slice_ssse3(std::uint8_t c,
                                                      const std::uint8_t* src,
                                                      std::uint8_t* dst,
                                                      std::size_t n) {
  const Tables& t = tables();
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo_[c].data()));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi_[c].data()));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     mul_block_128(lo, hi, mask, s));
  }
  const auto& row = t.mul_[c];
  for (; i < n; ++i) dst[i] = row[src[i]];
}

__attribute__((target("ssse3"))) void mul_add_slice_ssse3(
    std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
    std::size_t n) {
  const Tables& t = tables();
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo_[c].data()));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi_[c].data()));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, mul_block_128(lo, hi, mask, s)));
  }
  const auto& row = t.mul_[c];
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("ssse3"))) void xor_slice_ssse3(const std::uint8_t* src,
                                                      std::uint8_t* dst,
                                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("ssse3"))) void mul_add_multi_ssse3(
    const std::uint8_t* coeffs, const std::uint8_t* const* srcs,
    std::size_t nsrc, std::uint8_t* dst, std::size_t n) {
  const Tables& t = tables();
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  // One dst load/store per 16-byte block regardless of source count.
  for (; i + 16 <= n; i += 16) {
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t c = coeffs[j];
      const __m128i lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo_[c].data()));
      const __m128i hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi_[c].data()));
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[j] + i));
      d = _mm_xor_si128(d, mul_block_128(lo, hi, mask, s));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) {
      b ^= t.mul_[coeffs[j]][srcs[j][i]];
    }
    dst[i] = b;
  }
}

// ------------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) inline __m256i mul_block_256(__m256i lo,
                                                             __m256i hi,
                                                             __m256i mask,
                                                             __m256i s) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
  const __m256i h =
      _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) inline __m256i load_nibble_table(
    const std::uint8_t* table16) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(table16)));
}

__attribute__((target("avx2"))) void mul_slice_avx2(std::uint8_t c,
                                                    const std::uint8_t* src,
                                                    std::uint8_t* dst,
                                                    std::size_t n) {
  const Tables& t = tables();
  const __m256i lo = load_nibble_table(t.lo_[c].data());
  const __m256i hi = load_nibble_table(t.hi_[c].data());
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        mul_block_256(lo, hi, mask, s));
  }
  const auto& row = t.mul_[c];
  for (; i < n; ++i) dst[i] = row[src[i]];
}

__attribute__((target("avx2"))) void mul_add_slice_avx2(
    std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
    std::size_t n) {
  const Tables& t = tables();
  const __m256i lo = load_nibble_table(t.lo_[c].data());
  const __m256i hi = load_nibble_table(t.hi_[c].data());
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // 2x unroll: keeps both shuffle ports busy on the 64-byte steady state.
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, mul_block_256(lo, hi, mask, s0)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, mul_block_256(lo, hi, mask, s1)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, mul_block_256(lo, hi, mask, s)));
  }
  const auto& row = t.mul_[c];
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

__attribute__((target("avx2"))) void xor_slice_avx2(const std::uint8_t* src,
                                                    std::uint8_t* dst,
                                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void mul_add_multi_avx2(
    const std::uint8_t* coeffs, const std::uint8_t* const* srcs,
    std::size_t nsrc, std::uint8_t* dst, std::size_t n) {
  const Tables& t = tables();
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  // One dst load/store per 32-byte block regardless of source count; the
  // per-source nibble-table loads stay hot in L1 across blocks.
  for (; i + 32 <= n; i += 32) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    for (std::size_t j = 0; j < nsrc; ++j) {
      const std::uint8_t c = coeffs[j];
      const __m256i lo = load_nibble_table(t.lo_[c].data());
      const __m256i hi = load_nibble_table(t.hi_[c].data());
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j] + i));
      d = _mm256_xor_si256(d, mul_block_256(lo, hi, mask, s));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  for (; i < n; ++i) {
    std::uint8_t b = dst[i];
    for (std::size_t j = 0; j < nsrc; ++j) {
      b ^= t.mul_[coeffs[j]][srcs[j][i]];
    }
    dst[i] = b;
  }
}

}  // namespace

const KernelTable* ssse3_kernels() {
  static const KernelTable table{mul_slice_ssse3, mul_add_slice_ssse3,
                                 xor_slice_ssse3, mul_add_multi_ssse3};
  static const bool supported = __builtin_cpu_supports("ssse3");
  return supported ? &table : nullptr;
}

const KernelTable* avx2_kernels() {
  static const KernelTable table{mul_slice_avx2, mul_add_slice_avx2,
                                 xor_slice_avx2, mul_add_multi_avx2};
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &table : nullptr;
}

}  // namespace agar::gf::detail

#else  // SIMD compiled out: portable dispatch only.

namespace agar::gf::detail {

const KernelTable* ssse3_kernels() { return nullptr; }
const KernelTable* avx2_kernels() { return nullptr; }

}  // namespace agar::gf::detail

#endif
