// Popularity estimation — the open interface behind Agar's request monitor
// (paper §III-b). An estimator counts accesses within the current period,
// folds them into a smoothed per-key popularity when the period rolls, and
// serves the (key, popularity) snapshot the option generator plans from.
//
// Estimators are registry entries (api::EstimatorRegistry), selected per
// experiment with the `monitor=` spec key:
//   * exact-ewma — one exact counter + EWMA per key (the paper's monitor,
//     default); memory follows the working set.
//   * count-min  — a count-min sketch for the per-period counts plus a
//     bounded candidate-key set: sublinear memory on large keyspaces at
//     the price of (bounded) over-estimates (the §VII scalability avenue).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace agar::core {

class PopularityEstimator {
 public:
  virtual ~PopularityEstimator() = default;

  /// Count one access to `key` in the current period.
  virtual void record(const ObjectKey& key) = 0;

  /// Close the current period: popularity <- alpha*count + (1-alpha)*pop.
  virtual void roll_period() = 0;

  /// Smoothed popularity blended with the current period's in-flight
  /// counts, so a cold start still ranks keys (paper: the first iteration
  /// uses popularity = alpha * freq + (1 - alpha) * 0).
  [[nodiscard]] virtual double popularity(const ObjectKey& key) const = 0;

  /// All (key, popularity) pairs, **sorted by key**. The sort order is a
  /// contract: it is what makes planner input — and therefore the installed
  /// configuration — byte-identical across platforms and builds.
  [[nodiscard]] virtual std::vector<std::pair<ObjectKey, double>> snapshot()
      const = 0;

  [[nodiscard]] virtual std::size_t tracked_keys() const = 0;

  /// Registry name ("exact-ewma", ...) for logs and reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace agar::core
