#include "core/cache_manager.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/logging.hpp"

namespace agar::core {

bool CacheConfiguration::contains_chunk(const ObjectKey& key,
                                        ChunkIndex index) const {
  const auto it = entries.find(key);
  if (it == entries.end()) return false;
  const auto& chunks = it->second.chunks;
  return std::find(chunks.begin(), chunks.end(), index) != chunks.end();
}

std::map<std::size_t, std::size_t> CacheConfiguration::weight_histogram()
    const {
  std::map<std::size_t, std::size_t> hist;
  for (const auto& [key, opt] : entries) ++hist[opt.weight];
  return hist;
}

CacheManager::CacheManager(const store::BackendCluster* backend,
                           RegionManager* region_manager,
                           RequestMonitor* request_monitor,
                           cache::StaticConfigCache* cache,
                           CacheManagerParams params)
    : backend_(backend),
      region_manager_(region_manager),
      request_monitor_(request_monitor),
      cache_(cache),
      params_(std::move(params)) {
  if (backend_ == nullptr || region_manager_ == nullptr ||
      request_monitor_ == nullptr || cache_ == nullptr) {
    throw std::invalid_argument("CacheManager: null dependency");
  }
  planner_ = api::PlannerRegistry::instance().create(
      params_.planner, api::PlannerContext{}, params_.planner_params);
}

std::size_t CacheManager::weight_quantum_bytes() const {
  // Quantum: the smallest chunk size among tracked objects, so every
  // option's byte footprint maps to an integer number of units. With the
  // paper's uniform 1 MB objects this is exactly one chunk.
  std::size_t quantum = std::numeric_limits<std::size_t>::max();
  for (const auto& [key, pop] : request_monitor_->snapshot()) {
    if (!backend_->has_object(key)) continue;
    quantum = std::min(quantum, backend_->object_info(key).chunk_size);
  }
  if (quantum == std::numeric_limits<std::size_t>::max()) quantum = 1;
  return std::max<std::size_t>(quantum, 1);
}

std::vector<std::vector<CachingOption>> CacheManager::generate_options()
    const {
  OptionGeneratorParams gen_params;
  gen_params.k = backend_->codec().k();
  gen_params.m = backend_->codec().m();
  gen_params.cache_latency_ms = params_.cache_latency_ms;
  gen_params.candidate_weights = params_.candidate_weights;
  const OptionGenerator generator(gen_params);

  const std::size_t quantum = weight_quantum_bytes();

  // The snapshot is sorted by key (the estimator contract), so the option
  // groups — and thus the planner's input — are deterministic. At global
  // scope the collab tier merges the peers' broadcast snapshots in (still
  // key-sorted) and folds peer cache placements into each key's chunk
  // costs, turning the per-region knapsack into one global optimization.
  auto snapshot = request_monitor_->snapshot();
  if (collab_hooks_.merge_popularity) {
    snapshot = collab_hooks_.merge_popularity(std::move(snapshot));
  }

  std::vector<std::vector<CachingOption>> groups;
  groups.reserve(snapshot.size());
  for (const auto& [key, popularity] : snapshot) {
    if (popularity <= 0.0) continue;
    if (!backend_->has_object(key)) continue;
    auto costs = region_manager_->chunk_costs(key);
    if (collab_hooks_.adjust_chunk_costs) {
      costs = collab_hooks_.adjust_chunk_costs(std::move(costs), key);
    }
    auto options = generator.generate(key, costs, popularity);
    const std::size_t chunk_bytes = backend_->object_info(key).chunk_size;
    for (auto& opt : options) {
      const double bytes =
          static_cast<double>(opt.weight) * static_cast<double>(chunk_bytes);
      opt.weight_units = static_cast<std::size_t>(
          std::ceil(bytes / static_cast<double>(quantum)));
    }
    groups.push_back(std::move(options));
  }
  return groups;
}

const CacheConfiguration& CacheManager::reconfigure() {
  ++reconfigs_;
  // Close the popularity period first so the snapshot reflects the EWMA
  // including the period that just ended (paper: the algorithm runs on the
  // statistics gathered over the last interval).
  request_monitor_->roll_period();

  const std::size_t quantum = weight_quantum_bytes();
  const std::size_t capacity_units = cache_->capacity_bytes() / quantum;

  const auto groups = generate_options();
  const auto plan_start = std::chrono::steady_clock::now();
  KnapsackResult result = planner_->plan(groups, capacity_units);
  const double plan_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - plan_start)
          .count();

  CacheConfiguration next;
  std::set<std::string> configured_keys;
  for (auto& opt : result.chosen) {
    const std::size_t chunk_bytes =
        backend_->object_info(opt.key).chunk_size;
    next.total_chunks += opt.weight;
    next.total_bytes += opt.weight * chunk_bytes;
    for (const ChunkIndex idx : opt.chunks) {
      configured_keys.insert(ChunkId{opt.key, idx}.cache_key());
    }
    next.entries.emplace(opt.key, std::move(opt));
  }
  next.total_value = result.total_value;

  // Configuration churn relative to the previous installation: chunks the
  // new plan adds (a-priori downloads ahead) and chunks it drops.
  std::uint64_t installed = 0;
  for (const auto& key : configured_keys) {
    if (installed_chunk_keys_.count(key) == 0) ++installed;
  }
  std::uint64_t evicted = 0;
  for (const auto& key : installed_chunk_keys_) {
    if (configured_keys.count(key) == 0) ++evicted;
  }
  stats_.reconfigurations = reconfigs_;
  stats_.planning_ms += plan_ms;
  stats_.chunks_installed += installed;
  stats_.chunks_evicted += evicted;

  config_ = std::move(next);
  // The cache's admission set stays a hash set (contains() on the read
  // path); the ordered master copy lives here for the churn sweep.
  cache_->install_configuration(
      {configured_keys.begin(), configured_keys.end()});
  installed_chunk_keys_ = std::move(configured_keys);

  log_info("cache-manager") << "reconfiguration #" << reconfigs_ << " ("
                            << planner_->name() << ", " << plan_ms
                            << " ms): " << config_.entries.size()
                            << " objects, " << config_.total_chunks
                            << " chunks (+" << installed << "/-" << evicted
                            << "), value " << config_.total_value;
  return config_;
}

}  // namespace agar::core
