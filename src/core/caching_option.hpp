// Caching options — the unit of Agar's optimization (paper §IV-A).
//
// A caching option is a hypothetical configuration for ONE object: cache
// this specific set of chunks, pay `weight` chunks of cache space, gain
// `value` = popularity x latency improvement. The knapsack solver then picks
// at most one option per object.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace agar::core {

struct CachingOption {
  ObjectKey key;

  /// The exact chunk indices to cache (most distant first, paper §IV-A).
  std::vector<ChunkIndex> chunks;

  /// Cache space in chunks of this object (== chunks.size()).
  std::size_t weight = 0;

  /// Cache space in *quantized units* used by the knapsack DP; equals
  /// weight for uniform objects, scaled for mixed-size working sets.
  std::size_t weight_units = 0;

  /// popularity x estimated latency improvement (paper's value function).
  double value = 0.0;

  /// Expected read latency (ms) if this option is installed; kept for
  /// reports and the Fig. 10 cache-contents analysis.
  double expected_latency_ms = 0.0;

  bool operator==(const CachingOption&) const = default;
};

}  // namespace agar::core
