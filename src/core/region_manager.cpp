#include "core/region_manager.hpp"

#include <stdexcept>

namespace agar::core {

RegionManager::RegionManager(const store::BackendCluster* backend,
                             sim::Network* network,
                             RegionManagerParams params)
    : backend_(backend),
      network_(network),
      params_(params),
      estimator_(network ? network->topology().num_regions() : 0,
                 params.estimator_alpha) {
  if (backend_ == nullptr || network_ == nullptr) {
    throw std::invalid_argument("RegionManager: null backend/network");
  }
  if (params_.local_region >= network_->topology().num_regions()) {
    throw std::invalid_argument("RegionManager: local region out of range");
  }
}

void RegionManager::probe() {
  ++probe_rounds_;
  const std::size_t regions = network_->topology().num_regions();
  for (RegionId r = 0; r < regions; ++r) {
    for (std::size_t i = 0; i < params_.probes_per_region; ++i) {
      const auto latency = network_->backend_fetch(
          params_.local_region, r, params_.probe_chunk_bytes);
      if (latency.has_value()) estimator_.record(r, *latency);
    }
  }
}

double RegionManager::estimate_ms(RegionId region) const {
  return estimator_.estimate_ms(region);
}

RegionId RegionManager::region_of(const ObjectKey& key,
                                  ChunkIndex index) const {
  return backend_->placement().region_of(key, index, backend_->num_regions());
}

std::vector<ChunkCost> RegionManager::chunk_costs(const ObjectKey& key) const {
  const store::ObjectInfo info = backend_->object_info(key);
  std::vector<ChunkCost> out;
  out.reserve(info.locations.size());
  for (const auto& loc : info.locations) {
    out.push_back(
        ChunkCost{loc.index, loc.region, estimate_ms(loc.region)});
  }
  return out;
}

}  // namespace agar::core
