#include "core/region_manager.hpp"

#include <functional>
#include <memory>
#include <stdexcept>

namespace agar::core {

RegionManager::RegionManager(const store::BackendCluster* backend,
                             sim::Network* network,
                             RegionManagerParams params)
    : backend_(backend),
      network_(network),
      params_(params),
      estimator_(network ? network->topology().num_regions() : 0,
                 params.estimator_alpha) {
  if (backend_ == nullptr || network_ == nullptr) {
    throw std::invalid_argument("RegionManager: null backend/network");
  }
  if (params_.local_region >= network_->topology().num_regions()) {
    throw std::invalid_argument("RegionManager: local region out of range");
  }
}

void RegionManager::probe() {
  ++probe_rounds_;
  const std::size_t regions = network_->topology().num_regions();
  for (RegionId r = 0; r < regions; ++r) {
    for (std::size_t i = 0; i < params_.probes_per_region; ++i) {
      const auto latency = network_->backend_fetch(
          params_.local_region, r, params_.probe_chunk_bytes);
      if (latency.has_value()) estimator_.record(r, *latency);
    }
  }
}

void RegionManager::start_probe(std::function<void()> done) {
  sim::EventLoop* const loop = network_->loop();
  if (loop == nullptr) {
    throw std::logic_error("RegionManager: start_probe requires a bound loop");
  }
  ++probe_rounds_;
  // Issuing is synchronous, completions are events — `remaining` is fully
  // counted before the first completion can fire.
  auto remaining = std::make_shared<std::size_t>(0);
  auto on_done = std::make_shared<std::function<void()>>(std::move(done));
  const std::size_t regions = network_->topology().num_regions();
  for (RegionId r = 0; r < regions; ++r) {
    for (std::size_t i = 0; i < params_.probes_per_region; ++i) {
      const SimTimeMs issued_at = loop->now();
      const bool accepted = network_->begin_fetch(
          params_.local_region, r, params_.probe_chunk_bytes,
          [this, r, loop, issued_at, remaining,
           on_done](std::optional<SimTimeMs> latency) {
            if (latency.has_value()) {
              // Observed latency includes time queued behind other
              // fetches — congestion feeds back into the estimates.
              estimator_.record(r, loop->now() - issued_at);
            } else if (!network_->is_down(r)) {
              // A failed probe against an *up* region is a gray loss
              // (dropped response): the wait until discovery is the cost
              // a retrying client pays, so fold it in — drop-sick regions
              // estimate slow and the planner routes around them. Aborts
              // from an outage are skipped (the region is down when the
              // abort fires), matching the sync path's stale-estimate
              // behavior.
              estimator_.record(r, loop->now() - issued_at);
            }
            if (--*remaining == 0 && *on_done) (*on_done)();
          });
      if (accepted) ++*remaining;
    }
  }
  if (*remaining == 0 && *on_done) {
    loop->schedule_in(0.0, [on_done] { (*on_done)(); });
  }
}

sim::EventLoop::TimerId RegionManager::schedule_probe_pipeline(
    sim::EventLoop& loop, SimTimeMs period, std::function<void()> apply) {
  if (probe_rounds_ == 0) {
    loop.schedule_in(0.0, [this] { start_probe({}); });
  }
  return loop.schedule_periodic(
      period, [this, apply = std::move(apply)]() {
        start_probe(apply);
        return true;
      });
}

double RegionManager::estimate_ms(RegionId region) const {
  return estimator_.estimate_ms(region);
}

RegionId RegionManager::region_of(const ObjectKey& key,
                                  ChunkIndex index) const {
  return backend_->placement().region_of(key, index, backend_->num_regions());
}

std::vector<ChunkCost> RegionManager::chunk_costs(const ObjectKey& key) const {
  const store::ObjectInfo info = backend_->object_info(key);
  std::vector<ChunkCost> out;
  out.reserve(info.locations.size());
  for (const auto& loc : info.locations) {
    out.push_back(
        ChunkCost{loc.index, loc.region, estimate_ms(loc.region)});
  }
  return out;
}

}  // namespace agar::core
