// The cache-configuration solver (paper §IV-B, Figs. 4 and 5).
//
// Choosing at most one caching option per object to maximize total value
// within the cache capacity is the Multiple-Choice Knapsack Problem (MCKP).
// The paper solves it with a dynamic program over intermediate cache
// configurations (POPULATE) improved by RELAX steps; we implement the same
// program as an exact DP over capacities with per-key option groups, which
// is the textbook-equivalent formulation (see DESIGN.md for the mapping and
// the note on the paper's marginal-value example).
//
// A greedy value-density solver is included as a baseline: §II-D argues
// greedy can err badly on 0/1-style knapsacks, and `bench_ablation_greedy`
// quantifies that on both adversarial and realistic instances.
#pragma once

#include <vector>

#include "core/caching_option.hpp"

namespace agar::core {

/// A solved cache configuration.
struct KnapsackResult {
  /// Chosen options, at most one per key, in input key order.
  std::vector<CachingOption> chosen;
  double total_value = 0.0;
  std::size_t total_weight_units = 0;
};

/// Exact MCKP dynamic program (the paper's POPULATE/RELAX algorithm).
///
/// `options_per_key[i]` holds the candidate options for one key; options
/// with value <= 0 or weight_units == 0 or weight_units > capacity_units
/// are ignored. Runtime O(total_options x capacity_units), i.e. the O(C^2)
/// the paper reports once the option count is proportional to capacity.
[[nodiscard]] KnapsackResult solve_dp(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units);

/// Greedy baseline: consider options by decreasing value density
/// (value / weight_units); take an option if its key is still unused and it
/// fits. Not optimal — kept for the §II-D ablation.
[[nodiscard]] KnapsackResult solve_greedy(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units);

/// Exhaustive search over all per-key choices; exponential, test-only
/// oracle for small instances.
[[nodiscard]] KnapsackResult solve_brute_force(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units);

}  // namespace agar::core
