// Planner — the open interface of the reconfiguration pipeline's solver
// step (paper §IV-B). A planner receives the per-key caching-option groups
// the option generator assembled (sorted by key — the determinism contract
// of RequestMonitor::snapshot) plus the cache capacity in quantized units,
// and returns the configuration to install.
//
// Planners are registry entries (api::PlannerRegistry), selected per
// experiment with the `planner=` spec key:
//   * knapsack-dp  — the paper's exact MCKP dynamic program (default);
//   * greedy       — value-density baseline (§II-D ablation);
//   * brute-force  — exponential oracle, test-sized instances only;
//   * incremental  — warm-starts from the previous configuration and
//                    re-plans only keys whose inputs moved beyond a
//                    threshold (cheap steady-state reconfigurations).
//
// One planner instance serves one CacheManager for the lifetime of the
// node, so implementations may keep warm-start state across calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/knapsack.hpp"

namespace agar::core {

class Planner {
 public:
  virtual ~Planner() = default;

  /// Solve one reconfiguration: choose at most one option per key, never a
  /// non-positive-value option, within `capacity_units`. `options_per_key`
  /// groups are sorted by key and each group belongs to a single key.
  [[nodiscard]] virtual KnapsackResult plan(
      const std::vector<std::vector<CachingOption>>& options_per_key,
      std::size_t capacity_units) = 0;

  /// Registry name ("knapsack-dp", ...) for logs and reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Cumulative control-plane telemetry of one node: how often it re-planned,
/// how long the planner ran, and how much the installed configuration
/// churned. The runner folds every node's stats into RunResult.
struct ControlPlaneStats {
  std::uint64_t reconfigurations = 0;
  double planning_ms = 0.0;  ///< wall-clock spent inside Planner::plan
  /// Config churn: configured chunks added / dropped relative to the
  /// previous configuration (a stable plan installs and evicts nothing).
  std::uint64_t chunks_installed = 0;
  std::uint64_t chunks_evicted = 0;
};

}  // namespace agar::core
