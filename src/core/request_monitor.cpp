#include "core/request_monitor.hpp"

#include "api/registry.hpp"

namespace agar::core {

RequestMonitor::RequestMonitor(RequestMonitorParams params)
    : params_(std::move(params)) {
  api::EstimatorContext ctx;
  ctx.ewma_alpha = params_.ewma_alpha;
  estimator_ = api::EstimatorRegistry::instance().create(
      params_.estimator, ctx, params_.estimator_params);
}

double RequestMonitor::record_access(const ObjectKey& key) {
  ++accesses_;
  estimator_->record(key);
  return params_.processing_ms;
}

void RequestMonitor::roll_period() { estimator_->roll_period(); }

double RequestMonitor::popularity(const ObjectKey& key) const {
  return estimator_->popularity(key);
}

std::vector<std::pair<ObjectKey, double>> RequestMonitor::snapshot() const {
  return estimator_->snapshot();
}

}  // namespace agar::core
