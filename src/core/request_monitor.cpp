#include "core/request_monitor.hpp"

namespace agar::core {

RequestMonitor::RequestMonitor(RequestMonitorParams params)
    : params_(params), tracker_(params.ewma_alpha) {}

double RequestMonitor::record_access(const ObjectKey& key) {
  ++accesses_;
  tracker_.record(key);
  return params_.processing_ms;
}

void RequestMonitor::roll_period() { tracker_.roll_period(); }

double RequestMonitor::popularity(const ObjectKey& key) const {
  // Between periods, popularity blends the running EWMA with the current
  // period's in-flight count so a cold start (first period) still ranks
  // keys: this matches the paper's example where the first iteration uses
  // popularity = alpha * freq + (1 - alpha) * 0.
  const double base = tracker_.popularity(key);
  const double current =
      static_cast<double>(tracker_.current_count(key));
  return base + params_.ewma_alpha * current;
}

std::vector<std::pair<ObjectKey, double>> RequestMonitor::snapshot() const {
  auto snap = tracker_.snapshot();
  for (auto& [key, pop] : snap) {
    pop += params_.ewma_alpha *
           static_cast<double>(tracker_.current_count(key));
  }
  return snap;
}

}  // namespace agar::core
