// In-flight fetch table with duplicate coalescing (paper §IV-A's population
// pool meets the read path).
//
// Every chunk download of one Agar node — read-path fetches, post-read
// population writes and reconfiguration prefetches — funnels through this
// coordinator. If a chunk is already being downloaded, later requesters
// join the in-flight entry instead of issuing a second wire fetch; when the
// single wire transfer completes, every joined callback fires. This is the
// classic request-coalescing ("singleflight") pattern: under a skewed
// workload many concurrent reads want the same hot chunk, and without
// coalescing the simulated backends would serve the same bytes repeatedly.
//
// One coordinator serves one client region (wire latency depends on the
// requesting region, so coalescing across regions would be wrong).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/network.hpp"

namespace agar::core {

/// How one fetch request was admitted.
enum class FetchStart {
  kStarted,  ///< fresh wire fetch issued to the network
  kJoined,   ///< coalesced onto an already in-flight fetch of the chunk
  kDown,     ///< region down and nothing in flight; callback never fires
};

class FetchCoordinator {
 public:
  using Callback = sim::Network::FetchCallback;
  /// Pluggable wire layer with Network::begin_fetch's contract: return
  /// false to refuse synchronously, otherwise fire the callback exactly
  /// once on the loop. The client installs its fault-tolerant fetch policy
  /// here, *under* the coalescing table — so retries and hedges of one
  /// chunk still count as a single in-flight entry that others join. The
  /// chunk identity is passed through so the cooperative cache tier can
  /// redirect a fetch to a peer cache that holds the chunk.
  using Transport = std::function<bool(const ChunkId&, RegionId, RegionId,
                                       std::size_t, Callback)>;

  explicit FetchCoordinator(sim::Network* network);

  /// Route wire fetches through `transport` instead of the raw network.
  /// An empty transport restores the direct path.
  void set_transport(Transport transport) {
    transport_ = std::move(transport);
  }

  /// Fetch chunk `chunk` of size `bytes` from backend region `to` on behalf
  /// of a client in `from`. If the chunk is already in flight the request
  /// joins it (one wire fetch, every callback fires at completion).
  FetchStart fetch(const ChunkId& chunk, RegionId from, RegionId to,
                   std::size_t bytes, Callback cb);

  /// Is a fetch of this chunk currently on the wire (or queued)?
  [[nodiscard]] bool in_flight(const ChunkId& chunk) const {
    return inflight_.contains(chunk.cache_key());
  }

  // ------------------------------------------------------- observability
  /// Wire fetches actually issued to the network.
  [[nodiscard]] std::uint64_t started() const { return started_; }
  /// Requests that joined an existing in-flight fetch (deduplicated work).
  [[nodiscard]] std::uint64_t coalesced() const { return coalesced_; }
  [[nodiscard]] std::size_t table_size() const { return inflight_.size(); }
  [[nodiscard]] std::size_t max_table_size() const { return max_table_size_; }

 private:
  sim::Network* network_;  // non-owning
  Transport transport_;    // empty = raw network
  std::unordered_map<std::string, std::vector<Callback>> inflight_;
  std::uint64_t started_ = 0;
  std::uint64_t coalesced_ = 0;
  std::size_t max_table_size_ = 0;
};

}  // namespace agar::core
