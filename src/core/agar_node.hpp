// AgarNode — one region-level Agar deployment (paper Fig. 3): the cache
// plus the region manager, request monitor and cache manager, wired
// together. Clients in the region talk only to this facade:
//
//   * plan_read(key) — the "hint" protocol: records the access with the
//     request monitor and resolves every chunk of the object to a source
//     (local cache / backend region / asynchronous population fetch);
//   * the node reconfigures itself periodically when attached to the
//     simulation's event loop (30 s in the paper's experiments).
#pragma once

#include <memory>
#include <vector>

#include "cache/static_cache.hpp"
#include "core/cache_manager.hpp"
#include "core/read_planner.hpp"
#include "core/region_manager.hpp"
#include "core/request_monitor.hpp"
#include "sim/event_loop.hpp"

namespace agar::core {

struct AgarNodeParams {
  RegionId region = 0;
  std::size_t cache_capacity_bytes = 10_MB;
  SimTimeMs reconfig_period_ms = 30'000.0;  ///< paper: 30 seconds
  RequestMonitorParams monitor;
  CacheManagerParams cache_manager;
  std::size_t probes_per_region = 6;
};

class AgarNode {
 public:
  AgarNode(const store::BackendCluster* backend, sim::Network* network,
           AgarNodeParams params);

  /// Warm-up phase: probe per-region latencies (paper §IV: "the region
  /// manager computes this by retrieving several data blocks from each
  /// region in a warm-up phase").
  void warm_up();

  /// Run one reconfiguration now.
  void reconfigure();

  /// Schedule periodic reconfiguration (and a latency probe before each)
  /// on the simulation loop. If the network is bound to `loop`, probes run
  /// as background fetch events and each reconfiguration waits for its
  /// probe round to land; otherwise the probe falls back to the
  /// synchronous path. `after_reconfigure` (optional) runs after each
  /// reconfiguration — the Agar strategy hangs its population downloads
  /// there. Returns the timer handle (also kept internally).
  sim::EventLoop::TimerId attach_to_loop(
      sim::EventLoop& loop, std::function<void()> after_reconfigure = {});

  [[nodiscard]] sim::EventLoop::TimerId reconfig_timer() const {
    return reconfig_timer_;
  }

  /// Resolve one read. Records the access in the request monitor.
  [[nodiscard]] ReadPlan plan_read(const ObjectKey& key);

  [[nodiscard]] cache::StaticConfigCache& cache() { return cache_; }
  [[nodiscard]] const cache::StaticConfigCache& cache() const {
    return cache_;
  }
  [[nodiscard]] RegionManager& region_manager() { return region_manager_; }
  [[nodiscard]] RequestMonitor& request_monitor() { return request_monitor_; }
  [[nodiscard]] CacheManager& cache_manager() { return cache_manager_; }
  [[nodiscard]] RegionId region() const { return params_.region; }
  [[nodiscard]] const AgarNodeParams& params() const { return params_; }

 private:
  const store::BackendCluster* backend_;  // non-owning
  sim::Network* network_;                 // non-owning
  sim::EventLoop::TimerId reconfig_timer_ = 0;
  AgarNodeParams params_;
  cache::StaticConfigCache cache_;
  RegionManager region_manager_;
  RequestMonitor request_monitor_;
  CacheManager cache_manager_;
};

}  // namespace agar::core
