// Request monitor (paper §III-b): listens to client requests, maintains
// per-object popularity with an EWMA over fixed periods, and serves cache
// hints. Every client read goes through `record_access`, mirroring the
// prototype where the monitor is on the path of each operation (the paper
// measured ~0.5 ms of processing per request; the simulation charges that
// as `processing_ms`).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "stats/freq_tracker.hpp"

namespace agar::core {

struct RequestMonitorParams {
  double ewma_alpha = 0.8;   ///< paper's weighting coefficient
  double processing_ms = 0.5;///< per-request monitor overhead (paper §VI)
};

class RequestMonitor {
 public:
  explicit RequestMonitor(RequestMonitorParams params = {});

  /// Record one client access. Returns the monitor's processing overhead in
  /// ms so the caller can charge it to the request's latency.
  double record_access(const ObjectKey& key);

  /// Close the current period (called by the cache manager at
  /// reconfiguration time): folds counts into EWMA popularities.
  void roll_period();

  [[nodiscard]] double popularity(const ObjectKey& key) const;

  /// (key, popularity) snapshot for the cache manager.
  [[nodiscard]] std::vector<std::pair<ObjectKey, double>> snapshot() const;

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::size_t tracked_keys() const {
    return tracker_.tracked_keys();
  }
  [[nodiscard]] const RequestMonitorParams& params() const { return params_; }

 private:
  RequestMonitorParams params_;
  stats::FreqTracker tracker_;
  std::uint64_t accesses_ = 0;
};

}  // namespace agar::core
