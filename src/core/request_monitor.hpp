// Request monitor (paper §III-b): listens to client requests, maintains
// per-object popularity, and serves cache hints. Every client read goes
// through `record_access`, mirroring the prototype where the monitor is on
// the path of each operation (the paper measured ~0.5 ms of processing per
// request; the simulation charges that as `processing_ms`).
//
// Popularity tracking itself is a pluggable core::PopularityEstimator
// resolved from api::EstimatorRegistry — `exact-ewma` (the paper's EWMA
// map, default) or `count-min` (sketch-backed, sublinear memory). Selected
// per experiment with the `monitor=` spec key.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/param_map.hpp"
#include "common/types.hpp"
#include "core/popularity_estimator.hpp"

namespace agar::core {

struct RequestMonitorParams {
  double ewma_alpha = 0.8;   ///< paper's weighting coefficient
  double processing_ms = 0.5;///< per-request monitor overhead (paper §VI)
  /// Popularity-estimator registry entry backing this monitor.
  std::string estimator = "exact-ewma";
  /// Estimator-specific parameters (width, depth, ... — validated against
  /// the registered schema by the spec layer).
  api::ParamMap estimator_params;
};

class RequestMonitor {
 public:
  explicit RequestMonitor(RequestMonitorParams params = {});

  /// Record one client access. Returns the monitor's processing overhead in
  /// ms so the caller can charge it to the request's latency.
  double record_access(const ObjectKey& key);

  /// Close the current period (called by the cache manager at
  /// reconfiguration time): folds counts into smoothed popularities.
  void roll_period();

  [[nodiscard]] double popularity(const ObjectKey& key) const;

  /// (key, popularity) snapshot for the cache manager, sorted by key —
  /// planner input never depends on hash-map iteration order.
  [[nodiscard]] std::vector<std::pair<ObjectKey, double>> snapshot() const;

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::size_t tracked_keys() const {
    return estimator_->tracked_keys();
  }
  [[nodiscard]] const RequestMonitorParams& params() const { return params_; }
  [[nodiscard]] const PopularityEstimator& estimator() const {
    return *estimator_;
  }

 private:
  RequestMonitorParams params_;
  std::unique_ptr<PopularityEstimator> estimator_;
  std::uint64_t accesses_ = 0;
};

}  // namespace agar::core
