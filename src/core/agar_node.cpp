#include "core/agar_node.hpp"

namespace agar::core {

namespace {

RegionManagerParams make_region_manager_params(const AgarNodeParams& p) {
  RegionManagerParams out;
  out.local_region = p.region;
  out.probes_per_region = p.probes_per_region;
  return out;
}

}  // namespace

AgarNode::AgarNode(const store::BackendCluster* backend, sim::Network* network,
                   AgarNodeParams params)
    : backend_(backend),
      network_(network),
      params_(params),
      cache_(params.cache_capacity_bytes),
      region_manager_(backend, network, make_region_manager_params(params)),
      request_monitor_(params.monitor),
      cache_manager_(backend, &region_manager_, &request_monitor_, &cache_,
                     params.cache_manager) {}

void AgarNode::warm_up() { region_manager_.probe(); }

void AgarNode::reconfigure() {
  region_manager_.probe();
  cache_manager_.reconfigure();
}

sim::EventLoop::TimerId AgarNode::attach_to_loop(
    sim::EventLoop& loop, std::function<void()> after_reconfigure) {
  // With the network on this loop, probing is asynchronous: the timer
  // fires a probe round and the reconfiguration runs once the probes have
  // landed. Standalone uses (no bound network loop) keep the synchronous
  // probe so the node works without event plumbing.
  auto apply = [this, after = std::move(after_reconfigure)]() {
    cache_manager_.reconfigure();
    if (after) after();
  };
  if (network_->loop() == &loop) {
    reconfig_timer_ = region_manager_.schedule_probe_pipeline(
        loop, params_.reconfig_period_ms, std::move(apply));
  } else {
    reconfig_timer_ = loop.schedule_periodic(
        params_.reconfig_period_ms, [this, apply = std::move(apply)]() {
          region_manager_.probe();
          apply();
          return true;
        });
  }
  return reconfig_timer_;
}

ReadPlan AgarNode::plan_read(const ObjectKey& key) {
  const double overhead = request_monitor_.record_access(key);
  const auto& config = cache_manager_.current();
  ReadPlan plan = plan_chunk_sources(
      *backend_, region_manager_, cache_,
      [&config](const ObjectKey& k, ChunkIndex idx) {
        return config.contains_chunk(k, idx);
      },
      key);
  plan.monitor_overhead_ms = overhead;
  return plan;
}

}  // namespace agar::core
