#include "core/agar_node.hpp"

namespace agar::core {

namespace {

RegionManagerParams make_region_manager_params(const AgarNodeParams& p) {
  RegionManagerParams out;
  out.local_region = p.region;
  out.probes_per_region = p.probes_per_region;
  return out;
}

}  // namespace

AgarNode::AgarNode(const store::BackendCluster* backend, sim::Network* network,
                   AgarNodeParams params)
    : backend_(backend),
      params_(params),
      cache_(params.cache_capacity_bytes),
      region_manager_(backend, network, make_region_manager_params(params)),
      request_monitor_(params.monitor),
      cache_manager_(backend, &region_manager_, &request_monitor_, &cache_,
                     params.cache_manager) {}

void AgarNode::warm_up() { region_manager_.probe(); }

void AgarNode::reconfigure() {
  region_manager_.probe();
  cache_manager_.reconfigure();
}

void AgarNode::attach_to_loop(sim::EventLoop& loop) {
  loop.schedule_periodic(params_.reconfig_period_ms, [this]() {
    reconfigure();
    return true;
  });
}

ReadPlan AgarNode::plan_read(const ObjectKey& key) {
  const double overhead = request_monitor_.record_access(key);
  const auto& config = cache_manager_.current();
  ReadPlan plan = plan_chunk_sources(
      *backend_, region_manager_, cache_,
      [&config](const ObjectKey& k, ChunkIndex idx) {
        return config.contains_chunk(k, idx);
      },
      key);
  plan.monitor_overhead_ms = overhead;
  return plan;
}

}  // namespace agar::core
