// Cache collaboration between nearby Agar nodes — a prototype of the
// paper's §VI discussion: "Agar nodes could broadcast their contents and
// workload statistics periodically, in order to let nearby caches update
// the values of each cache option accordingly."
//
// Each node periodically broadcasts (a) the chunk keys it has configured
// and (b) its popularity snapshot. A peer that can fetch a chunk from a
// nearby cache cheaper than from the chunk's home region can fold that into
// its chunk costs via peer_aware_costs(), and a CollaborationGroup can
// report configuration overlap — the redundancy two nearby caches waste by
// caching the same chunks (Frankfurt/Dublin in the paper's example).
#pragma once

#include <set>
#include <vector>

#include "core/agar_node.hpp"
#include "sim/topology.hpp"

namespace agar::core {

/// What one node broadcasts. The configured-chunk set is ordered: peer
/// directories feed merged planning snapshots and the overlap report, so
/// broadcast state must not carry hash-map iteration order.
struct PeerInfo {
  RegionId region = kInvalidRegion;
  std::set<std::string> configured_chunks;  // chunk cache keys, sorted
  std::vector<std::pair<ObjectKey, double>> popularity;
};

/// Snapshot a node's broadcastable state.
[[nodiscard]] PeerInfo broadcast_info(AgarNode& node);

/// Adjust chunk costs with peer caches: if a peer within `max_peer_ms` of
/// the client region has a chunk configured, the chunk's expected latency
/// becomes min(original, peer cache latency), where the peer cache latency
/// is the inter-region base latency scaled by `peer_cache_factor`
/// (< 1: a memcached hit is cheaper than an S3 GET over the same distance).
[[nodiscard]] std::vector<ChunkCost> peer_aware_costs(
    std::vector<ChunkCost> costs, const ObjectKey& key,
    const std::vector<PeerInfo>& peers, const sim::Topology& topology,
    RegionId client_region, double peer_cache_factor = 0.75,
    double max_peer_ms = 400.0);

/// Overlap report between two nodes' configurations.
struct OverlapReport {
  std::size_t chunks_a = 0;
  std::size_t chunks_b = 0;
  std::size_t shared = 0;  ///< chunk keys configured by both

  [[nodiscard]] double shared_fraction() const {
    const std::size_t total = chunks_a + chunks_b;
    return total == 0 ? 0.0
                      : 2.0 * static_cast<double>(shared) /
                            static_cast<double>(total);
  }
};

/// Pairwise overlap of two broadcast snapshots — the computation behind
/// CollaborationGroup::overlap, exposed for callers (the collab tier's
/// end-of-run report) that hold PeerInfos without live nodes.
[[nodiscard]] OverlapReport overlap_of(const PeerInfo& a, const PeerInfo& b);

class CollaborationGroup {
 public:
  void add_node(AgarNode* node);

  /// Re-broadcast everyone's state (call after reconfigurations).
  void exchange();

  [[nodiscard]] const std::vector<PeerInfo>& peers() const { return peers_; }

  /// Peers visible to `region` (everyone but the region itself).
  [[nodiscard]] std::vector<PeerInfo> peers_of(RegionId region) const;

  /// Pairwise overlap between two member regions' configurations.
  [[nodiscard]] OverlapReport overlap(RegionId a, RegionId b) const;

 private:
  std::vector<AgarNode*> nodes_;  // non-owning
  std::vector<PeerInfo> peers_;
};

}  // namespace agar::core
