// Shared read planning: resolve every chunk of one read to a source.
//
// Used by AgarNode and by the paper's periodic-LFU baseline (which shares
// Agar's machinery — request proxy, latency estimates, static configured
// cache — but fixes the chunks-per-object count instead of running the
// knapsack). Keeping the planner in one place guarantees the systems being
// compared differ ONLY in their configuration policy.
#pragma once

#include <functional>

#include "cache/static_cache.hpp"
#include "core/region_manager.hpp"
#include "store/backend.hpp"

namespace agar::core {

/// Where each chunk of a read comes from. All `from_cache` and
/// `from_backend` fetches happen in parallel on the latency path;
/// `async_populate` fetches and the `populate_after_read` write-backs are
/// off-path (the prototype's client performs them on a thread pool).
struct ReadPlan {
  std::vector<ChunkIndex> from_cache;
  std::vector<std::pair<ChunkIndex, RegionId>> from_backend;
  std::vector<std::pair<ChunkIndex, RegionId>> async_populate;
  std::vector<ChunkIndex> populate_after_read;
  double monitor_overhead_ms = 0.0;

  [[nodiscard]] std::size_t chunks_on_path() const {
    return from_cache.size() + from_backend.size();
  }
};

/// Predicate: is chunk `index` of `key` part of the current configuration?
using ConfiguredChunkFn = std::function<bool(const ObjectKey&, ChunkIndex)>;

/// Build the plan for one read:
///   * resident chunks come from the cache (up to k);
///   * the remainder fills with the cheapest backend regions per the
///     region manager's live latency estimates;
///   * configured chunks that were fetched on-path are written back after
///     the read; configured chunks neither resident nor fetched are
///     downloaded asynchronously by the population pool.
[[nodiscard]] ReadPlan plan_chunk_sources(const store::BackendCluster& backend,
                                          const RegionManager& region_manager,
                                          const cache::StaticConfigCache& cache,
                                          const ConfiguredChunkFn& configured,
                                          const ObjectKey& key);

}  // namespace agar::core
