#include "core/knapsack.hpp"

#include <algorithm>

namespace agar::core {

namespace {

/// An option is usable if it consumes capacity and contributes value.
bool usable(const CachingOption& o, std::size_t capacity_units) {
  return o.value > 0.0 && o.weight_units > 0 &&
         o.weight_units <= capacity_units;
}

KnapsackResult finish(std::vector<CachingOption> chosen) {
  KnapsackResult r;
  r.chosen = std::move(chosen);
  for (const auto& o : r.chosen) {
    r.total_value += o.value;
    r.total_weight_units += o.weight_units;
  }
  return r;
}

}  // namespace

KnapsackResult solve_dp(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units) {
  const std::size_t cap = capacity_units;
  const std::size_t n = options_per_key.size();

  // table[i][c]: best value achievable with the first i keys and at most c
  // capacity units. This is the paper's MaxV map (Fig. 4) densified over
  // capacities; row i+1 is row i "improved" by key i's option group.
  //
  // Considering every option of a group at each capacity performs both of
  // the paper's improvement moves at once:
  //   * ADDTOCONFIG: extend a configuration of weight c-w with an option of
  //     weight w;
  //   * RELAX: a configuration that used a heavier option for this key is
  //     superseded whenever a lighter option (leaving room for other keys'
  //     options) yields more total value — that alternative is simply
  //     another cell of the same row.
  std::vector<std::vector<double>> table(n + 1,
                                         std::vector<double>(cap + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& group = options_per_key[i];
    for (std::size_t c = 0; c <= cap; ++c) {
      double v = table[i][c];  // skip this key entirely
      for (const auto& opt : group) {
        if (!usable(opt, cap) || opt.weight_units > c) continue;
        v = std::max(v, table[i][c - opt.weight_units] + opt.value);
      }
      table[i + 1][c] = v;
    }
  }

  // Trace back the choices from MaxV[CacheSize] (paper Fig. 4 line 23).
  std::vector<CachingOption> chosen;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (table[i + 1][c] == table[i][c]) continue;  // key i contributed nothing
    for (const auto& opt : options_per_key[i]) {
      if (!usable(opt, cap) || opt.weight_units > c) continue;
      if (table[i][c - opt.weight_units] + opt.value == table[i + 1][c]) {
        chosen.push_back(opt);
        c -= opt.weight_units;
        break;
      }
    }
  }
  std::reverse(chosen.begin(), chosen.end());
  return finish(std::move(chosen));
}

KnapsackResult solve_greedy(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units) {
  struct Flat {
    const CachingOption* opt;
    std::size_t key_idx;
    double density;
  };
  std::vector<Flat> flat;
  for (std::size_t i = 0; i < options_per_key.size(); ++i) {
    for (const auto& o : options_per_key[i]) {
      if (!usable(o, capacity_units)) continue;
      flat.push_back(
          Flat{&o, i, o.value / static_cast<double>(o.weight_units)});
    }
  }
  // Deterministic total order: density first, then key and weight — equal
  // densities must not fall through to input order, or the chosen
  // configuration would depend on how the caller assembled the groups.
  std::stable_sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    if (a.density != b.density) return a.density > b.density;
    if (a.opt->key != b.opt->key) return a.opt->key < b.opt->key;
    return a.opt->weight_units < b.opt->weight_units;
  });

  std::vector<bool> key_used(options_per_key.size(), false);
  std::vector<CachingOption> chosen;
  std::size_t used = 0;
  for (const auto& f : flat) {
    if (key_used[f.key_idx]) continue;
    if (used + f.opt->weight_units > capacity_units) continue;
    key_used[f.key_idx] = true;
    chosen.push_back(*f.opt);
    used += f.opt->weight_units;
  }
  return finish(std::move(chosen));
}

namespace {

void brute_rec(const std::vector<std::vector<CachingOption>>& groups,
               std::size_t i, std::size_t capacity_left, double value,
               std::vector<const CachingOption*>& picked, double& best_value,
               std::vector<const CachingOption*>& best_picked) {
  if (i == groups.size()) {
    if (value > best_value) {
      best_value = value;
      best_picked = picked;
    }
    return;
  }
  // Branch: skip this key entirely.
  brute_rec(groups, i + 1, capacity_left, value, picked, best_value,
            best_picked);
  for (const auto& o : groups[i]) {
    if (o.value <= 0.0 || o.weight_units == 0 ||
        o.weight_units > capacity_left) {
      continue;
    }
    picked.push_back(&o);
    brute_rec(groups, i + 1, capacity_left - o.weight_units, value + o.value,
              picked, best_value, best_picked);
    picked.pop_back();
  }
}

}  // namespace

KnapsackResult solve_brute_force(
    const std::vector<std::vector<CachingOption>>& options_per_key,
    std::size_t capacity_units) {
  double best_value = 0.0;
  std::vector<const CachingOption*> picked, best_picked;
  brute_rec(options_per_key, 0, capacity_units, 0.0, picked, best_value,
            best_picked);
  std::vector<CachingOption> chosen;
  chosen.reserve(best_picked.size());
  for (const auto* p : best_picked) chosen.push_back(*p);
  return finish(std::move(chosen));
}

}  // namespace agar::core
