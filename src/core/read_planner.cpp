#include "core/read_planner.hpp"

#include <algorithm>

namespace agar::core {

ReadPlan plan_chunk_sources(const store::BackendCluster& backend,
                            const RegionManager& region_manager,
                            const cache::StaticConfigCache& cache,
                            const ConfiguredChunkFn& configured,
                            const ObjectKey& key) {
  ReadPlan plan;

  auto costs = region_manager.chunk_costs(key);
  // Cheapest-first order; deterministic tie-break.
  std::sort(costs.begin(), costs.end(),
            [](const ChunkCost& a, const ChunkCost& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms < b.latency_ms;
              }
              if (a.region != b.region) return a.region < b.region;
              return a.index < b.index;
            });
  const std::size_t k = backend.codec().k();

  // Resident chunks come from the cache.
  std::vector<ChunkCost> not_resident;
  not_resident.reserve(costs.size());
  for (const auto& c : costs) {
    const std::string ck = ChunkId{key, c.index}.cache_key();
    if (plan.from_cache.size() < k && cache.contains(ck)) {
      plan.from_cache.push_back(c.index);
    } else {
      not_resident.push_back(c);
    }
  }

  // Fill to k chunks with the cheapest backend fetches.
  for (const auto& c : not_resident) {
    if (plan.from_cache.size() + plan.from_backend.size() >= k) break;
    plan.from_backend.emplace_back(c.index, c.region);
    // A fetched chunk the configuration wants cached is written back after
    // the read (asynchronously, off the latency path).
    if (configured(key, c.index)) {
      plan.populate_after_read.push_back(c.index);
    }
  }

  // Configured chunks that are neither resident nor fetched on-path are
  // downloaded a-priori by the population thread pool.
  for (const auto& c : not_resident) {
    if (!configured(key, c.index)) continue;
    const bool on_path =
        std::any_of(plan.from_backend.begin(), plan.from_backend.end(),
                    [&](const auto& p) { return p.first == c.index; });
    if (!on_path) plan.async_populate.emplace_back(c.index, c.region);
  }

  return plan;
}

}  // namespace agar::core
