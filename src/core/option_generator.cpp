#include "core/option_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace agar::core {

OptionGenerator::OptionGenerator(OptionGeneratorParams params)
    : params_(std::move(params)) {
  if (params_.k == 0) {
    throw std::invalid_argument("OptionGenerator: k must be positive");
  }
  if (params_.candidate_weights.empty()) {
    for (std::size_t w = 1; w <= params_.k; ++w) {
      params_.candidate_weights.push_back(w);
    }
  }
  for (const std::size_t w : params_.candidate_weights) {
    if (w == 0 || w > params_.k) {
      throw std::invalid_argument(
          "OptionGenerator: candidate weight out of [1, k]");
    }
  }
}

std::vector<CachingOption> OptionGenerator::generate(
    const ObjectKey& key, std::vector<ChunkCost> chunk_costs,
    double popularity) const {
  if (chunk_costs.size() != params_.k + params_.m) {
    throw std::invalid_argument(
        "OptionGenerator: need exactly k + m chunk costs");
  }

  // Sort most distant first; break latency ties by (region, index) so the
  // generated options are deterministic.
  std::sort(chunk_costs.begin(), chunk_costs.end(),
            [](const ChunkCost& a, const ChunkCost& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms > b.latency_ms;
              }
              if (a.region != b.region) return a.region > b.region;
              return a.index < b.index;
            });

  // Step 2: drop the m furthest — never fetched in the failure-free case.
  std::vector<ChunkCost> needed(chunk_costs.begin() + params_.m,
                                chunk_costs.end());

  // Latency with no chunks cached: the furthest needed chunk dominates
  // (the client fetches all k in parallel).
  const double uncached_ms = needed.front().latency_ms;

  std::vector<CachingOption> out;
  out.reserve(params_.candidate_weights.size());
  for (const std::size_t w : params_.candidate_weights) {
    CachingOption opt;
    opt.key = key;
    opt.weight = w;
    opt.weight_units = w;  // refined by the cache manager for mixed sizes
    opt.chunks.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      opt.chunks.push_back(needed[i].index);
    }
    // Furthest region still contacted once the w most distant chunks are
    // cached; the local cache when everything needed is cached. A cache
    // fetch also happens for the cached chunks, so the floor is the cache
    // latency itself.
    const double residual_backend_ms =
        w < needed.size() ? needed[w].latency_ms : 0.0;
    const double after_ms =
        std::max(residual_backend_ms, params_.cache_latency_ms);
    opt.expected_latency_ms = after_ms;
    const double improvement = std::max(0.0, uncached_ms - after_ms);
    opt.value = popularity * improvement;
    out.push_back(std::move(opt));
  }
  return out;
}

}  // namespace agar::core
