// Region manager (paper §III-a): knows the storage system's topology and
// placement policy, periodically probes per-region chunk-read latency, and
// answers "what will fetching each chunk of this object cost?".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/option_generator.hpp"
#include "sim/network.hpp"
#include "stats/latency_estimator.hpp"
#include "store/backend.hpp"

namespace agar::core {

struct RegionManagerParams {
  RegionId local_region = 0;
  /// Probes per region in each probe round (the paper retrieves "several
  /// data blocks from each region in a warm-up phase"). Several samples
  /// with heavy smoothing keep the estimates stable under jitter: unstable
  /// estimates reorder the distance ranking of near-equidistant regions,
  /// which churns every option's chunk set at the next reconfiguration and
  /// needlessly evicts populated cache entries.
  std::size_t probes_per_region = 6;
  /// Representative chunk size used for probe transfers.
  std::size_t probe_chunk_bytes = 114_KB;
  /// EWMA weight for folding new probe samples into the estimate.
  double estimator_alpha = 0.2;
};

class RegionManager {
 public:
  RegionManager(const store::BackendCluster* backend, sim::Network* network,
                RegionManagerParams params);

  /// Measure chunk-read latency to every region and fold the samples into
  /// the estimator. Down regions are skipped (their estimate goes stale,
  /// which is what a real prober would observe as timeouts).
  void probe();

  /// Asynchronous probe round as background events on the network's loop:
  /// every probe is a real fetch whose observed latency (queueing included,
  /// exactly what a wall-clock prober would measure) lands in the estimator
  /// at completion. `done` fires once after the last probe of the round;
  /// pass {} for fire-and-forget warm-up.
  void start_probe(std::function<void()> done);

  /// The canonical event-driven control plane, shared by AgarNode and the
  /// periodic-LFU baseline: a warm-up probe round at t=0 if nothing has
  /// probed yet, then every `period` an asynchronous probe round followed
  /// by `apply` (reconfigure + population) once the round's fetches land.
  /// Returns the periodic timer's cancel handle.
  sim::EventLoop::TimerId schedule_probe_pipeline(sim::EventLoop& loop,
                                                  SimTimeMs period,
                                                  std::function<void()> apply);

  /// Estimated chunk-fetch latency from the local region to `region`.
  [[nodiscard]] double estimate_ms(RegionId region) const;

  /// Chunk costs for every chunk of `key` — input to the option generator.
  [[nodiscard]] std::vector<ChunkCost> chunk_costs(const ObjectKey& key) const;

  /// Region of one specific chunk under the placement policy.
  [[nodiscard]] RegionId region_of(const ObjectKey& key,
                                   ChunkIndex index) const;

  [[nodiscard]] RegionId local_region() const { return params_.local_region; }
  [[nodiscard]] const stats::LatencyEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] std::uint64_t probe_rounds() const { return probe_rounds_; }

 private:
  const store::BackendCluster* backend_;  // non-owning
  sim::Network* network_;                 // non-owning
  RegionManagerParams params_;
  stats::LatencyEstimator estimator_;
  std::uint64_t probe_rounds_ = 0;
};

}  // namespace agar::core
