// Cache manager (paper §III-c): periodically computes the ideal cache
// configuration from the request monitor's popularity statistics and the
// region manager's latency estimates, then installs it into the Agar cache.
//
// One reconfiguration = one run of the configured core::Planner (§IV-B;
// `knapsack-dp` by default, any api::PlannerRegistry entry via the
// `planner=` spec key) over the caching options of every tracked object
// (§IV-A). The manager times every planner run and tracks configuration
// churn (chunks installed/evicted) as ControlPlaneStats.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/param_map.hpp"
#include "cache/static_cache.hpp"
#include "core/knapsack.hpp"
#include "core/option_generator.hpp"
#include "core/planner.hpp"
#include "core/region_manager.hpp"
#include "core/request_monitor.hpp"

namespace agar::core {

struct CacheManagerParams {
  /// Candidate option weights; empty = every weight in [1, k].
  /// The paper's experiments enumerate {1, 3, 5, 7, 9}.
  std::vector<std::size_t> candidate_weights;
  /// Expected local-cache fetch latency used in option values.
  double cache_latency_ms = 55.0;
  /// Planner registry entry solving each reconfiguration.
  std::string planner = "knapsack-dp";
  /// Planner-specific parameters (threshold, ... — validated against the
  /// registered schema by the spec layer).
  api::ParamMap planner_params;
};

/// Cooperative-planning hooks installed by the collab tier when the
/// planner runs at global scope (planner.scope=global): the popularity
/// snapshot is merged with the peers' broadcasts (input and output sorted
/// by key — the estimator determinism contract carries through), and each
/// key's chunk costs are adjusted with peer placements
/// (core::peer_aware_costs). Both empty by default: planning stays local.
struct CollabPlannerHooks {
  std::function<std::vector<std::pair<ObjectKey, double>>(
      std::vector<std::pair<ObjectKey, double>>)>
      merge_popularity;
  std::function<std::vector<ChunkCost>(std::vector<ChunkCost>,
                                       const ObjectKey&)>
      adjust_chunk_costs;
};

/// The installed configuration, per object, for inspection (Fig. 10).
/// Key-ordered: population fetches, broadcast snapshots and the Fig. 10
/// histogram all iterate it, and each of those orders ends up in event
/// sequence numbers or output.
struct CacheConfiguration {
  /// Chosen option per key, sorted by key.
  std::map<ObjectKey, CachingOption> entries;
  double total_value = 0.0;
  std::size_t total_chunks = 0;
  std::size_t total_bytes = 0;

  [[nodiscard]] bool contains_chunk(const ObjectKey& key,
                                    ChunkIndex index) const;

  /// Histogram of "objects cached with w chunks" -> count (Fig. 10 data),
  /// sorted by weight.
  [[nodiscard]] std::map<std::size_t, std::size_t> weight_histogram() const;
};

class CacheManager {
 public:
  CacheManager(const store::BackendCluster* backend,
               RegionManager* region_manager, RequestMonitor* request_monitor,
               cache::StaticConfigCache* cache, CacheManagerParams params);

  /// Run the full reconfiguration: roll the monitor period, regenerate
  /// caching options, run the planner, install the new configuration.
  /// Returns the installed configuration (also kept internally).
  const CacheConfiguration& reconfigure();

  [[nodiscard]] const CacheConfiguration& current() const { return config_; }
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }

  /// Planner timing + configuration churn, cumulative over this manager.
  [[nodiscard]] const ControlPlaneStats& control_plane_stats() const {
    return stats_;
  }
  [[nodiscard]] const Planner& planner() const { return *planner_; }

  /// Install the cooperative-planning hooks (collab tier, global scope).
  void set_collab_hooks(CollabPlannerHooks hooks) {
    collab_hooks_ = std::move(hooks);
  }

  /// Generate options for every tracked key, grouped per key in key-sorted
  /// order — the monitor snapshot's determinism contract carries through to
  /// the planner input (exposed for tests/benches).
  [[nodiscard]] std::vector<std::vector<CachingOption>> generate_options()
      const;

  /// Capacity in quantized units and the quantum, given current tracking.
  [[nodiscard]] std::size_t weight_quantum_bytes() const;

 private:
  const store::BackendCluster* backend_;  // non-owning
  RegionManager* region_manager_;         // non-owning
  RequestMonitor* request_monitor_;       // non-owning
  cache::StaticConfigCache* cache_;       // non-owning
  CacheManagerParams params_;
  CollabPlannerHooks collab_hooks_;
  std::unique_ptr<Planner> planner_;
  CacheConfiguration config_;
  /// Chunk cache-keys of the installed configuration (churn accounting),
  /// sorted so the accounting sweep iterates deterministically.
  std::set<std::string> installed_chunk_keys_;
  ControlPlaneStats stats_;
  std::uint64_t reconfigs_ = 0;
};

}  // namespace agar::core
