// Generates the caching options for one object (paper §IV-A).
//
// Procedure (quoting the paper's steps):
//   1. take all k+m chunks with their storage regions and the estimated
//      latency of fetching each from the client's region;
//   2. discard the m chunks furthest away — in the common (failure-free)
//      case the client never fetches them, and not caching them minimizes
//      the a-priori download cost of populating the cache;
//   3. for each candidate weight w, cache the w most distant remaining
//      chunks;
//   4. value(w) = popularity x (latency of the furthest region contacted
//      with nothing cached - latency of the furthest region still
//      contacted once the w chunks are cached). For w == k the remaining
//      "region" is the local cache itself.
#pragma once

#include <vector>

#include "core/caching_option.hpp"

namespace agar::core {

/// One chunk as seen by the planner: where it lives and what fetching it
/// is expected to cost.
struct ChunkCost {
  ChunkIndex index = 0;
  RegionId region = kInvalidRegion;
  double latency_ms = 0.0;
};

struct OptionGeneratorParams {
  std::size_t k = 9;
  std::size_t m = 3;
  /// Expected latency of a region-local cache fetch (the "region" the
  /// client contacts when everything needed is cached).
  double cache_latency_ms = 55.0;
  /// Candidate weights; empty means every weight in [1, k].
  std::vector<std::size_t> candidate_weights;
};

class OptionGenerator {
 public:
  explicit OptionGenerator(OptionGeneratorParams params);

  /// Options for one object. `chunk_costs` must list all k+m chunks.
  /// `popularity` is the request monitor's EWMA for this key.
  /// Options with non-positive improvement are still produced (value 0) so
  /// the solver can reason uniformly; the solver skips zero-value options.
  [[nodiscard]] std::vector<CachingOption> generate(
      const ObjectKey& key, std::vector<ChunkCost> chunk_costs,
      double popularity) const;

  [[nodiscard]] const OptionGeneratorParams& params() const { return params_; }

 private:
  OptionGeneratorParams params_;
};

}  // namespace agar::core
