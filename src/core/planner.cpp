#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "api/registry.hpp"

namespace agar::core {

namespace {

/// Every planner understands `scope`: the collab tier reads it to decide
/// whether this region plans alone or over merged peer snapshots. The
/// planners themselves are scope-agnostic — the scope only changes the
/// inputs (popularity + chunk costs) the cache manager feeds them.
const api::ParamInfo kScopeParam{
    "scope", api::ParamType::kString, "region",
    "planning scope: region (local popularity) or global (merged peer "
    "snapshots + peer-aware chunk costs; needs collab=broadcast)"};

/// Same usability rule as the solvers: consumes capacity, contributes value.
bool usable(const CachingOption& o, std::size_t capacity_units) {
  return o.value > 0.0 && o.weight_units > 0 &&
         o.weight_units <= capacity_units;
}

/// Thin planner over one of the stateless knapsack solvers.
template <KnapsackResult (*Solver)(
    const std::vector<std::vector<CachingOption>>&, std::size_t)>
class SolverPlanner final : public Planner {
 public:
  explicit SolverPlanner(std::string name) : name_(std::move(name)) {}

  KnapsackResult plan(const std::vector<std::vector<CachingOption>>& groups,
                      std::size_t capacity_units) override {
    return Solver(groups, capacity_units);
  }

  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
};

/// Warm-start planner: keeps the previous configuration for every key whose
/// planning inputs (popularity x latency, i.e. option values) moved less
/// than `threshold` since that key was last planned, and runs the exact DP
/// only over the "dirty" keys with the leftover capacity. Steady-state
/// reconfigurations then cost O(dirty options x capacity) instead of
/// O(all options x capacity) — measurably cheaper on large key counts —
/// at the price of not re-balancing stable keys against each other.
class IncrementalPlanner final : public Planner {
 public:
  IncrementalPlanner(double threshold, std::size_t full_every)
      : threshold_(threshold), full_every_(full_every) {}

  KnapsackResult plan(const std::vector<std::vector<CachingOption>>& groups,
                      std::size_t capacity_units) override {
    ++rounds_;
    if (memo_.empty() || (full_every_ > 0 && rounds_ % full_every_ == 0)) {
      return full_plan(groups, capacity_units);
    }

    // Partition keys: a key is stable when it was planned before, its
    // signature (best usable option value) drifted less than the threshold
    // since that planning, and — if it was chosen — the same-footprint
    // option still exists. Drift is measured against the signature at the
    // last *planning* of the key, not the last call, so slow drift
    // accumulates until it crosses the threshold instead of creeping
    // through un-replanned forever.
    std::vector<std::size_t> dirty;
    std::vector<const CachingOption*> kept(groups.size(), nullptr);
    std::size_t kept_units = 0;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const auto& group = groups[i];
      if (group.empty()) continue;
      const auto it = memo_.find(group.front().key);
      const double sig = signature(group, capacity_units);
      bool stable =
          it != memo_.end() &&
          std::abs(sig - it->second.signature) <=
              threshold_ * std::max(it->second.signature, 1.0);
      const CachingOption* keep = nullptr;
      if (stable && it->second.chosen) {
        keep = option_with_units(group, it->second.weight_units,
                                 capacity_units);
        if (keep == nullptr) stable = false;
      }
      if (stable) {
        kept[i] = keep;
        if (keep != nullptr) kept_units += keep->weight_units;
      } else {
        dirty.push_back(i);
      }
    }
    // A shrunken cache can strand more kept weight than fits: start over.
    if (kept_units > capacity_units) return full_plan(groups, capacity_units);

    std::vector<std::vector<CachingOption>> dirty_groups;
    dirty_groups.reserve(dirty.size());
    for (const std::size_t i : dirty) dirty_groups.push_back(groups[i]);
    const KnapsackResult partial =
        solve_dp(dirty_groups, capacity_units - kept_units);
    std::unordered_map<ObjectKey, const CachingOption*> replanned;
    for (const auto& o : partial.chosen) replanned.emplace(o.key, &o);

    // Displacement check: the partial DP cannot shrink kept keys to make
    // room. If a dirty key could not realize its best option — left out
    // entirely OR squeezed into a lesser option by the leftover capacity —
    // and that unrealized best out-values the weakest kept choice (a flash
    // crowd hitting a full cache), only a full re-plan can trade kept
    // space for it. Checking realized value (not mere presence) also keeps
    // the memo honest: the stitch path below only runs when every dirty
    // key got its signature-value option, so a squeezed pick can never be
    // recorded as "stable" and locked in at a fraction of its worth.
    double min_kept_value = std::numeric_limits<double>::infinity();
    for (const auto* keep : kept) {
      if (keep != nullptr) min_kept_value = std::min(min_kept_value,
                                                     keep->value);
    }
    for (const std::size_t i : dirty) {
      const auto& group = groups[i];
      if (group.empty()) continue;
      const double sig = signature(group, capacity_units);
      const auto it = replanned.find(group.front().key);
      const double realized = it != replanned.end() ? it->second->value : 0.0;
      if (sig > realized + 1e-12 && sig > min_kept_value) {
        return full_plan(groups, capacity_units);
      }
    }

    // Stitch kept + re-planned choices back together in input key order and
    // refresh the memo: dirty keys record their new signature/choice,
    // stable keys carry their last-planned signature forward.
    KnapsackResult out;
    std::unordered_map<ObjectKey, KeyMemo> next_memo;
    next_memo.reserve(groups.size());
    std::vector<bool> is_dirty(groups.size(), false);
    for (const std::size_t i : dirty) is_dirty[i] = true;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const auto& group = groups[i];
      if (group.empty()) continue;
      const ObjectKey& key = group.front().key;
      const CachingOption* pick = kept[i];
      if (pick == nullptr) {
        const auto chosen_it = replanned.find(key);
        if (chosen_it != replanned.end()) pick = chosen_it->second;
      }
      if (pick != nullptr) out.chosen.push_back(*pick);

      KeyMemo memo;
      const auto prev = memo_.find(key);
      memo.signature = is_dirty[i] || prev == memo_.end()
                           ? signature(group, capacity_units)
                           : prev->second.signature;
      memo.chosen = pick != nullptr;
      memo.weight_units = pick != nullptr ? pick->weight_units : 0;
      next_memo.emplace(key, memo);
    }
    memo_ = std::move(next_memo);
    return finish(std::move(out));
  }

  [[nodiscard]] std::string name() const override { return "incremental"; }

 private:
  struct KeyMemo {
    double signature = 0.0;       ///< best usable value when last planned
    bool chosen = false;          ///< did the last planning pick an option?
    std::size_t weight_units = 0; ///< footprint of the picked option
  };

  static double signature(const std::vector<CachingOption>& group,
                          std::size_t capacity_units) {
    double best = 0.0;
    for (const auto& o : group) {
      if (usable(o, capacity_units)) best = std::max(best, o.value);
    }
    return best;
  }

  static const CachingOption* option_with_units(
      const std::vector<CachingOption>& group, std::size_t weight_units,
      std::size_t capacity_units) {
    for (const auto& o : group) {
      if (o.weight_units == weight_units && usable(o, capacity_units)) {
        return &o;
      }
    }
    return nullptr;
  }

  static KnapsackResult finish(KnapsackResult r) {
    r.total_value = 0.0;
    r.total_weight_units = 0;
    for (const auto& o : r.chosen) {
      r.total_value += o.value;
      r.total_weight_units += o.weight_units;
    }
    return r;
  }

  KnapsackResult full_plan(
      const std::vector<std::vector<CachingOption>>& groups,
      std::size_t capacity_units) {
    KnapsackResult result = solve_dp(groups, capacity_units);
    memo_.clear();
    memo_.reserve(groups.size());
    std::unordered_map<ObjectKey, const CachingOption*> chosen;
    for (const auto& o : result.chosen) chosen.emplace(o.key, &o);
    for (const auto& group : groups) {
      if (group.empty()) continue;
      const ObjectKey& key = group.front().key;
      KeyMemo memo;
      memo.signature = signature(group, capacity_units);
      const auto it = chosen.find(key);
      memo.chosen = it != chosen.end();
      memo.weight_units = memo.chosen ? it->second->weight_units : 0;
      memo_.emplace(key, memo);
    }
    return result;
  }

  double threshold_;
  std::size_t full_every_;
  std::uint64_t rounds_ = 0;
  std::unordered_map<ObjectKey, KeyMemo> memo_;
};

const api::PlannerRegistration kDp{{
    "knapsack-dp",
    "DP",
    "exact multiple-choice knapsack dynamic program (the paper's "
    "POPULATE/RELAX algorithm, §IV-B)",
    api::ParamSchema{{kScopeParam}},
    [](const api::PlannerContext&, const api::ParamMap&) {
      return std::make_unique<SolverPlanner<solve_dp>>("knapsack-dp");
    },
    {}}};

const api::PlannerRegistration kGreedy{{
    "greedy",
    "greedy",
    "value-density greedy baseline (not optimal; the paper's §II-D "
    "ablation)",
    api::ParamSchema{{kScopeParam}},
    [](const api::PlannerContext&, const api::ParamMap&) {
      return std::make_unique<SolverPlanner<solve_greedy>>("greedy");
    },
    {}}};

const api::PlannerRegistration kBruteForce{{
    "brute-force",
    "brute-force",
    "exhaustive search over all per-key choices; exponential — test-sized "
    "instances only",
    api::ParamSchema{{kScopeParam}},
    [](const api::PlannerContext&, const api::ParamMap&) {
      return std::make_unique<SolverPlanner<solve_brute_force>>("brute-force");
    },
    {}}};

const api::PlannerRegistration kIncremental{{
    "incremental",
    "incremental",
    "warm-starts from the previous configuration and re-plans only keys "
    "whose inputs moved beyond a threshold (cheap steady-state "
    "reconfigurations; first call is a full DP)",
    api::ParamSchema{{
        {"threshold", api::ParamType::kDouble, "0.1",
         "relative change in a key's best option value that marks it dirty"},
        {"full_every", api::ParamType::kSize, "0",
         "force a full re-plan every N reconfigurations (0 = never)"},
        kScopeParam,
    }},
    [](const api::PlannerContext&, const api::ParamMap& params) {
      return std::make_unique<IncrementalPlanner>(
          params.get_double("threshold", 0.1),
          params.get_size("full_every", 0));
    },
    {}}};

}  // namespace

}  // namespace agar::core
