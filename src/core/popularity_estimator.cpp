#include "core/popularity_estimator.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "api/registry.hpp"
#include "stats/count_min.hpp"
#include "stats/freq_tracker.hpp"

namespace agar::core {

namespace {

/// The paper's monitor: exact per-key counts + EWMA (stats::FreqTracker),
/// with the current period's in-flight counts blended into every reading.
class ExactEwmaEstimator final : public PopularityEstimator {
 public:
  ExactEwmaEstimator(double alpha, double drop_below)
      : alpha_(alpha), tracker_(alpha, drop_below) {}

  void record(const ObjectKey& key) override { tracker_.record(key); }

  void roll_period() override { tracker_.roll_period(); }

  [[nodiscard]] double popularity(const ObjectKey& key) const override {
    return tracker_.popularity(key) +
           alpha_ * static_cast<double>(tracker_.current_count(key));
  }

  [[nodiscard]] std::vector<std::pair<ObjectKey, double>> snapshot()
      const override {
    auto snap = tracker_.snapshot();
    for (auto& [key, pop] : snap) {
      pop += alpha_ * static_cast<double>(tracker_.current_count(key));
    }
    std::sort(snap.begin(), snap.end());
    return snap;
  }

  [[nodiscard]] std::size_t tracked_keys() const override {
    return tracker_.tracked_keys();
  }

  [[nodiscard]] std::string name() const override { return "exact-ewma"; }

 private:
  double alpha_;
  stats::FreqTracker tracker_;
};

/// Sketch-backed estimator: per-period counts live in a count-min sketch
/// (fixed memory regardless of keyspace), and only a bounded candidate set
/// of keys carries an EWMA popularity into planning. Estimates can only
/// over-count (sketch collisions), never under-count.
class CountMinEstimator final : public PopularityEstimator {
 public:
  CountMinEstimator(double alpha, std::size_t width, std::size_t depth,
                    std::size_t max_keys, double drop_below)
      : alpha_(alpha),
        max_keys_(std::max<std::size_t>(max_keys, 1)),
        drop_below_(drop_below),
        sketch_(width, depth) {}

  void record(const ObjectKey& key) override {
    sketch_.add(key);
    if (pops_.count(key) != 0) return;
    if (pops_.size() < max_keys_) {
      pops_.emplace(key, 0.0);
      return;
    }
    // Candidate set full: a new key displaces the weakest candidate only
    // once its sketch estimate out-ranks that candidate's blended
    // popularity. record() is on the path of every client read, so the
    // full O(max_keys) victim scan is amortized: it runs once per period
    // roll and once per displacement; the steady-state challenge is one
    // O(depth) re-estimate of the cached victim.
    const auto est = sketch_.estimate(key);
    if (est < 2) return;
    if (weakest_.empty()) refresh_weakest();
    if (weakest_.empty()) return;
    const double weakest_pop = blended(weakest_, pops_.at(weakest_));
    if (alpha_ * static_cast<double>(est) > weakest_pop) {
      pops_.erase(weakest_);
      pops_.emplace(key, 0.0);
      weakest_.clear();
    }
  }

  void roll_period() override {
    // agar-lint: ordered-ok(per-key EWMA decay + threshold drop; every key
    // is updated independently, so visit order cannot change the result)
    for (auto it = pops_.begin(); it != pops_.end();) {
      const auto count = sketch_.estimate(it->first);
      it->second = alpha_ * static_cast<double>(count) +
                   (1.0 - alpha_) * it->second;
      if (it->second < drop_below_) {
        it = pops_.erase(it);
      } else {
        ++it;
      }
    }
    // Fresh counters per period (the EWMA carries the history); the
    // decayed popularities re-rank the candidates, so the cached victim
    // is stale.
    sketch_.reset();
    weakest_.clear();
  }

  [[nodiscard]] double popularity(const ObjectKey& key) const override {
    const auto it = pops_.find(key);
    return blended(key, it == pops_.end() ? 0.0 : it->second);
  }

  [[nodiscard]] std::vector<std::pair<ObjectKey, double>> snapshot()
      const override {
    std::vector<std::pair<ObjectKey, double>> out;
    out.reserve(pops_.size());
    // agar-lint: ordered-ok(sorted below; snapshot() promises key-sorted
    // output — the estimator determinism contract from PR 5)
    for (const auto& [key, pop] : pops_) {
      out.emplace_back(key, blended(key, pop));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t tracked_keys() const override {
    return pops_.size();
  }

  [[nodiscard]] std::string name() const override { return "count-min"; }

 private:
  [[nodiscard]] double blended(const ObjectKey& key, double pop) const {
    return pop + alpha_ * static_cast<double>(sketch_.estimate(key));
  }

  /// Full victim scan; deterministic tie-break (lexicographically largest
  /// key) so displacement order never depends on hash-map iteration.
  void refresh_weakest() {
    weakest_.clear();
    double weakest_pop = std::numeric_limits<double>::infinity();
    // agar-lint: ordered-ok(min-scan with explicit lexicographic tie-break;
    // the chosen victim is order-independent)
    for (const auto& [key, pop] : pops_) {
      const double p = blended(key, pop);
      if (p < weakest_pop || (p == weakest_pop && key > weakest_)) {
        weakest_ = key;
        weakest_pop = p;
      }
    }
  }

  double alpha_;
  std::size_t max_keys_;
  double drop_below_;
  stats::CountMinSketch sketch_;
  std::unordered_map<ObjectKey, double> pops_;
  /// Cached displacement victim; empty = recompute on next challenge.
  ObjectKey weakest_;
};

const api::EstimatorRegistration kExactEwma{{
    "exact-ewma",
    "exact EWMA",
    "exact per-key counts folded into EWMA popularity (the paper's request "
    "monitor)",
    api::ParamSchema{{
        {"drop_below", api::ParamType::kDouble, "0.001",
         "drop keys whose popularity decays below this floor"},
    }},
    [](const api::EstimatorContext& ctx, const api::ParamMap& params) {
      return std::make_unique<ExactEwmaEstimator>(
          ctx.ewma_alpha, params.get_double("drop_below", 1e-3));
    },
    {}}};

const api::EstimatorRegistration kCountMin{{
    "count-min",
    "count-min",
    "count-min sketch counts + bounded candidate set: sublinear memory on "
    "large keyspaces, bounded over-estimates",
    api::ParamSchema{{
        {"width", api::ParamType::kSize, "1024", "sketch counters per row"},
        {"depth", api::ParamType::kSize, "4", "sketch hash rows"},
        {"max_keys", api::ParamType::kSize, "4096",
         "bound on candidate keys carried into planning"},
        {"drop_below", api::ParamType::kDouble, "0.001",
         "drop candidates whose popularity decays below this floor"},
    }},
    [](const api::EstimatorContext& ctx, const api::ParamMap& params) {
      return std::make_unique<CountMinEstimator>(
          ctx.ewma_alpha, params.get_size("width", 1024),
          params.get_size("depth", 4), params.get_size("max_keys", 4096),
          params.get_double("drop_below", 1e-3));
    },
    {}}};

}  // namespace

}  // namespace agar::core
