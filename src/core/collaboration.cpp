#include "core/collaboration.hpp"

#include <algorithm>
#include <stdexcept>

namespace agar::core {

PeerInfo broadcast_info(AgarNode& node) {
  PeerInfo info;
  info.region = node.region();
  for (const auto& [key, opt] : node.cache_manager().current().entries) {
    for (const ChunkIndex idx : opt.chunks) {
      info.configured_chunks.insert(ChunkId{opt.key, idx}.cache_key());
    }
  }
  info.popularity = node.request_monitor().snapshot();
  return info;
}

std::vector<ChunkCost> peer_aware_costs(std::vector<ChunkCost> costs,
                                        const ObjectKey& key,
                                        const std::vector<PeerInfo>& peers,
                                        const sim::Topology& topology,
                                        RegionId client_region,
                                        double peer_cache_factor,
                                        double max_peer_ms) {
  for (auto& cost : costs) {
    const std::string ck = ChunkId{key, cost.index}.cache_key();
    for (const auto& peer : peers) {
      if (peer.region == client_region) continue;
      if (!peer.configured_chunks.contains(ck)) continue;
      const double base = topology.base_latency_ms(client_region, peer.region);
      if (base > max_peer_ms) continue;
      cost.latency_ms = std::min(cost.latency_ms, base * peer_cache_factor);
    }
  }
  return costs;
}

void CollaborationGroup::add_node(AgarNode* node) {
  if (node == nullptr) {
    throw std::invalid_argument("CollaborationGroup: null node");
  }
  nodes_.push_back(node);
}

void CollaborationGroup::exchange() {
  peers_.clear();
  peers_.reserve(nodes_.size());
  for (AgarNode* node : nodes_) peers_.push_back(broadcast_info(*node));
}

std::vector<PeerInfo> CollaborationGroup::peers_of(RegionId region) const {
  std::vector<PeerInfo> out;
  for (const auto& p : peers_) {
    if (p.region != region) out.push_back(p);
  }
  return out;
}

OverlapReport overlap_of(const PeerInfo& a, const PeerInfo& b) {
  OverlapReport report;
  report.chunks_a = a.configured_chunks.size();
  report.chunks_b = b.configured_chunks.size();
  for (const auto& ck : a.configured_chunks) {
    if (b.configured_chunks.contains(ck)) ++report.shared;
  }
  return report;
}

OverlapReport CollaborationGroup::overlap(RegionId a, RegionId b) const {
  const PeerInfo* pa = nullptr;
  const PeerInfo* pb = nullptr;
  for (const auto& p : peers_) {
    if (p.region == a) pa = &p;
    if (p.region == b) pb = &p;
  }
  if (pa == nullptr || pb == nullptr) {
    throw std::invalid_argument("CollaborationGroup: region not a member");
  }
  return overlap_of(*pa, *pb);
}

}  // namespace agar::core
