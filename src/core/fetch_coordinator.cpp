#include "core/fetch_coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace agar::core {

FetchCoordinator::FetchCoordinator(sim::Network* network)
    : network_(network) {
  if (network_ == nullptr) {
    throw std::invalid_argument("FetchCoordinator: null network");
  }
}

FetchStart FetchCoordinator::fetch(const ChunkId& chunk, RegionId from,
                                   RegionId to, std::size_t bytes,
                                   Callback cb) {
  const std::string key = chunk.cache_key();
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    it->second.push_back(std::move(cb));
    ++coalesced_;
    return FetchStart::kJoined;
  }
  Callback on_done = [this, key](std::optional<SimTimeMs> latency) {
    // Move the waiter list out before invoking: a callback may start a
    // new fetch of the same chunk, which must open a fresh entry.
    auto node = inflight_.extract(key);
    for (auto& waiter : node.mapped()) waiter(latency);
  };
  const bool accepted =
      transport_
          ? transport_(chunk, from, to, bytes, std::move(on_done))
          : network_->begin_fetch(from, to, bytes, std::move(on_done));
  if (!accepted) return FetchStart::kDown;
  inflight_.emplace(key, std::vector<Callback>{std::move(cb)});
  ++started_;
  max_table_size_ = std::max(max_table_size_, inflight_.size());
  return FetchStart::kStarted;
}

}  // namespace agar::core
