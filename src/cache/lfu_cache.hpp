// Least-Frequently-Used cache (paper §V-A "LFU": a proxy tracks per-object
// request frequency and evicts the least frequently used entries).
//
// Implementation: the classic O(1) LFU of Shah/Mitra/Matani — a doubly
// linked list of frequency buckets, each holding an LRU-ordered list of
// entries with that frequency. Eviction takes the least recent entry of the
// lowest-frequency bucket, so ties fall back to LRU like the paper's WLFU
// discussion suggests.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.hpp"

namespace agar::cache {

class LfuCache final : public CacheEngine {
 public:
  explicit LfuCache(std::size_t capacity_bytes);

  [[nodiscard]] std::optional<SharedBytes> get(const std::string& key) override;
  bool put(const std::string& key, SharedBytes value) override;
  [[nodiscard]] bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::vector<std::string> keys() const override;

  /// Current access frequency of a resident key (0 if absent); for tests.
  [[nodiscard]] std::uint64_t frequency(const std::string& key) const;

  /// Key that would be evicted next; for tests.
  [[nodiscard]] std::optional<std::string> eviction_candidate() const;

 private:
  struct Entry {
    std::string key;
    SharedBytes value;
  };
  struct Bucket {
    std::uint64_t freq;
    std::list<Entry> entries;  // front = most recently touched
  };
  using BucketList = std::list<Bucket>;

  struct Locator {
    BucketList::iterator bucket;
    std::list<Entry>::iterator entry;
  };

  /// Move an entry from its bucket to the bucket with frequency+1,
  /// creating/destroying buckets as needed.
  void promote(const std::string& key, Locator& loc);
  void evict_until_fits(std::size_t incoming);
  void remove_entry(const std::string& key, const Locator& loc);

  BucketList buckets_;  // ascending frequency order
  std::unordered_map<std::string, Locator> index_;
};

}  // namespace agar::cache
