// Least-Recently-Used cache — memcached's default policy (paper §V-A "LRU").
//
// Classic intrusive design: a doubly linked list in recency order plus a
// hash map from key to list node. All operations are O(1) expected.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.hpp"

namespace agar::cache {

class LruCache final : public CacheEngine {
 public:
  explicit LruCache(std::size_t capacity_bytes);

  [[nodiscard]] std::optional<SharedBytes> get(const std::string& key) override;
  bool put(const std::string& key, SharedBytes value) override;
  [[nodiscard]] bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::vector<std::string> keys() const override;

  /// Key that would be evicted next (least recently used); for tests.
  [[nodiscard]] std::optional<std::string> eviction_candidate() const;

 private:
  struct Entry {
    std::string key;
    SharedBytes value;
  };
  using List = std::list<Entry>;

  void evict_until_fits(std::size_t incoming);

  List entries_;  // front = most recent, back = least recent
  std::unordered_map<std::string, List::iterator> index_;
};

}  // namespace agar::cache
