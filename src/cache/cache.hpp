// Cache engine interface — the memcached stand-in.
//
// A cache stores byte payloads under string keys (chunk cache keys like
// "object42#3") within a byte capacity. Engines differ only in their
// replacement/admission policy: LRU and LFU evict on insert as memcached
// and the paper's LFU proxy do; the Agar static cache admits only keys in
// the currently installed configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/shared_bytes.hpp"

namespace agar::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t admissions = 0;  ///< puts that were actually stored
  std::uint64_t rejections = 0;  ///< puts declined by the admission policy
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class CacheEngine {
 public:
  explicit CacheEngine(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}
  virtual ~CacheEngine() = default;

  CacheEngine(const CacheEngine&) = delete;
  CacheEngine& operator=(const CacheEngine&) = delete;

  /// Look up a key. Engines update recency/frequency state on hit. The
  /// returned handle shares the cached buffer (refcount bump, no copy) and
  /// stays valid even if the entry is evicted afterwards.
  [[nodiscard]] virtual std::optional<SharedBytes> get(
      const std::string& key) = 0;

  /// Insert a value (Bytes convert implicitly, adopted by move). Returns
  /// true if the value resides in the cache after the call (it may evict
  /// others), false if admission declined it.
  virtual bool put(const std::string& key, SharedBytes value) = 0;

  /// Presence check with NO policy side effects (no recency update).
  [[nodiscard]] virtual bool contains(const std::string& key) const = 0;

  /// Remove a key; returns true if it was present.
  virtual bool erase(const std::string& key) = 0;

  /// Drop everything (counts as evictions).
  virtual void clear() = 0;

  /// All resident keys, unordered. For inspection/tests.
  [[nodiscard]] virtual std::vector<std::string> keys() const = 0;

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] std::size_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 protected:
  std::size_t capacity_bytes_;
  std::size_t used_bytes_ = 0;
  CacheStats stats_;
};

}  // namespace agar::cache
