// TinyLFU-gated LRU cache — the scalability extension the paper points to
// (§III-b, §VII): a count-min sketch approximates access frequencies and a
// frequency duel decides whether a new key may displace the LRU victim.
//
// This is W-TinyLFU without the window cache: admission compares the
// candidate's sketch estimate against the eviction candidate's; the
// candidate is admitted only if it is at least as popular. A doorkeeper
// Bloom-style trick is approximated by the sketch's aging window.
#pragma once

#include "cache/cache.hpp"
#include "cache/lru_cache.hpp"
#include "stats/count_min.hpp"

namespace agar::cache {

struct TinyLfuParams {
  std::size_t sketch_width = 4096;
  std::size_t sketch_depth = 4;
  /// Halve counters after this many recorded accesses (0 = never).
  std::uint64_t aging_window = 10'000;
};

class TinyLfuCache final : public CacheEngine {
 public:
  TinyLfuCache(std::size_t capacity_bytes, TinyLfuParams params = {});

  [[nodiscard]] std::optional<SharedBytes> get(const std::string& key) override;
  bool put(const std::string& key, SharedBytes value) override;
  [[nodiscard]] bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::vector<std::string> keys() const override;

  [[nodiscard]] const stats::CountMinSketch& sketch() const { return sketch_; }

 private:
  LruCache inner_;
  stats::CountMinSketch sketch_;
};

}  // namespace agar::cache
