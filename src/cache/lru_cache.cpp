#include "cache/lru_cache.hpp"

#include <memory>

#include "api/registry.hpp"

namespace agar::cache {

namespace {

const api::EngineRegistration kLruEngine{{
    "lru",
    "LRU",
    "least-recently-used eviction (memcached's default policy)",
    api::ParamSchema{},
    [](const api::EngineContext& ctx, const api::ParamMap&) {
      return std::make_unique<LruCache>(ctx.capacity_bytes);
    },
    {}}};

}  // namespace

LruCache::LruCache(std::size_t capacity_bytes) : CacheEngine(capacity_bytes) {}

std::optional<SharedBytes> LruCache::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  // Move to front (most recently used).
  entries_.splice(entries_.begin(), entries_, it->second);
  ++stats_.hits;
  return it->second->value;  // shared handle, no copy
}

void LruCache::evict_until_fits(std::size_t incoming) {
  while (used_bytes_ + incoming > capacity_bytes_ && !entries_.empty()) {
    const Entry& victim = entries_.back();
    used_bytes_ -= victim.value.size();
    index_.erase(victim.key);
    entries_.pop_back();
    ++stats_.evictions;
  }
}

bool LruCache::put(const std::string& key, SharedBytes value) {
  ++stats_.puts;
  if (value.size() > capacity_bytes_) {
    ++stats_.rejections;
    return false;  // can never fit
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Overwrite in place and refresh recency.
    used_bytes_ -= it->second->value.size();
    used_bytes_ += value.size();
    it->second->value = std::move(value);
    entries_.splice(entries_.begin(), entries_, it->second);
    evict_until_fits(0);
    ++stats_.admissions;
    return true;
  }
  evict_until_fits(value.size());
  used_bytes_ += value.size();
  entries_.push_front(Entry{key, std::move(value)});
  index_[key] = entries_.begin();
  ++stats_.admissions;
  return true;
}

bool LruCache::contains(const std::string& key) const {
  return index_.contains(key);
}

bool LruCache::erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  used_bytes_ -= it->second->value.size();
  entries_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::clear() {
  stats_.evictions += entries_.size();
  entries_.clear();
  index_.clear();
  used_bytes_ = 0;
}

std::vector<std::string> LruCache::keys() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& e : entries_) out.push_back(e.key);
  return out;
}

std::optional<std::string> LruCache::eviction_candidate() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back().key;
}

}  // namespace agar::cache
