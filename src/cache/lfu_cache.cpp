#include "cache/lfu_cache.hpp"

#include <memory>

#include "api/registry.hpp"

namespace agar::cache {

namespace {

// Display stem "LFUev": as a fixed-chunks *system* this engine is the
// eviction-driven (instant-adaptation) LFU of the baseline-strength
// ablation — the paper's periodic "LFU" baseline is the lfu-config
// strategy, which owns the bare "LFU-" label.
const api::EngineRegistration kLfuEngine{{
    "lfu",
    "LFUev",
    "least-frequently-used eviction (O(1) frequency buckets, LRU ties)",
    api::ParamSchema{{
        {"proxy_ms", api::ParamType::kDouble, "0.5",
         "frequency-tracking proxy cost when run as a fixed-chunks system"},
    }},
    [](const api::EngineContext& ctx, const api::ParamMap&) {
      return std::make_unique<LfuCache>(ctx.capacity_bytes);
    },
    {}}};

}  // namespace

LfuCache::LfuCache(std::size_t capacity_bytes) : CacheEngine(capacity_bytes) {}

void LfuCache::promote(const std::string& key, Locator& loc) {
  const std::uint64_t next_freq = loc.bucket->freq + 1;
  auto next_bucket = std::next(loc.bucket);
  if (next_bucket == buckets_.end() || next_bucket->freq != next_freq) {
    next_bucket = buckets_.insert(next_bucket, Bucket{next_freq, {}});
  }
  // Splice the entry to the front (most recent) of the next bucket.
  next_bucket->entries.splice(next_bucket->entries.begin(),
                              loc.bucket->entries, loc.entry);
  if (loc.bucket->entries.empty()) buckets_.erase(loc.bucket);
  loc.bucket = next_bucket;
  loc.entry = next_bucket->entries.begin();
  index_[key] = loc;
}

std::optional<SharedBytes> LfuCache::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  promote(key, it->second);
  ++stats_.hits;
  return it->second.entry->value;  // shared handle, no copy
}

void LfuCache::remove_entry(const std::string& key, const Locator& loc) {
  used_bytes_ -= loc.entry->value.size();
  auto bucket = loc.bucket;
  bucket->entries.erase(loc.entry);
  if (bucket->entries.empty()) buckets_.erase(bucket);
  index_.erase(key);
}

void LfuCache::evict_until_fits(std::size_t incoming) {
  while (used_bytes_ + incoming > capacity_bytes_ && !buckets_.empty()) {
    // Lowest-frequency bucket, least recently touched entry.
    Bucket& lowest = buckets_.front();
    const std::string victim = lowest.entries.back().key;
    remove_entry(victim, index_.at(victim));
    ++stats_.evictions;
  }
}

bool LfuCache::put(const std::string& key, SharedBytes value) {
  ++stats_.puts;
  if (value.size() > capacity_bytes_) {
    ++stats_.rejections;
    return false;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    used_bytes_ -= it->second.entry->value.size();
    used_bytes_ += value.size();
    it->second.entry->value = std::move(value);
    promote(key, it->second);
    evict_until_fits(0);
    ++stats_.admissions;
    return true;
  }
  evict_until_fits(value.size());
  // New entries start in the frequency-1 bucket.
  auto bucket = buckets_.begin();
  if (bucket == buckets_.end() || bucket->freq != 1) {
    bucket = buckets_.insert(buckets_.begin(), Bucket{1, {}});
  }
  bucket->entries.push_front(Entry{key, std::move(value)});
  used_bytes_ += bucket->entries.front().value.size();
  index_[key] = Locator{bucket, bucket->entries.begin()};
  ++stats_.admissions;
  return true;
}

bool LfuCache::contains(const std::string& key) const {
  return index_.contains(key);
}

bool LfuCache::erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  remove_entry(key, it->second);
  return true;
}

void LfuCache::clear() {
  stats_.evictions += index_.size();
  buckets_.clear();
  index_.clear();
  used_bytes_ = 0;
}

std::vector<std::string> LfuCache::keys() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& bucket : buckets_) {
    for (const auto& e : bucket.entries) out.push_back(e.key);
  }
  return out;
}

std::uint64_t LfuCache::frequency(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.bucket->freq;
}

std::optional<std::string> LfuCache::eviction_candidate() const {
  if (buckets_.empty()) return std::nullopt;
  return buckets_.front().entries.back().key;
}

}  // namespace agar::cache
