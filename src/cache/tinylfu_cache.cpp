#include "cache/tinylfu_cache.hpp"

#include <memory>

#include "api/registry.hpp"

namespace agar::cache {

namespace {

const api::EngineRegistration kTinyLfuEngine{{
    "tinylfu",
    "TinyLFU",
    "count-min-sketch frequency duel gating an LRU cache (W-TinyLFU "
    "admission)",
    api::ParamSchema{{
        {"sketch_width", api::ParamType::kSize, "4096",
         "count-min sketch width"},
        {"sketch_depth", api::ParamType::kSize, "4",
         "count-min sketch depth"},
        {"aging_window", api::ParamType::kSize, "10000",
         "halve sketch counters after this many accesses (0 = never)"},
        {"proxy_ms", api::ParamType::kDouble, "0.5",
         "frequency-tracking proxy cost when run as a fixed-chunks system"},
    }},
    [](const api::EngineContext& ctx, const api::ParamMap& params) {
      TinyLfuParams p;
      p.sketch_width = params.get_size("sketch_width", p.sketch_width);
      p.sketch_depth = params.get_size("sketch_depth", p.sketch_depth);
      p.aging_window = params.get_size("aging_window", p.aging_window);
      return std::make_unique<TinyLfuCache>(ctx.capacity_bytes, p);
    },
    {}}};

}  // namespace

TinyLfuCache::TinyLfuCache(std::size_t capacity_bytes, TinyLfuParams params)
    : CacheEngine(capacity_bytes),
      inner_(capacity_bytes),
      sketch_(params.sketch_width, params.sketch_depth, params.aging_window) {}

std::optional<SharedBytes> TinyLfuCache::get(const std::string& key) {
  sketch_.add(key);
  auto result = inner_.get(key);
  if (result.has_value()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  used_bytes_ = inner_.used_bytes();
  return result;
}

bool TinyLfuCache::put(const std::string& key, SharedBytes value) {
  ++stats_.puts;
  if (value.size() > capacity_bytes_) {
    ++stats_.rejections;
    return false;
  }
  // Frequency duel: if inserting would evict, the candidate must be at
  // least as popular as the LRU victim. Resident keys always update.
  if (!inner_.contains(key) &&
      inner_.used_bytes() + value.size() > capacity_bytes_) {
    const auto victim = inner_.eviction_candidate();
    if (victim.has_value() &&
        sketch_.estimate(key) < sketch_.estimate(*victim)) {
      ++stats_.rejections;
      return false;
    }
  }
  const bool ok = inner_.put(key, std::move(value));
  used_bytes_ = inner_.used_bytes();
  if (ok) {
    ++stats_.admissions;
  } else {
    ++stats_.rejections;
  }
  return ok;
}

bool TinyLfuCache::contains(const std::string& key) const {
  return inner_.contains(key);
}

bool TinyLfuCache::erase(const std::string& key) {
  const bool ok = inner_.erase(key);
  used_bytes_ = inner_.used_bytes();
  return ok;
}

void TinyLfuCache::clear() {
  inner_.clear();
  used_bytes_ = 0;
}

std::vector<std::string> TinyLfuCache::keys() const { return inner_.keys(); }

}  // namespace agar::cache
