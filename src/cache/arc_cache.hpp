// Adaptive Replacement Cache (Megiddo & Modha, FAST'03), byte-capacity
// variant — the engine that proves the experiment API is open: it is added
// to the system purely through its api::EngineRegistration below; no
// runner, CLI or bench file knows it exists, yet `agar_cli --system arc`
// and every spec-driven bench can run it.
//
// ARC balances recency and frequency online: two resident lists (T1 =
// seen once recently, T2 = seen at least twice) plus two ghost lists (B1,
// B2) remembering recently evicted keys. A hit in a ghost list shifts the
// adaptive target `p` — the byte share of the cache T1 is allowed — toward
// the list that would have hit, so the cache continuously re-tunes itself
// between LRU-like and LFU-like behaviour without any tuning parameter.
#pragma once

#include <list>
#include <string>
#include <unordered_map>

#include "cache/cache.hpp"

namespace agar::cache {

class ArcCache final : public CacheEngine {
 public:
  explicit ArcCache(std::size_t capacity_bytes);

  [[nodiscard]] std::optional<SharedBytes> get(const std::string& key) override;
  bool put(const std::string& key, SharedBytes value) override;
  [[nodiscard]] bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::vector<std::string> keys() const override;

  /// Adaptive target: bytes of capacity currently granted to the
  /// recency-side list T1. For tests and inspection.
  [[nodiscard]] std::size_t target_t1_bytes() const { return target_p_; }
  /// Resident/ghost byte gauges, for tests.
  [[nodiscard]] std::size_t t1_bytes() const { return t1_bytes_; }
  [[nodiscard]] std::size_t t2_bytes() const { return t2_bytes_; }
  [[nodiscard]] std::size_t ghost_bytes() const {
    return b1_bytes_ + b2_bytes_;
  }

 private:
  struct Entry {
    std::string key;
    SharedBytes value;
  };
  struct Ghost {
    std::string key;
    std::size_t size = 0;  ///< bytes the entry had when evicted
  };
  enum class Where { kT1, kT2, kB1, kB2 };
  struct Locator {
    Where where;
    std::list<Entry>::iterator entry;   // kT1/kT2
    std::list<Ghost>::iterator ghost;   // kB1/kB2
  };

  /// Make room for `incoming` bytes: evict from T1 while it exceeds the
  /// adaptive target (from T2 otherwise), demoting victims to the ghost
  /// lists. `favor_t1` biases the boundary case toward evicting from T1
  /// (set on B2 ghost hits, as in the paper's REPLACE).
  void replace(std::size_t incoming, bool favor_t1);
  /// Bound the directory: B1 <= capacity - T1 (roughly), total <= 2x
  /// capacity, dropping ghost LRU entries.
  void trim_ghosts();
  void remove_ghost(std::list<Ghost>& list, std::size_t& bytes,
                    std::list<Ghost>::iterator it);
  void insert_resident(Where where, const std::string& key, SharedBytes value);

  std::list<Entry> t1_, t2_;  // front = MRU
  std::list<Ghost> b1_, b2_;  // front = most recently evicted
  std::unordered_map<std::string, Locator> index_;
  std::size_t t1_bytes_ = 0, t2_bytes_ = 0;
  std::size_t b1_bytes_ = 0, b2_bytes_ = 0;
  std::size_t target_p_ = 0;  ///< T1's byte target, in [0, capacity]
};

}  // namespace agar::cache
