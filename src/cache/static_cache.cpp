#include "cache/static_cache.hpp"

#include <algorithm>

namespace agar::cache {

StaticConfigCache::StaticConfigCache(std::size_t capacity_bytes)
    : CacheEngine(capacity_bytes) {}

std::optional<SharedBytes> StaticConfigCache::get(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;  // shared handle, no copy
}

bool StaticConfigCache::put(const std::string& key, SharedBytes value) {
  ++stats_.puts;
  if (!configured_.contains(key)) {
    ++stats_.rejections;
    return false;
  }
  if (value.size() > capacity_bytes_) {
    ++stats_.rejections;
    return false;
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= it->second.size();
    used_bytes_ += value.size();
    it->second = std::move(value);
    ++stats_.admissions;
    return true;
  }
  if (used_bytes_ + value.size() > capacity_bytes_) {
    // The solver sized the configuration to fit; if chunk sizes drifted
    // (e.g. configuration from a stale size estimate) decline rather than
    // evict a configured sibling.
    ++stats_.rejections;
    return false;
  }
  used_bytes_ += value.size();
  entries_.emplace(key, std::move(value));
  ++stats_.admissions;
  return true;
}

bool StaticConfigCache::contains(const std::string& key) const {
  return entries_.contains(key);
}

bool StaticConfigCache::erase(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  return true;
}

void StaticConfigCache::clear() {
  stats_.evictions += entries_.size();
  entries_.clear();
  used_bytes_ = 0;
}

std::vector<std::string> StaticConfigCache::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  // agar-lint: ordered-ok(sorted below before returning)
  for (const auto& [key, value] : entries_) out.push_back(key);
  // Callers compare and print key lists; hand them a stable order rather
  // than the hash-map's.
  std::sort(out.begin(), out.end());
  return out;
}

void StaticConfigCache::install_configuration(
    std::unordered_set<std::string> configured) {
  configured_ = std::move(configured);
  ++reconfigurations_;
  // agar-lint: ordered-ok(pure eviction sweep; membership test + counter, no
  // order-dependent output)
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!configured_.contains(it->first)) {
      used_bytes_ -= it->second.size();
      it = entries_.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

bool StaticConfigCache::is_configured(const std::string& key) const {
  return configured_.contains(key);
}

}  // namespace agar::cache
