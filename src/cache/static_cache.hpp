// Agar-managed cache: a bounded store whose admission is gated by a
// pre-computed *static configuration* (paper §III-c/d).
//
// The cache manager periodically installs the set of chunk keys that should
// reside in the cache. Between reconfigurations:
//   * get() serves whatever configured chunks have been populated;
//   * put() admits ONLY configured keys (clients write chunks they fetched,
//     per the paper's client-populates-cache protocol); anything else is
//     rejected;
//   * entries that fall out of the configuration are evicted eagerly at
//     reconfiguration time.
// There is no eviction policy in the classical sense — the knapsack solver
// already decided what deserves the space.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hpp"

namespace agar::cache {

class StaticConfigCache final : public CacheEngine {
 public:
  explicit StaticConfigCache(std::size_t capacity_bytes);

  [[nodiscard]] std::optional<SharedBytes> get(const std::string& key) override;
  bool put(const std::string& key, SharedBytes value) override;
  [[nodiscard]] bool contains(const std::string& key) const override;
  bool erase(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::vector<std::string> keys() const override;

  /// Install a new configuration: the exact set of admissible keys.
  /// Resident entries outside the new set are evicted immediately; keys in
  /// the set are admitted lazily as clients put them.
  void install_configuration(std::unordered_set<std::string> configured);

  [[nodiscard]] bool is_configured(const std::string& key) const;
  [[nodiscard]] std::size_t configured_size() const {
    return configured_.size();
  }
  [[nodiscard]] std::uint64_t reconfigurations() const {
    return reconfigurations_;
  }

 private:
  std::unordered_set<std::string> configured_;
  std::unordered_map<std::string, SharedBytes> entries_;
  std::uint64_t reconfigurations_ = 0;
};

}  // namespace agar::cache
