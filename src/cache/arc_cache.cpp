#include "cache/arc_cache.hpp"

#include <algorithm>
#include <memory>

#include "api/registry.hpp"

namespace agar::cache {

ArcCache::ArcCache(std::size_t capacity_bytes) : CacheEngine(capacity_bytes) {}

std::optional<SharedBytes> ArcCache::get(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end() || (it->second.where != Where::kT1 &&
                             it->second.where != Where::kT2)) {
    ++stats_.misses;
    return std::nullopt;
  }
  Locator& loc = it->second;
  // Any repeat access promotes to the frequency side (T2 MRU).
  if (loc.where == Where::kT1) {
    const std::size_t size = loc.entry->value.size();
    t2_.splice(t2_.begin(), t1_, loc.entry);
    t1_bytes_ -= size;
    t2_bytes_ += size;
    loc.where = Where::kT2;
  } else {
    t2_.splice(t2_.begin(), t2_, loc.entry);
  }
  ++stats_.hits;
  return loc.entry->value;
}

void ArcCache::remove_ghost(std::list<Ghost>& list, std::size_t& bytes,
                            std::list<Ghost>::iterator it) {
  bytes -= it->size;
  index_.erase(it->key);
  list.erase(it);
}

void ArcCache::replace(std::size_t incoming, bool favor_t1) {
  while (t1_bytes_ + t2_bytes_ + incoming > capacity_bytes_) {
    const bool from_t1 =
        !t1_.empty() &&
        (t1_bytes_ > target_p_ || (favor_t1 && t1_bytes_ >= target_p_) ||
         t2_.empty());
    if (from_t1) {
      Entry& victim = t1_.back();
      const std::size_t size = victim.value.size();
      Locator& loc = index_.at(victim.key);
      b1_.push_front(Ghost{victim.key, size});
      loc.where = Where::kB1;
      loc.ghost = b1_.begin();
      b1_bytes_ += size;
      t1_bytes_ -= size;
      used_bytes_ -= size;
      t1_.pop_back();
      ++stats_.evictions;
    } else if (!t2_.empty()) {
      Entry& victim = t2_.back();
      const std::size_t size = victim.value.size();
      Locator& loc = index_.at(victim.key);
      b2_.push_front(Ghost{victim.key, size});
      loc.where = Where::kB2;
      loc.ghost = b2_.begin();
      b2_bytes_ += size;
      t2_bytes_ -= size;
      used_bytes_ -= size;
      t2_.pop_back();
      ++stats_.evictions;
    } else {
      break;  // nothing resident to evict
    }
  }
}

void ArcCache::trim_ghosts() {
  // Directory bound: resident + ghosts <= 2x capacity, and the recency
  // half (T1 + B1) <= capacity. Oldest ghosts go first.
  while (!b1_.empty() && t1_bytes_ + b1_bytes_ > capacity_bytes_) {
    remove_ghost(b1_, b1_bytes_, std::prev(b1_.end()));
  }
  while (!b2_.empty() && t1_bytes_ + t2_bytes_ + b1_bytes_ + b2_bytes_ >
                             2 * capacity_bytes_) {
    remove_ghost(b2_, b2_bytes_, std::prev(b2_.end()));
  }
  while (!b1_.empty() && t1_bytes_ + t2_bytes_ + b1_bytes_ + b2_bytes_ >
                             2 * capacity_bytes_) {
    remove_ghost(b1_, b1_bytes_, std::prev(b1_.end()));
  }
}

void ArcCache::insert_resident(Where where, const std::string& key,
                               SharedBytes value) {
  const std::size_t size = value.size();
  Locator loc;
  loc.where = where;
  if (where == Where::kT1) {
    t1_.push_front(Entry{key, std::move(value)});
    loc.entry = t1_.begin();
    t1_bytes_ += size;
  } else {
    t2_.push_front(Entry{key, std::move(value)});
    loc.entry = t2_.begin();
    t2_bytes_ += size;
  }
  used_bytes_ += size;
  index_[key] = loc;
}

bool ArcCache::put(const std::string& key, SharedBytes value) {
  ++stats_.puts;
  const std::size_t size = value.size();
  if (size > capacity_bytes_) {
    ++stats_.rejections;
    return false;  // can never fit
  }

  const auto it = index_.find(key);
  if (it != index_.end() &&
      (it->second.where == Where::kT1 || it->second.where == Where::kT2)) {
    // Resident overwrite: refresh on the frequency side.
    Locator& loc = it->second;
    const std::size_t old_size = loc.entry->value.size();
    if (loc.where == Where::kT1) {
      t2_.splice(t2_.begin(), t1_, loc.entry);
      t1_bytes_ -= old_size;
      t2_bytes_ += old_size;
      loc.where = Where::kT2;
    } else {
      t2_.splice(t2_.begin(), t2_, loc.entry);
    }
    t2_bytes_ += size - old_size;
    used_bytes_ += size - old_size;
    loc.entry->value = std::move(value);
    // A grown entry may exceed capacity; evict others (never itself: it
    // sits at the T2 MRU position and eviction takes the LRU end).
    replace(0, false);
    trim_ghosts();
    ++stats_.admissions;
    return true;
  }

  if (it != index_.end() && it->second.where == Where::kB1) {
    // Recency ghost hit: a bigger T1 would have kept it. Grow the target.
    const std::size_t ratio =
        std::max<std::size_t>(1, b2_bytes_ / std::max<std::size_t>(b1_bytes_, 1));
    target_p_ = std::min(capacity_bytes_, target_p_ + ratio * size);
    remove_ghost(b1_, b1_bytes_, it->second.ghost);
    replace(size, false);
    insert_resident(Where::kT2, key, std::move(value));
  } else if (it != index_.end() && it->second.where == Where::kB2) {
    // Frequency ghost hit: shrink T1's share.
    const std::size_t ratio =
        std::max<std::size_t>(1, b1_bytes_ / std::max<std::size_t>(b2_bytes_, 1));
    const std::size_t delta = ratio * size;
    target_p_ = target_p_ > delta ? target_p_ - delta : 0;
    remove_ghost(b2_, b2_bytes_, it->second.ghost);
    replace(size, true);
    insert_resident(Where::kT2, key, std::move(value));
  } else {
    // Brand-new key: recency side.
    replace(size, false);
    insert_resident(Where::kT1, key, std::move(value));
  }
  trim_ghosts();
  ++stats_.admissions;
  return true;
}

bool ArcCache::contains(const std::string& key) const {
  const auto it = index_.find(key);
  return it != index_.end() && (it->second.where == Where::kT1 ||
                                it->second.where == Where::kT2);
}

bool ArcCache::erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  Locator loc = it->second;
  switch (loc.where) {
    case Where::kT1:
      t1_bytes_ -= loc.entry->value.size();
      used_bytes_ -= loc.entry->value.size();
      t1_.erase(loc.entry);
      index_.erase(it);
      return true;
    case Where::kT2:
      t2_bytes_ -= loc.entry->value.size();
      used_bytes_ -= loc.entry->value.size();
      t2_.erase(loc.entry);
      index_.erase(it);
      return true;
    case Where::kB1:
      remove_ghost(b1_, b1_bytes_, loc.ghost);
      return false;  // was not resident
    case Where::kB2:
      remove_ghost(b2_, b2_bytes_, loc.ghost);
      return false;
  }
  return false;
}

void ArcCache::clear() {
  stats_.evictions += t1_.size() + t2_.size();
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  index_.clear();
  t1_bytes_ = t2_bytes_ = b1_bytes_ = b2_bytes_ = 0;
  used_bytes_ = 0;
  target_p_ = 0;
}

std::vector<std::string> ArcCache::keys() const {
  std::vector<std::string> out;
  out.reserve(t1_.size() + t2_.size());
  for (const auto& e : t1_) out.push_back(e.key);
  for (const auto& e : t2_) out.push_back(e.key);
  return out;
}

// ----------------------------------------------------------- registration
// This is the ONLY wiring ARC has: registering the engine makes
// `system=arc` runnable through the fixed-chunks adapter, gives it a
// bench/CLI label, and puts it in `--list` — no other file changes.

namespace {

const api::EngineRegistration kArcEngine{{
    "arc",
    "ARC",
    "adaptive replacement cache: self-tuning recency/frequency balance "
    "with ghost lists",
    api::ParamSchema{},
    [](const api::EngineContext& ctx, const api::ParamMap&) {
      return std::make_unique<ArcCache>(ctx.capacity_bytes);
    },
    {}}};

}  // namespace

}  // namespace agar::cache
