// Umbrella header for the declarative experiment API: registries,
// ExperimentSpec, and spec-driven execution. See docs/api.md for a tour.
#pragma once

#include "api/experiment_spec.hpp"  // IWYU pragma: export
#include "api/param_map.hpp"        // IWYU pragma: export
#include "api/registry.hpp"         // IWYU pragma: export
#include "api/run.hpp"              // IWYU pragma: export
