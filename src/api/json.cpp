#include "api/json.hpp"

#include <cctype>
#include <stdexcept>

namespace agar::api {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::as_param_text() const {
  switch (kind) {
    case Kind::kString:
    case Kind::kNumber:
      return text;
    case Kind::kBool:
      return boolean ? "true" : "false";
    default:
      throw std::invalid_argument(
          "expected a string, number or bool JSON value");
  }
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::invalid_argument("JSON error at line " + std::to_string(line) +
                                ", column " + std::to_string(col) + ": " +
                                message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) == 0) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Specs are ASCII; accept \uXXXX but only the Latin-1 range.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned long code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              fail("non-hex digit in \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned long>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(static_cast<unsigned char>(h)) -
                                 'a' + 10);
          }
          pos_ += 4;
          if (code > 0xFF) fail("non-ASCII \\u escape in spec file");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = text_.substr(start, pos_ - start);
    if (v.text.empty() || v.text == "-") fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace agar::api
