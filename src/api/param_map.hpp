// Typed string-keyed parameters for the declarative experiment API.
//
// A ParamMap carries `key=value` pairs exactly as the user wrote them (CLI
// --set flags, JSON spec files, bench literals); typed getters parse on
// access so one representation serves every front end. A ParamSchema is the
// self-describing side: each registered engine/strategy publishes the
// parameters it understands (name, type, default, doc line), which powers
// `agar_cli --list`, validation diagnostics, and docs/api.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace agar::api {

/// What a parameter's value must parse as.
enum class ParamType { kSize, kDouble, kBool, kString, kSizeList };

[[nodiscard]] std::string to_string(ParamType type);

/// One declared parameter of an engine or strategy.
struct ParamInfo {
  std::string name;
  ParamType type = ParamType::kString;
  std::string default_value;  ///< as the user would write it ("10MB", "0.5")
  std::string description;
};

/// The declared parameter set of one registry entry.
struct ParamSchema {
  std::vector<ParamInfo> params;

  [[nodiscard]] const ParamInfo* find(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const {
    return find(name) != nullptr;
  }
  /// Declared default parsed as a double/size (0 when absent).
  [[nodiscard]] double default_double(const std::string& name,
                                      double fallback) const;
  [[nodiscard]] std::size_t default_size(const std::string& name,
                                         std::size_t fallback) const;
};

/// Parse "10MB" / "512KB" / "1GB" / "4096" into bytes (also accepts plain
/// counts, so `chunks=5` parses with the same function). Lower/upper case
/// suffixes both work. Throws std::invalid_argument with the offending text.
[[nodiscard]] std::size_t parse_size(const std::string& text);

/// Parse "true"/"false"/"1"/"0"/"yes"/"no". Throws on anything else.
[[nodiscard]] bool parse_bool(const std::string& text);

/// Parse a comma-separated list of sizes ("1,3,5,7,9").
[[nodiscard]] std::vector<std::size_t> parse_size_list(const std::string& text);

/// Split "key=value" (first '='). Throws std::invalid_argument when there
/// is no '=' or the key is empty.
[[nodiscard]] std::pair<std::string, std::string> split_pair(
    const std::string& pair);

/// Insertion-ordered string->string map with typed, default-aware getters.
class ParamMap {
 public:
  /// Set (or overwrite) one parameter.
  void set(const std::string& key, std::string value);
  /// Set from one "key=value" pair.
  void set_pair(const std::string& pair);
  /// Remove a parameter; returns true if it was present.
  bool erase(const std::string& key);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Raw value, or std::nullopt when unset.
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  // Typed getters: parse the stored string, falling back to `fallback` when
  // the key is unset. Parse failures throw std::invalid_argument naming the
  // key and the offending value.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::vector<std::size_t> get_size_list(
      const std::string& key, std::vector<std::size_t> fallback) const;

  /// All pairs in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const {
    return entries_;
  }

  /// The namespaced sub-map under `prefix`, with the prefix stripped:
  /// scoped("planner.") turns {"planner.threshold": "0.2"} into
  /// {"threshold": "0.2"}. Insertion order preserved.
  [[nodiscard]] ParamMap scoped(const std::string& prefix) const;

  /// Every key must be declared by `schema` (plus `extra_allowed`), and its
  /// value must parse as the declared type. Throws std::invalid_argument
  /// with a diagnostic naming the bad key and listing the accepted ones.
  void validate(const ParamSchema& schema, const std::string& context,
                const std::vector<std::string>& extra_allowed = {}) const;

  /// "chunks=5 cache_bytes=10MB" — for logs and error messages.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace agar::api
