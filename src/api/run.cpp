#include "api/run.hpp"

#include "api/registry.hpp"

namespace agar::api {

client::StrategyFactory make_strategy_factory(const ExperimentSpec& spec) {
  spec.validate();
  auto [name, effective] = resolve_system(spec.system, spec.params);
  return [name = std::move(name), params = std::move(effective)](
             const client::ExperimentConfig& config,
             client::Deployment& deployment, RegionId region,
             sim::EventLoop* loop) {
    client::ClientContext client;
    client.backend = &deployment.backend();
    client.network = &deployment.network_for(region);
    client.codec = deployment.codec_override_for(region);
    client.loop = loop;
    client.region = region;
    client.decode_ms_per_mb = config.decode_ms_per_mb;
    client.verify_data = config.verify_data;

    StrategyContext context;
    context.client = &client;
    context.experiment = &config;
    context.deployment = &deployment;
    return StrategyRegistry::instance().create(name, context, params);
  };
}

std::unique_ptr<client::ReadStrategy> make_strategy(
    const ExperimentSpec& spec, client::Deployment& deployment,
    RegionId region) {
  return make_strategy_factory(spec)(spec.experiment, deployment, region,
                                     nullptr);
}

RunReport run(const ExperimentSpec& spec) {
  const client::StrategyFactory factory = make_strategy_factory(spec);
  return RunReport{
      spec, client::run_experiment(spec.experiment, factory, spec.label())};
}

std::vector<RunReport> run_all(const std::vector<ExperimentSpec>& specs) {
  std::vector<RunReport> reports;
  reports.reserve(specs.size());
  for (const auto& spec : specs) reports.push_back(run(spec));
  return reports;
}

std::vector<client::ExperimentResult> results_of(
    const std::vector<RunReport>& reports) {
  std::vector<client::ExperimentResult> out;
  out.reserve(reports.size());
  for (const auto& report : reports) out.push_back(report.result);
  return out;
}

}  // namespace agar::api
