#include "api/run.hpp"

#include "api/registry.hpp"

namespace agar::api {

client::StrategyFactory make_strategy_factory(const ExperimentSpec& spec) {
  spec.validate();
  auto [name, effective] = resolve_system(spec.system, spec.params);
  return [name = std::move(name), params = std::move(effective)](
             const client::ExperimentConfig& config,
             client::Deployment& deployment, RegionId region,
             sim::EventLoop* loop) {
    client::ClientContext client;
    client.backend = &deployment.backend();
    client.network = &deployment.network_for(region);
    client.codec = deployment.codec_override_for(region);
    client.loop = loop;
    client.region = region;
    client.decode_ms_per_mb = config.decode_ms_per_mb;
    client.verify_data = config.verify_data;
    // "none" creates no policy object at all: the coordinator keeps the
    // raw-network wire path and results stay byte-identical to a build
    // without the knob.
    if (config.fetch_policy != "none") {
      FetchPolicyContext fetch_ctx;
      fetch_ctx.network = client.network;
      fetch_ctx.region = region;
      // Per-(run, region) jitter stream: the deployment carries the run's
      // seed, the region offsets it — shard packing cannot change draws.
      fetch_ctx.seed = deployment.config().seed +
                       0x9E3779B97F4A7C15ULL * (region + 1) + 0xF7C4;
      client.fetch_policy = FetchPolicyRegistry::instance().create(
          config.fetch_policy, fetch_ctx, config.fetch_params);
    }

    StrategyContext context;
    context.client = &client;
    context.experiment = &config;
    context.deployment = &deployment;
    return StrategyRegistry::instance().create(name, context, params);
  };
}

std::unique_ptr<client::ReadStrategy> make_strategy(
    const ExperimentSpec& spec, client::Deployment& deployment,
    RegionId region) {
  return make_strategy_factory(spec)(spec.experiment, deployment, region,
                                     nullptr);
}

RunReport run(const ExperimentSpec& spec) {
  const client::StrategyFactory factory = make_strategy_factory(spec);
  return RunReport{
      spec, client::run_experiment(spec.experiment, factory, spec.label())};
}

std::vector<RunReport> run_all(const std::vector<ExperimentSpec>& specs) {
  std::vector<RunReport> reports;
  reports.reserve(specs.size());
  for (const auto& spec : specs) reports.push_back(run(spec));
  return reports;
}

std::vector<client::ExperimentResult> results_of(
    const std::vector<RunReport>& reports) {
  std::vector<client::ExperimentResult> out;
  out.reserve(reports.size());
  for (const auto& report : reports) out.push_back(report.result);
  return out;
}

}  // namespace agar::api
