#include "api/param_map.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/types.hpp"

namespace agar::api {

std::string to_string(ParamType type) {
  switch (type) {
    case ParamType::kSize: return "size";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
    case ParamType::kSizeList: return "size-list";
  }
  return "?";
}

const ParamInfo* ParamSchema::find(const std::string& name) const {
  for (const auto& p : params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double ParamSchema::default_double(const std::string& name,
                                   double fallback) const {
  const ParamInfo* info = find(name);
  if (info == nullptr || info->default_value.empty()) return fallback;
  return std::stod(info->default_value);
}

std::size_t ParamSchema::default_size(const std::string& name,
                                      std::size_t fallback) const {
  const ParamInfo* info = find(name);
  if (info == nullptr || info->default_value.empty()) return fallback;
  return parse_size(info->default_value);
}

std::size_t parse_size(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("empty size value");
  }
  // std::stoull would wrap "-1" to 2^64-1; sizes are non-negative.
  if (!std::isdigit(static_cast<unsigned char>(text.front()))) {
    throw std::invalid_argument("'" + text + "' is not a size");
  }
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("'" + text + "' is not a size");
  }
  std::string suffix = text.substr(pos);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  std::size_t scale = 1;
  if (suffix.empty() || suffix == "B") {
    scale = 1;
  } else if (suffix == "KB" || suffix == "K") {
    scale = 1_KB;
  } else if (suffix == "MB" || suffix == "M") {
    scale = 1_MB;
  } else if (suffix == "GB" || suffix == "G") {
    scale = 1024 * 1_MB;
  } else {
    throw std::invalid_argument("'" + text +
                                "' has an unknown size suffix (use KB/MB/GB)");
  }
  return static_cast<std::size_t>(value) * scale;
}

bool parse_bool(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw std::invalid_argument("'" + text + "' is not a bool");
}

std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream parts(text);
  std::string part;
  while (std::getline(parts, part, ',')) {
    if (part.empty()) continue;
    out.push_back(parse_size(part));
  }
  if (out.empty()) {
    throw std::invalid_argument("'" + text + "' is not a size list");
  }
  return out;
}

std::pair<std::string, std::string> split_pair(const std::string& pair) {
  const std::size_t eq = pair.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("expected key=value, got '" + pair + "'");
  }
  return {pair.substr(0, eq), pair.substr(eq + 1)};
}

void ParamMap::set(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

void ParamMap::set_pair(const std::string& pair) {
  auto [key, value] = split_pair(pair);
  set(key, std::move(value));
}

bool ParamMap::erase(const std::string& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool ParamMap::has(const std::string& key) const {
  return raw(key).has_value();
}

std::optional<std::string> ParamMap::raw(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

namespace {

/// Re-throw a parse failure with the key attached — the user sees which of
/// their `key=value` pairs was malformed, not just the bad value.
template <typename Fn>
auto parse_with_context(const std::string& key, const std::string& value,
                        Fn&& parse) {
  try {
    return parse(value);
  } catch (const std::exception& e) {
    throw std::invalid_argument("parameter '" + key + "': " + e.what());
  }
}

}  // namespace

std::string ParamMap::get_string(const std::string& key,
                                 const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

std::size_t ParamMap::get_size(const std::string& key,
                               std::size_t fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  return parse_with_context(key, *value,
                            [](const std::string& v) { return parse_size(v); });
}

double ParamMap::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  return parse_with_context(key, *value, [](const std::string& v) {
    try {
      std::size_t pos = 0;
      const double d = std::stod(v, &pos);
      if (pos != v.size()) throw std::invalid_argument("");
      return d;
    } catch (const std::exception&) {
      throw std::invalid_argument("'" + v + "' is not a number");
    }
  });
}

bool ParamMap::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  return parse_with_context(key, *value,
                            [](const std::string& v) { return parse_bool(v); });
}

std::vector<std::size_t> ParamMap::get_size_list(
    const std::string& key, std::vector<std::size_t> fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  return parse_with_context(
      key, *value, [](const std::string& v) { return parse_size_list(v); });
}

ParamMap ParamMap::scoped(const std::string& prefix) const {
  ParamMap out;
  for (const auto& [key, value] : entries_) {
    if (key.size() > prefix.size() && key.rfind(prefix, 0) == 0) {
      out.set(key.substr(prefix.size()), value);
    }
  }
  return out;
}

void ParamMap::validate(const ParamSchema& schema, const std::string& context,
                        const std::vector<std::string>& extra_allowed) const {
  for (const auto& [key, value] : entries_) {
    const ParamInfo* info = schema.find(key);
    if (info == nullptr) {
      if (std::find(extra_allowed.begin(), extra_allowed.end(), key) !=
          extra_allowed.end()) {
        continue;
      }
      std::string known;
      for (const auto& p : schema.params) {
        known += (known.empty() ? "" : ", ") + p.name;
      }
      throw std::invalid_argument(
          context + " does not accept parameter '" + key + "'" +
          (known.empty() ? " (it takes no parameters)"
                         : " (accepted: " + known + ")"));
    }
    // Parse with the declared type so malformed values fail loudly at spec
    // time, not mid-experiment.
    switch (info->type) {
      case ParamType::kSize:
        (void)get_size(key, 0);
        break;
      case ParamType::kDouble:
        (void)get_double(key, 0.0);
        break;
      case ParamType::kBool:
        (void)get_bool(key, false);
        break;
      case ParamType::kString:
        break;
      case ParamType::kSizeList:
        (void)get_size_list(key, {});
        break;
    }
  }
}

std::string ParamMap::to_string() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    out += (out.empty() ? "" : " ") + k + "=" + v;
  }
  return out;
}

}  // namespace agar::api
