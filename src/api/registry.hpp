// String-keyed, self-registering factories — the open replacement for the
// old closed `StrategySpec::Kind` enum.
//
// Six registries exist:
//   * api::Registry<cache::CacheEngine>  — replacement/admission policies
//     ("lru", "lfu", "tinylfu", "arc", ...), built against a byte capacity;
//   * api::Registry<client::ReadStrategy> — whole client systems
//     ("backend", "lfu", "agar", "fixed-chunks", ...), built against a
//     deployment;
//   * api::Registry<core::Planner> — reconfiguration solvers
//     ("knapsack-dp", "greedy", "brute-force", "incremental"), selected
//     with the `planner=` spec key;
//   * api::Registry<core::PopularityEstimator> — popularity tracking behind
//     the request monitor ("exact-ewma", "count-min"), selected with the
//     `monitor=` spec key;
//   * api::Registry<client::FetchPolicy> — fault-tolerant fetch wrappers
//     ("none", "retry", "hedge"), selected with the `fetch=` spec key;
//   * api::Registry<collab::CollabSettings> — cooperative cache tier modes
//     ("none", "broadcast"), selected with the `collab=` spec key.
//
// Each entry carries a factory, a one-line description, a self-describing
// ParamSchema, and a label formatter, so `--list` output, bench legends and
// JSON report labels all derive from the same registration. Entries
// register themselves from their own translation unit at static-init time:
//
//   namespace {
//   const api::EngineRegistration kArc{{
//       "arc", "ARC", "adaptive replacement cache (recency+frequency)",
//       {{"..."}, ...},
//       [](const api::EngineContext& ctx, const api::ParamMap&) {
//         return std::make_unique<ArcCache>(ctx.capacity_bytes);
//       }}};
//   }  // namespace
//
// — no enum to extend, no switch to edit, no CLI/bench plumbing to touch.
// (The library is linked as a CMake OBJECT library so registration objects
// in otherwise-unreferenced translation units are never stripped.)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/param_map.hpp"
#include "common/types.hpp"

namespace agar::cache {
class CacheEngine;
}
namespace agar::client {
class ReadStrategy;
class FetchPolicy;
struct ClientContext;
struct ExperimentConfig;
class Deployment;
}  // namespace agar::client
namespace agar::collab {
struct CollabSettings;
}
namespace agar::core {
class Planner;
class PopularityEstimator;
}  // namespace agar::core
namespace agar::sim {
class EventLoop;
class Network;
}  // namespace agar::sim

namespace agar::api {

/// Lookup of a name nobody registered. Carries the sorted known names so
/// callers (CLI, spec validation) print actionable diagnostics.
class UnknownNameError : public std::invalid_argument {
 public:
  UnknownNameError(const std::string& what, std::vector<std::string> known)
      : std::invalid_argument(what), known_(std::move(known)) {}
  [[nodiscard]] const std::vector<std::string>& known_names() const {
    return known_;
  }

 private:
  std::vector<std::string> known_;
};

/// What an engine factory gets to work with.
struct EngineContext {
  std::size_t capacity_bytes = 0;
};

/// What a strategy factory gets to work with: the per-region client wiring
/// plus the experiment-level knobs (reconfiguration period, candidate
/// weights, ...) and the deployment for anything topology-derived.
struct StrategyContext {
  const client::ClientContext* client = nullptr;
  const client::ExperimentConfig* experiment = nullptr;
  client::Deployment* deployment = nullptr;
};

/// What a planner factory gets to work with. Planners are pure solvers —
/// everything problem-specific arrives with each plan() call — so the
/// context is empty today; it exists so new wiring (e.g. a time source)
/// never changes factory signatures.
struct PlannerContext {};

/// What a popularity-estimator factory gets to work with: the monitor's
/// EWMA weighting (an experiment-level knob, not an estimator param).
struct EstimatorContext {
  double ewma_alpha = 0.8;
};

/// What a fetch-policy factory gets to work with: the region's network (the
/// policy wraps its begin_fetch and reads its latency model for timeout
/// sizing), the client region it serves, and a seed for the policy's own
/// deterministic jitter stream (already mixed per lane by the caller, so
/// shard packing cannot change the draws).
struct FetchPolicyContext {
  sim::Network* network = nullptr;
  RegionId region = 0;
  std::uint64_t seed = 0;
};

/// What a collab factory gets to work with. The product is a parsed
/// settings struct, not a live object — the runner builds the per-run
/// collab::CollabRuntime itself (it needs the engine and lane wiring that
/// only exist mid-run) — so the context is empty today.
struct CollabContext {};

namespace detail {
/// Maps a product type to the context its factories receive.
template <typename Product>
struct ContextOf;
template <>
struct ContextOf<cache::CacheEngine> {
  using type = EngineContext;
};
template <>
struct ContextOf<client::ReadStrategy> {
  using type = StrategyContext;
};
template <>
struct ContextOf<core::Planner> {
  using type = PlannerContext;
};
template <>
struct ContextOf<core::PopularityEstimator> {
  using type = EstimatorContext;
};
template <>
struct ContextOf<client::FetchPolicy> {
  using type = FetchPolicyContext;
};
template <>
struct ContextOf<collab::CollabSettings> {
  using type = CollabContext;
};
}  // namespace detail

template <typename Product>
class Registry {
 public:
  using Context = typename detail::ContextOf<Product>::type;
  using Factory =
      std::function<std::unique_ptr<Product>(const Context&, const ParamMap&)>;
  using LabelFn = std::function<std::string(const ParamMap&)>;

  struct Entry {
    std::string name;         ///< registry key ("lru", "agar", ...)
    std::string display;      ///< label stem ("LRU", "Agar", ...)
    std::string description;  ///< one line for --list
    ParamSchema schema;
    Factory factory;
    /// Full label for a parameterization; null means `display` alone.
    LabelFn label_fn;
  };

  /// The process-wide registry (construct-on-first-use, so registrations
  /// from any translation unit's static initializers are safe).
  static Registry& instance() {
    // agar-lint: global-ok(process-wide registry; mutated only by static
    // registration objects before main, read-only afterwards)
    static Registry registry;
    return registry;
  }

  /// Register an entry. Throws on a duplicate name — two policies silently
  /// shadowing each other is exactly the drift this layer exists to kill.
  void add(Entry entry) {
    if (entry.name.empty()) {
      throw std::invalid_argument("registry: empty name");
    }
    if (!entry.factory) {
      throw std::invalid_argument("registry: '" + entry.name +
                                  "' has no factory");
    }
    const auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
    if (!inserted) {
      throw std::invalid_argument("registry: duplicate registration of '" +
                                  it->first + "'");
    }
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

  [[nodiscard]] const Entry& at(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string list;
      for (const auto& [n, e] : entries_) list += (list.empty() ? "" : " ") + n;
      throw UnknownNameError("unknown name '" + name + "' (known: " + list +
                             ")",
                             names());
    }
    return it->second;
  }

  [[nodiscard]] std::unique_ptr<Product> create(const std::string& name,
                                                const Context& context,
                                                const ParamMap& params) const {
    return at(name).factory(context, params);
  }

  /// Label for one parameterization — THE single source every legend, CLI
  /// listing and JSON report goes through.
  [[nodiscard]] std::string label(const std::string& name,
                                  const ParamMap& params) const {
    const Entry& entry = at(name);
    if (entry.label_fn) return entry.label_fn(params);
    return entry.display.empty() ? entry.name : entry.display;
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, Entry> entries_;
};

using EngineRegistry = Registry<cache::CacheEngine>;
using StrategyRegistry = Registry<client::ReadStrategy>;
using PlannerRegistry = Registry<core::Planner>;
using EstimatorRegistry = Registry<core::PopularityEstimator>;
using FetchPolicyRegistry = Registry<client::FetchPolicy>;
using CollabRegistry = Registry<collab::CollabSettings>;

/// Static-init registration helpers:
///   namespace { const api::EngineRegistration kReg{{...}}; }
struct EngineRegistration {
  explicit EngineRegistration(EngineRegistry::Entry entry) {
    EngineRegistry::instance().add(std::move(entry));
  }
};
struct StrategyRegistration {
  explicit StrategyRegistration(StrategyRegistry::Entry entry) {
    StrategyRegistry::instance().add(std::move(entry));
  }
};
struct PlannerRegistration {
  explicit PlannerRegistration(PlannerRegistry::Entry entry) {
    PlannerRegistry::instance().add(std::move(entry));
  }
};
struct EstimatorRegistration {
  explicit EstimatorRegistration(EstimatorRegistry::Entry entry) {
    EstimatorRegistry::instance().add(std::move(entry));
  }
};
struct FetchPolicyRegistration {
  explicit FetchPolicyRegistration(FetchPolicyRegistry::Entry entry) {
    FetchPolicyRegistry::instance().add(std::move(entry));
  }
};
struct CollabRegistration {
  explicit CollabRegistration(CollabRegistry::Entry entry) {
    CollabRegistry::instance().add(std::move(entry));
  }
};

}  // namespace agar::api
