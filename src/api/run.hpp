// Spec-driven experiment execution: turn a declarative ExperimentSpec into
// a strategy factory via the registries, run it on the simulator, and hand
// back the results with a registry-derived label attached.
#pragma once

#include <string>
#include <vector>

#include "api/experiment_spec.hpp"
#include "client/runner.hpp"

namespace agar::api {

/// Outcome of one spec: the spec as run plus the aggregated result (the
/// result's `label` is the registry-derived display name).
struct RunReport {
  ExperimentSpec spec;
  client::ExperimentResult result;

  [[nodiscard]] const std::string& label() const { return result.label; }
};

/// Build the strategy factory a spec describes. The returned callable keeps
/// a copy of the spec's system/params and reads experiment-level knobs from
/// the config passed at call time, so it can outlive the spec.
[[nodiscard]] client::StrategyFactory make_strategy_factory(
    const ExperimentSpec& spec);

/// Convenience for tests/examples that hold a strategy directly: build one
/// instance for `region` against a deployment (no event loop).
[[nodiscard]] std::unique_ptr<client::ReadStrategy> make_strategy(
    const ExperimentSpec& spec, client::Deployment& deployment,
    RegionId region);

/// Validate and run one spec (all runs).
[[nodiscard]] RunReport run(const ExperimentSpec& spec);

/// Run several specs; identical experiment shapes replay identical seeds,
/// so reports are directly comparable.
[[nodiscard]] std::vector<RunReport> run_all(
    const std::vector<ExperimentSpec>& specs);

/// The results of several reports (for client::print_results_table /
/// client::results_json).
[[nodiscard]] std::vector<client::ExperimentResult> results_of(
    const std::vector<RunReport>& reports);

}  // namespace agar::api
