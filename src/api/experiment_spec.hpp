// Declarative experiment description — subsumes the old StrategySpec +
// ExperimentConfig + DeploymentConfig triple behind one `key=value`
// surface. One spec = one system evaluated under one deployment/workload
// shape; a spec file or a sweep grid expands into several specs.
//
// Three equivalent front ends feed the same struct:
//   * typed field access (tests, library callers):
//       spec.system = "lru"; spec.params.set("chunks", "5");
//       spec.experiment.ops_per_run = 1000;
//   * key=value pairs (CLI --set, bench literals):
//       auto spec = ExperimentSpec::from_pairs({"system=lru", "chunks=5"});
//   * JSON spec files (CI, saved experiments):
//       agar_cli --spec examples/specs/agar_vs_lfu.json
//
// The `system` name resolves against api::StrategyRegistry; a name that is
// only a registered cache engine resolves to the generic "fixed-chunks"
// adapter with `engine=<name>` — which is what makes a newly registered
// engine (ARC) a runnable system with zero plumbing edits.
#pragma once

#include <string>
#include <vector>

#include "api/param_map.hpp"
#include "client/runner.hpp"

namespace agar::api {

struct ExperimentSpec {
  /// Registry name of the system under test ("agar", "lru", "backend",
  /// "arc", ...).
  std::string system = "agar";
  /// Strategy/engine parameters (chunks, cache_bytes, proxy_ms, engine,
  /// sketch_width, ...), validated against the registered schema.
  ParamMap params;
  /// Deployment + workload + run shape (the old ExperimentConfig, typed).
  client::ExperimentConfig experiment{};

  /// Route one key=value onto the spec: experiment-level keys (see
  /// `experiment_keys()`) update `experiment` with full parse diagnostics;
  /// every other key lands in `params` for schema validation at
  /// `validate()` time. Throws std::invalid_argument on malformed values.
  void set(const std::string& key, const std::string& value);
  /// `set` from one "key=value" string.
  void set_pair(const std::string& pair);

  [[nodiscard]] static ExperimentSpec from_pairs(
      const std::vector<std::string>& pairs);
  /// Copy with extra pairs applied — the bench idiom:
  ///   base.with({"system=lru", "chunks=5"})
  [[nodiscard]] ExperimentSpec with(
      const std::vector<std::string>& pairs) const;

  /// Resolve the system against the registries and validate every param
  /// against the registered schema. Throws with actionable diagnostics
  /// (unknown system -> known names; unknown/malformed param -> accepted
  /// keys).
  void validate() const;

  /// Display label, derived from the registry name + params in one place —
  /// bench legends, CLI headers and JSON reports can never disagree.
  [[nodiscard]] std::string label() const;

  /// Serialize as a JSON object (parseable by `parse_spec_json`).
  [[nodiscard]] std::string to_json() const;

  /// The experiment-level keys `set` understands, with documentation —
  /// introspection for --list and error messages.
  [[nodiscard]] static const ParamSchema& experiment_keys();
};

/// Resolve a system name to (strategy registry entry name, effective
/// params): registered strategies pass through; engine-only names become
/// "fixed-chunks" with engine=<name>. Throws UnknownNameError listing every
/// runnable system otherwise.
[[nodiscard]] std::pair<std::string, ParamMap> resolve_system(
    const std::string& system, const ParamMap& params);

/// Every runnable system name: registered strategies plus registered
/// engines (through the fixed-chunks adapter), deduplicated, sorted.
[[nodiscard]] std::vector<std::string> runnable_systems();

/// Parse a spec document: top-level scalar members apply to a base spec;
/// an optional "systems" array of objects expands into one spec per entry;
/// an optional "sweep" object of key -> array expands the grid. Scalars
/// and arrays-of-scalars (joined with commas) are accepted as values.
[[nodiscard]] std::vector<ExperimentSpec> parse_spec_json(
    const std::string& text);

/// `parse_spec_json` over a file. Throws std::invalid_argument naming the
/// path on read failure.
[[nodiscard]] std::vector<ExperimentSpec> load_spec_file(
    const std::string& path);

class JsonValue;

/// Build one validated spec from an already-parsed JSON object — the
/// single-spec subset of `parse_spec_json` (no "systems"/"sweep"
/// expansion). Callers that embed spec objects inside a larger document
/// (the daemon routing config) use this instead of re-serializing.
[[nodiscard]] ExperimentSpec spec_from_json_object(const JsonValue& object);

/// Expand a cross-product grid over a base spec; the first grid key is the
/// outermost (slowest-varying) dimension. Keys may be anything `set`
/// accepts, including "system".
[[nodiscard]] std::vector<ExperimentSpec> sweep(
    const ExperimentSpec& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>& grid);

}  // namespace agar::api
