#include "api/experiment_spec.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/json.hpp"
#include "api/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/topology.hpp"

namespace agar::api {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) out += (out.empty() ? "" : " ") + n;
  return out;
}

RegionId region_id(const std::string& name) {
  const auto topology = sim::aws_six_regions();
  try {
    return topology.id_of(name);
  } catch (const std::exception&) {
    std::string known;
    for (RegionId r = 0; r < topology.num_regions(); ++r) {
      known += (known.empty() ? "" : " ") + topology.name(r);
    }
    throw std::invalid_argument("unknown region '" + name +
                                "' (known: " + known + ")");
  }
}

client::WorkloadSpec parse_workload(const std::string& text) {
  if (text == "uniform") return client::WorkloadSpec::uniform();
  std::string skew = text;
  if (skew.rfind("zipf:", 0) == 0) skew = skew.substr(5);
  try {
    std::size_t pos = 0;
    const double s = std::stod(skew, &pos);
    if (pos != skew.size() || s < 0.0) throw std::invalid_argument("");
    return client::WorkloadSpec::zipfian(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("workload '" + text +
                                "' is not 'uniform', 'zipf:<skew>' or a "
                                "plain skew value");
  }
}

}  // namespace

const ParamSchema& ExperimentSpec::experiment_keys() {
  static const ParamSchema schema{{
      {"system", ParamType::kString, "agar",
       "system under test (any registered strategy or cache engine)"},
      {"workload", ParamType::kString, "zipf:1.1",
       "'uniform', 'zipf:<skew>' or a plain Zipf skew"},
      {"region", ParamType::kString, "frankfurt", "primary client region"},
      {"regions", ParamType::kString, "",
       "comma-separated client regions (one cache node per region)"},
      {"objects", ParamType::kSize, "300", "working-set size"},
      {"object_bytes", ParamType::kSize, "1MB", "object size"},
      {"ops", ParamType::kSize, "1000", "reads per run (all regions)"},
      {"runs", ParamType::kSize, "5", "independent runs"},
      {"clients", ParamType::kSize, "2", "closed-loop clients per region"},
      {"arrival_rate", ParamType::kDouble, "0",
       "open-loop Poisson reads/s per region (0 = closed loop)"},
      {"period_s", ParamType::kDouble, "30",
       "reconfiguration period in seconds (agar, lfu)"},
      {"seed", ParamType::kSize, "42", "RNG seed"},
      {"verify", ParamType::kBool, "false",
       "move real bytes and RS-decode every read"},
      {"max_outstanding", ParamType::kSize, "64",
       "per-region concurrent-fetch cap (0 = unlimited)"},
      {"decode_ms_per_mb", ParamType::kDouble, "10",
       "client decode cost per MB"},
      {"weights", ParamType::kSizeList, "1,3,5,7,9",
       "candidate option weights for agar"},
      {"rs_k", ParamType::kSize, "9", "Reed-Solomon data chunks"},
      {"rs_m", ParamType::kSize, "3", "Reed-Solomon parity chunks"},
      {"placement_offset", ParamType::kBool, "false",
       "rotate chunk placement per key"},
      {"window_ms", ParamType::kDouble, "0",
       "windowed time-series metric width in ms (0 = off)"},
      {"shards", ParamType::kSize, "1",
       "simulation worker threads (results identical for any value)"},
      {"fetch", ParamType::kString, "none",
       "fault-tolerant fetch policy (none, retry, hedge); parameters "
       "arrive namespaced as fetch.<param>"},
      {"collab", ParamType::kString, "none",
       "cooperative cache tier (none, broadcast); parameters arrive "
       "namespaced as collab.<param>"},
      {"scenario", ParamType::kString, "",
       "mid-run event script: \"at_ms event k=v ...; ...\" (JSON specs "
       "may use an array of {at_ms, event, ...} objects)"},
  }};
  return schema;
}

void ExperimentSpec::set(const std::string& key, const std::string& value) {
  // One-entry map so typed parses reuse the ParamMap diagnostics (the error
  // names the key and the offending value).
  ParamMap one;
  one.set(key, value);

  if (key == "system") {
    system = value;
  } else if (key == "workload") {
    experiment.workload = parse_workload(value);
  } else if (key == "region") {
    experiment.client_region = region_id(value);
    // Last writer wins: a multi-region list set earlier would otherwise
    // silently override this (effective_client_regions prefers the list).
    experiment.client_regions.clear();
  } else if (key == "regions") {
    std::vector<RegionId> regions;
    std::stringstream names(value);
    std::string name;
    while (std::getline(names, name, ',')) {
      if (name.empty()) continue;
      regions.push_back(region_id(name));
    }
    if (regions.empty()) {
      throw std::invalid_argument("'regions' needs at least one region name");
    }
    experiment.client_regions = regions;
    experiment.client_region = regions.front();
  } else if (key == "objects") {
    experiment.deployment.num_objects = one.get_size(key, 0);
  } else if (key == "object_bytes") {
    experiment.deployment.object_size_bytes = one.get_size(key, 0);
  } else if (key == "ops") {
    experiment.ops_per_run = one.get_size(key, 0);
  } else if (key == "runs") {
    experiment.runs = one.get_size(key, 0);
  } else if (key == "clients") {
    experiment.num_clients = one.get_size(key, 0);
  } else if (key == "arrival_rate") {
    experiment.arrival_rate_per_s = one.get_double(key, 0.0);
  } else if (key == "period_s") {
    experiment.reconfig_period_ms = one.get_double(key, 0.0) * 1000.0;
  } else if (key == "seed") {
    experiment.deployment.seed = one.get_size(key, 0);
  } else if (key == "verify") {
    experiment.verify_data = one.get_bool(key, false);
  } else if (key == "max_outstanding") {
    experiment.max_outstanding_per_region = one.get_size(key, 0);
  } else if (key == "decode_ms_per_mb") {
    experiment.decode_ms_per_mb = one.get_double(key, 0.0);
  } else if (key == "weights") {
    experiment.agar_candidate_weights = one.get_size_list(key, {});
  } else if (key == "rs_k") {
    experiment.deployment.codec.k = one.get_size(key, 0);
  } else if (key == "rs_m") {
    experiment.deployment.codec.m = one.get_size(key, 0);
  } else if (key == "placement_offset") {
    experiment.deployment.per_key_placement_offset = one.get_bool(key, false);
  } else if (key == "window_ms") {
    experiment.metric_window_ms = one.get_double(key, 0.0);
  } else if (key == "shards") {
    experiment.shards = one.get_size(key, 0);
  } else if (key == "scenario") {
    // Compact text form; "scenario=" clears. JSON spec files may instead
    // carry an array, which parse_spec_json routes around this setter.
    experiment.scenario = scenario::parse_scenario_text(value);
  } else if (key == "fetch") {
    experiment.fetch_policy = value.empty() ? "none" : value;
  } else if (key.rfind("fetch.", 0) == 0) {
    // Namespaced fetch-policy parameter ("fetch.retries=3"), prefix
    // stripped; schema-checked against the policy's entry in validate().
    const std::string sub = key.substr(6);
    if (value.empty()) {
      experiment.fetch_params.erase(sub);
    } else {
      experiment.fetch_params.set(sub, value);
    }
  } else if (key == "collab") {
    experiment.collab = value.empty() ? "none" : value;
  } else if (key.rfind("collab.", 0) == 0) {
    // Namespaced collab parameter ("collab.period_s=5"), prefix stripped;
    // schema-checked against the tier's registry entry in validate().
    const std::string sub = key.substr(7);
    if (value.empty()) {
      experiment.collab_params.erase(sub);
    } else {
      experiment.collab_params.set(sub, value);
    }
  } else if (value.empty()) {
    // "key=" clears a strategy param — lets a sweep/base spec drop a
    // parameter for systems that do not take it ("cache_bytes=" for
    // backend).
    params.erase(key);
  } else {
    // Strategy/engine parameter; schema-checked in validate().
    params.set(key, value);
  }
}

void ExperimentSpec::set_pair(const std::string& pair) {
  auto [key, value] = split_pair(pair);
  set(key, value);
}

ExperimentSpec ExperimentSpec::from_pairs(
    const std::vector<std::string>& pairs) {
  ExperimentSpec spec;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return spec;
}

ExperimentSpec ExperimentSpec::with(
    const std::vector<std::string>& pairs) const {
  ExperimentSpec spec = *this;
  for (const auto& pair : pairs) spec.set_pair(pair);
  return spec;
}

std::pair<std::string, ParamMap> resolve_system(const std::string& system,
                                                const ParamMap& params) {
  const auto& strategies = StrategyRegistry::instance();
  if (strategies.contains(system)) return {system, params};
  const auto& engines = EngineRegistry::instance();
  if (engines.contains(system) && strategies.contains("fixed-chunks")) {
    // An engine-only name runs as a fixed-chunks system over that engine —
    // registering a cache engine is all it takes to stand up a baseline.
    ParamMap effective = params;
    effective.set("engine", system);
    return {"fixed-chunks", effective};
  }
  throw UnknownNameError(
      "unknown system '" + system + "' (known: " + join(runnable_systems()) +
          ")",
      runnable_systems());
}

std::vector<std::string> runnable_systems() {
  std::vector<std::string> out = StrategyRegistry::instance().names();
  if (StrategyRegistry::instance().contains("fixed-chunks")) {
    for (const auto& engine : EngineRegistry::instance().names()) {
      if (std::find(out.begin(), out.end(), engine) == out.end()) {
        out.push_back(engine);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Validate a control-plane selection (planner= / monitor=) against its
/// registry: the name must be registered, and the namespaced sub-params
/// ("planner.threshold") must match the entry's schema. The prefixed names
/// are appended to `extra` so the strategy-level validation accepts them.
template <typename Registry>
void validate_control_plane_pick(const Registry& registry,
                                 const ParamMap& effective,
                                 const std::string& key,
                                 const std::string& default_name,
                                 std::vector<std::string>& extra) {
  const std::string name = effective.get_string(key, default_name);
  if (!registry.contains(name)) {
    throw UnknownNameError("unknown " + key + " '" + name +
                               "' (known: " + join(registry.names()) + ")",
                           registry.names());
  }
  const auto& schema = registry.at(name).schema;
  effective.scoped(key + ".").validate(schema, key + " '" + name + "'");
  for (const auto& p : schema.params) extra.push_back(key + "." + p.name);
}

}  // namespace

void ExperimentSpec::validate() const {
  const auto [name, effective] = resolve_system(system, params);
  const auto& entry = StrategyRegistry::instance().at(name);
  std::vector<std::string> extra;
  // Systems that declare a planner/monitor parameter (Agar's control
  // plane) get those names resolved against the planner / estimator
  // registries, with typed validation of the namespaced sub-params.
  if (const ParamInfo* planner = entry.schema.find("planner")) {
    validate_control_plane_pick(PlannerRegistry::instance(), effective,
                                "planner", planner->default_value, extra);
  }
  if (const ParamInfo* monitor = entry.schema.find("monitor")) {
    validate_control_plane_pick(EstimatorRegistry::instance(), effective,
                                "monitor", monitor->default_value, extra);
  }
  const auto engine = effective.raw("engine");
  if (engine.has_value()) {
    // Fail at spec time, not mid-comparison: an explicit
    // system=fixed-chunks engine=<typo> reaches here unresolved.
    const auto& engines = EngineRegistry::instance();
    if (!engines.contains(*engine)) {
      throw UnknownNameError("unknown cache engine '" + *engine +
                                 "' (known: " + join(engines.names()) + ")",
                             engines.names());
    }
    // Engine-specific params (sketch_width, ...) ride along with the
    // adapter's own schema.
    for (const auto& p : engines.at(*engine).schema.params) {
      extra.push_back(p.name);
    }
  }
  effective.validate(entry.schema, "system '" + system + "'", extra);
  {
    const auto& fetches = FetchPolicyRegistry::instance();
    if (!fetches.contains(experiment.fetch_policy)) {
      throw UnknownNameError("unknown fetch policy '" +
                                 experiment.fetch_policy +
                                 "' (known: " + join(fetches.names()) + ")",
                             fetches.names());
    }
    experiment.fetch_params.validate(
        fetches.at(experiment.fetch_policy).schema,
        "fetch policy '" + experiment.fetch_policy + "'");
  }
  {
    const auto& collabs = CollabRegistry::instance();
    if (!collabs.contains(experiment.collab)) {
      throw UnknownNameError("unknown collab tier '" + experiment.collab +
                                 "' (known: " + join(collabs.names()) + ")",
                             collabs.names());
    }
    experiment.collab_params.validate(
        collabs.at(experiment.collab).schema,
        "collab tier '" + experiment.collab + "'");
    // planner.scope=global draws on the peers' broadcast snapshots; without
    // the cooperative tier there is nothing to merge — reject instead of
    // silently planning on local data.
    if (experiment.collab == "none" &&
        effective.get_string("planner.scope", "region") == "global") {
      throw std::invalid_argument(
          "planner.scope=global requires collab=broadcast (a region-local "
          "planner has no peer snapshots to merge)");
    }
  }
  if (experiment.deployment.codec.k == 0 ||
      experiment.deployment.codec.m == 0) {
    throw std::invalid_argument("rs_k and rs_m must be >= 1");
  }
  if (experiment.metric_window_ms < 0.0) {
    throw std::invalid_argument("window_ms must be >= 0");
  }
  if (experiment.shards < 1) {
    throw std::invalid_argument("shards must be >= 1");
  }
  experiment.scenario.validate();
}

std::string ExperimentSpec::label() const {
  const auto [name, effective] = resolve_system(system, params);
  std::string out = StrategyRegistry::instance().label(name, effective);
  // The fetch policy changes what is measured; surface it in every legend.
  if (experiment.fetch_policy != "none") {
    out += "+" + FetchPolicyRegistry::instance().label(
                     experiment.fetch_policy, experiment.fetch_params);
  }
  // Same rule for the cooperative tier.
  if (experiment.collab != "none") {
    out += "+" + CollabRegistry::instance().label(experiment.collab,
                                                  experiment.collab_params);
  }
  return out;
}

std::string ExperimentSpec::to_json() const {
  const auto topology = sim::aws_six_regions();
  std::ostringstream out;
  out << "{\n  \"system\": \"" << json_escape(system) << "\",\n";
  const auto& e = experiment;
  out << "  \"workload\": \""
      << (e.workload.kind == client::WorkloadSpec::Kind::kUniform
              ? std::string("uniform")
              : "zipf:" + fmt_double(e.workload.zipf_skew))
      << "\",\n";
  if (e.client_regions.empty()) {
    out << "  \"region\": \"" << topology.name(e.client_region) << "\",\n";
  } else {
    out << "  \"regions\": [";
    for (std::size_t i = 0; i < e.client_regions.size(); ++i) {
      out << (i > 0 ? ", " : "") << "\"" << topology.name(e.client_regions[i])
          << "\"";
    }
    out << "],\n";
  }
  out << "  \"objects\": " << e.deployment.num_objects << ",\n"
      << "  \"object_bytes\": " << e.deployment.object_size_bytes << ",\n"
      << "  \"ops\": " << e.ops_per_run << ",\n"
      << "  \"runs\": " << e.runs << ",\n"
      << "  \"clients\": " << e.num_clients << ",\n"
      << "  \"arrival_rate\": " << fmt_double(e.arrival_rate_per_s) << ",\n"
      << "  \"period_s\": " << fmt_double(e.reconfig_period_ms / 1000.0)
      << ",\n"
      << "  \"seed\": " << e.deployment.seed << ",\n"
      << "  \"verify\": " << (e.verify_data ? "true" : "false") << ",\n"
      << "  \"max_outstanding\": " << e.max_outstanding_per_region << ",\n"
      << "  \"decode_ms_per_mb\": " << fmt_double(e.decode_ms_per_mb) << ",\n"
      << "  \"weights\": [";
  for (std::size_t i = 0; i < e.agar_candidate_weights.size(); ++i) {
    out << (i > 0 ? ", " : "") << e.agar_candidate_weights[i];
  }
  out << "],\n"
      << "  \"rs_k\": " << e.deployment.codec.k << ",\n"
      << "  \"rs_m\": " << e.deployment.codec.m << ",\n"
      << "  \"placement_offset\": "
      << (e.deployment.per_key_placement_offset ? "true" : "false");
  if (e.metric_window_ms > 0.0) {
    out << ",\n  \"window_ms\": " << fmt_double(e.metric_window_ms);
  }
  // Emitted only when sharded: the default spec JSON (and its goldens)
  // stays unchanged, and shards never affect results anyway.
  if (e.shards != 1) {
    out << ",\n  \"shards\": " << e.shards;
  }
  // Same default-elision as shards: fetch=none specs serialize exactly as
  // they did before the knob existed.
  if (e.fetch_policy != "none") {
    out << ",\n  \"fetch\": \"" << json_escape(e.fetch_policy) << "\"";
    for (const auto& [k, v] : e.fetch_params.entries()) {
      out << ",\n  \"fetch." << json_escape(k) << "\": \"" << json_escape(v)
          << "\"";
    }
  }
  if (e.collab != "none") {
    out << ",\n  \"collab\": \"" << json_escape(e.collab) << "\"";
    for (const auto& [k, v] : e.collab_params.entries()) {
      out << ",\n  \"collab." << json_escape(k) << "\": \"" << json_escape(v)
          << "\"";
    }
  }
  if (!e.scenario.empty()) {
    out << ",\n  \"scenario\": " << e.scenario.to_json("  ");
  }
  if (!params.empty()) {
    out << ",\n  \"params\": {";
    const auto& entries = params.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << (i > 0 ? ", " : "") << "\"" << json_escape(entries[i].first)
          << "\": \"" << json_escape(entries[i].second) << "\"";
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

namespace {

/// A scalar, or an array of scalars joined with commas ("weights": [1,3,5]).
std::string value_text(const JsonValue& value) {
  if (value.is_array()) {
    std::string out;
    for (const auto& item : value.array) {
      out += (out.empty() ? "" : ",") + item.as_param_text();
    }
    return out;
  }
  return value.as_param_text();
}

/// Route one JSON member onto a spec: "params" objects and "scenario"
/// arrays get structured handling, everything else goes through set().
void apply_member(ExperimentSpec& spec, const std::string& key,
                  const JsonValue& value) {
  if (key == "params" && value.is_object()) {
    for (const auto& [pk, pv] : value.object) {
      spec.params.set(pk, value_text(pv));
    }
    return;
  }
  if (key == "scenario" && value.is_array()) {
    spec.experiment.scenario = scenario::scenario_from_json(value);
    return;
  }
  spec.set(key, value_text(value));
}

void apply_members(ExperimentSpec& spec, const JsonValue& object) {
  for (const auto& [key, value] : object.object) {
    apply_member(spec, key, value);
  }
}

}  // namespace

ExperimentSpec spec_from_json_object(const JsonValue& object) {
  if (!object.is_object()) {
    throw std::invalid_argument("spec must be a JSON object");
  }
  ExperimentSpec spec;
  apply_members(spec, object);
  spec.validate();
  return spec;
}

std::vector<ExperimentSpec> parse_spec_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("spec file: top level must be a JSON object");
  }

  ExperimentSpec base;
  for (const auto& [key, value] : doc.object) {
    if (key == "systems" || key == "sweep") continue;
    apply_member(base, key, value);
  }

  std::vector<ExperimentSpec> specs;
  const JsonValue* systems = doc.find("systems");
  if (systems != nullptr) {
    if (!systems->is_array()) {
      throw std::invalid_argument("spec file: 'systems' must be an array");
    }
    for (const auto& entry : systems->array) {
      ExperimentSpec spec = base;
      if (entry.kind == JsonValue::Kind::kString) {
        spec.set("system", entry.text);
      } else if (entry.is_object()) {
        apply_members(spec, entry);
      } else {
        throw std::invalid_argument(
            "spec file: 'systems' entries must be objects or system names");
      }
      specs.push_back(std::move(spec));
    }
  } else {
    specs.push_back(std::move(base));
  }

  const JsonValue* grid = doc.find("sweep");
  if (grid != nullptr) {
    if (!grid->is_object()) {
      throw std::invalid_argument("spec file: 'sweep' must be an object");
    }
    std::vector<std::pair<std::string, std::vector<std::string>>> dims;
    for (const auto& [key, values] : grid->object) {
      if (!values.is_array() || values.array.empty()) {
        throw std::invalid_argument("spec file: sweep '" + key +
                                    "' must be a non-empty array");
      }
      std::vector<std::string> texts;
      for (const auto& v : values.array) texts.push_back(value_text(v));
      dims.emplace_back(key, std::move(texts));
    }
    std::vector<ExperimentSpec> expanded;
    for (const auto& spec : specs) {
      auto grid_specs = sweep(spec, dims);
      expanded.insert(expanded.end(), grid_specs.begin(), grid_specs.end());
    }
    specs = std::move(expanded);
  }

  for (const auto& spec : specs) spec.validate();
  return specs;
}

std::vector<ExperimentSpec> load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read spec file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_spec_json(text.str());
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::vector<ExperimentSpec> sweep(
    const ExperimentSpec& base,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        grid) {
  std::vector<ExperimentSpec> specs = {base};
  for (const auto& [key, values] : grid) {
    if (values.empty()) {
      throw std::invalid_argument("sweep dimension '" + key + "' is empty");
    }
    std::vector<ExperimentSpec> next;
    next.reserve(specs.size() * values.size());
    for (const auto& spec : specs) {
      for (const auto& value : values) {
        ExperimentSpec expanded = spec;
        expanded.set(key, value);
        next.push_back(std::move(expanded));
      }
    }
    specs = std::move(next);
  }
  return specs;
}

}  // namespace agar::api
