// Minimal JSON reader for experiment spec files — objects, arrays, strings,
// numbers, booleans, null; no dependencies. Numbers are kept as the exact
// text they were written with and handed to the same typed parsers the
// key=value front end uses, so `"cache_bytes": "10MB"` and
// `"cache_bytes": 10485760` behave identically.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace agar::api {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< number (verbatim source text) or string payload
  std::vector<JsonValue> array;
  /// Insertion-ordered object members (spec keys keep file order).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  /// Object member by key, or nullptr.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// String/number/bool rendered back as the flat text the ParamMap parsers
  /// expect. Throws for arrays/objects/null.
  [[nodiscard]] std::string as_param_text() const;
};

/// Parse one JSON document. Throws std::invalid_argument with line/column
/// on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Escape a string for embedding in JSON output.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace agar::api
