// Chunk placement policy: which region stores which chunk of an object.
//
// The paper (Fig. 1) distributes the twelve chunks of each object over six
// regions round-robin, two chunks per region. The policy is a pure function
// of (key, chunk index, region count) so every component — backend, region
// manager, client — independently agrees on the layout without metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace agar::ec {

class Placement {
 public:
  virtual ~Placement() = default;

  /// Region storing chunk `index` of `key`, given `num_regions` regions.
  [[nodiscard]] virtual RegionId region_of(const ObjectKey& key,
                                           ChunkIndex index,
                                           std::size_t num_regions) const = 0;

  /// All chunk indices of a (k+m)-chunk stripe that live in `region`.
  [[nodiscard]] std::vector<ChunkIndex> chunks_in_region(
      const ObjectKey& key, std::size_t total_chunks, RegionId region,
      std::size_t num_regions) const;
};

/// Round-robin placement: chunk i -> region (i + offset(key)) % R.
/// With offset disabled (the paper's setup) chunk i simply lives in region
/// i % R, so every region holds the same stripe positions for every object.
/// With key offsets enabled the stripe start rotates per key, spreading the
/// "near" chunks across regions (useful for load-balance experiments).
class RoundRobinPlacement final : public Placement {
 public:
  explicit RoundRobinPlacement(bool per_key_offset = false)
      : per_key_offset_(per_key_offset) {}

  [[nodiscard]] RegionId region_of(const ObjectKey& key, ChunkIndex index,
                                   std::size_t num_regions) const override;

 private:
  bool per_key_offset_;
};

}  // namespace agar::ec
