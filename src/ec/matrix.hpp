// Dense matrices over GF(2^8) with just enough linear algebra for
// Reed-Solomon coding: multiplication, Gauss-Jordan inversion, submatrix
// extraction, and the Vandermonde / Cauchy constructions used to build
// encoding matrices.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace agar::ec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  /// Build from a row-major initializer list of rows.
  Matrix(std::initializer_list<std::initializer_list<std::uint8_t>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (row-major contiguous storage).
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  bool operator==(const Matrix&) const = default;

  /// this * other. Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// Gauss-Jordan inverse. Throws std::domain_error if singular, or
  /// std::invalid_argument if not square.
  [[nodiscard]] Matrix inverted() const;

  /// Identity of the given order.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Rows [first, first+count) as a new matrix.
  [[nodiscard]] Matrix sub_rows(std::size_t first, std::size_t count) const;

  /// A new matrix consisting of the given rows (in the given order).
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& idx) const;

  /// True if every square submatrix formed by any `rows()`-choose-k rows is
  /// invertible is NOT checked here; this checks this single matrix.
  [[nodiscard]] bool is_identity() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Vandermonde matrix V[r][c] = (r+1)^c? No — standard EC construction:
/// V[r][c] = pow(r, c) over rows r in [0, rows), cols c in [0, cols).
/// Any k rows of the (k+m) x k Vandermonde matrix are linearly independent
/// provided the row generators are distinct, which holds for rows < 256.
[[nodiscard]] Matrix vandermonde(std::size_t rows, std::size_t cols);

/// Systematic encoding matrix for RS(k, m): the top k rows are the identity,
/// the bottom m rows mix all k data chunks. Built by reducing the
/// (k+m) x k Vandermonde matrix so its top square is the identity (the same
/// construction Jerasure/ISA-L use). Any k of the k+m rows are invertible.
[[nodiscard]] Matrix systematic_vandermonde(std::size_t k, std::size_t m);

/// Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = i + k, y_j = j.
/// Every square submatrix of a Cauchy matrix is invertible, which makes the
/// systematic [I; C] construction MDS by construction.
[[nodiscard]] Matrix cauchy(std::size_t rows, std::size_t cols);

/// Systematic encoding matrix [I; Cauchy] for RS(k, m).
[[nodiscard]] Matrix systematic_cauchy(std::size_t k, std::size_t m);

}  // namespace agar::ec
