#include "ec/object_codec.hpp"

#include <algorithm>
#include <stdexcept>

namespace agar::ec {

std::size_t ObjectCodec::chunk_size(std::size_t object_size) const {
  const std::size_t k = rs_.k();
  // ceil-divide; empty objects still get 1-byte chunks so stripe layout and
  // placement stay uniform.
  return std::max<std::size_t>(1, (object_size + k - 1) / k);
}

EncodedObject ObjectCodec::encode(BytesView object) const {
  const std::size_t cs = chunk_size(object.size());
  const std::size_t k = rs_.k();

  EncodedObject out;
  out.object_size = object.size();
  out.chunks.reserve(rs_.total());

  // Data chunks: copy + zero-pad the tail, then freeze each buffer into
  // shared ownership (a move, not a byte copy).
  std::vector<BytesView> views;
  views.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Bytes payload(cs, 0);
    const std::size_t begin = i * cs;
    if (begin < object.size()) {
      const std::size_t len = std::min(cs, object.size() - begin);
      std::copy_n(object.begin() + static_cast<std::ptrdiff_t>(begin), len,
                  payload.begin());
    }
    out.chunks.push_back(
        Chunk{static_cast<ChunkIndex>(i), SharedBytes(std::move(payload))});
  }
  for (std::size_t i = 0; i < k; ++i) {
    views.emplace_back(out.chunks[i].data.view());
  }

  // Parity chunks.
  std::vector<Bytes> parity = rs_.encode(views);
  for (std::size_t p = 0; p < parity.size(); ++p) {
    out.chunks.push_back(Chunk{static_cast<ChunkIndex>(k + p),
                               SharedBytes(std::move(parity[p]))});
  }
  return out;
}

Bytes ObjectCodec::decode(std::size_t object_size,
                          const std::vector<Chunk>& chunks) const {
  std::vector<std::pair<std::uint32_t, BytesView>> available;
  available.reserve(chunks.size());
  for (const auto& c : chunks) {
    available.emplace_back(c.index, c.data.view());
  }
  const std::vector<Bytes> data = rs_.reconstruct_data(available);

  Bytes object;
  object.reserve(object_size);
  for (const auto& d : data) {
    const std::size_t want = object_size - object.size();
    if (want == 0) break;
    const std::size_t len = std::min(want, d.size());
    object.insert(object.end(), d.begin(),
                  d.begin() + static_cast<std::ptrdiff_t>(len));
  }
  if (object.size() != object_size) {
    throw std::invalid_argument("ObjectCodec::decode: chunks too small");
  }
  return object;
}

}  // namespace agar::ec
