// Systematic Reed-Solomon erasure codec over GF(2^8).
//
// RS(k, m) splits a stripe into k equally sized data chunks and computes m
// parity chunks; ANY k of the k+m chunks reconstruct the stripe (the MDS
// property). This is the same contract as Longhair, the Cauchy Reed-Solomon
// library the paper's prototype used.
//
// The codec is stateless apart from the precomputed encoding matrix, so one
// instance can be shared by every region of the simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "ec/matrix.hpp"

namespace agar::ec {

/// Which matrix construction backs the code. Both are MDS; Cauchy matrices
/// are invertible-by-construction, Vandermonde mirrors classic RS papers.
enum class MatrixKind { kVandermonde, kCauchy };

struct CodecParams {
  std::size_t k = 9;  ///< data chunks (paper default)
  std::size_t m = 3;  ///< parity chunks (paper default)
  MatrixKind kind = MatrixKind::kCauchy;

  [[nodiscard]] std::size_t total() const { return k + m; }
};

class ReedSolomon {
 public:
  explicit ReedSolomon(CodecParams params);

  [[nodiscard]] std::size_t k() const { return params_.k; }
  [[nodiscard]] std::size_t m() const { return params_.m; }
  [[nodiscard]] std::size_t total() const { return params_.total(); }
  [[nodiscard]] const Matrix& encoding_matrix() const { return encode_; }

  /// Encode k data chunks (all the same size) into m parity chunks.
  /// Throws std::invalid_argument on wrong count or ragged sizes.
  [[nodiscard]] std::vector<Bytes> encode(
      const std::vector<BytesView>& data_chunks) const;

  /// Reconstruct the k original data chunks from any k (or more) available
  /// chunks. `available[i]` pairs a chunk index in [0, k+m) with its bytes.
  /// Throws std::invalid_argument if fewer than k chunks are supplied,
  /// indices repeat, or sizes are ragged.
  [[nodiscard]] std::vector<Bytes> reconstruct_data(
      const std::vector<std::pair<std::uint32_t, BytesView>>& available) const;

  /// Reconstruct one specific chunk (data or parity) from any k available
  /// chunks. Used by repair paths and tests.
  [[nodiscard]] Bytes reconstruct_chunk(
      std::uint32_t target,
      const std::vector<std::pair<std::uint32_t, BytesView>>& available) const;

 private:
  /// Rows of the encoding matrix for `index` applied to data columns.
  void apply_row(const Matrix& matrix, std::size_t row,
                 const std::vector<BytesView>& inputs, BytesSpan out) const;

  CodecParams params_;
  Matrix encode_;  // (k+m) x k, top square == identity.
};

}  // namespace agar::ec
