// Systematic Reed-Solomon erasure codec over GF(2^8).
//
// RS(k, m) splits a stripe into k equally sized data chunks and computes m
// parity chunks; ANY k of the k+m chunks reconstruct the stripe (the MDS
// property). This is the same contract as Longhair, the Cauchy Reed-Solomon
// library the paper's prototype used.
//
// Hot-path structure: every row application runs through the fused
// gf::mul_add_multi kernel (one pass over the output for all k inputs), and
// reconstruction memoizes the inverted decode matrix per surviving-chunk
// set — RS(9,3) has at most C(12,9) = 220 such sets, so after warm-up a
// degraded read pays zero matrix-inversion cost. Apart from that cache
// (single-threaded use, like the rest of the simulation) the codec is
// stateless, so one instance can be shared by every region.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "ec/matrix.hpp"

namespace agar::ec {

/// Which matrix construction backs the code. Both are MDS; Cauchy matrices
/// are invertible-by-construction, Vandermonde mirrors classic RS papers.
enum class MatrixKind { kVandermonde, kCauchy };

struct CodecParams {
  std::size_t k = 9;  ///< data chunks (paper default)
  std::size_t m = 3;  ///< parity chunks (paper default)
  MatrixKind kind = MatrixKind::kCauchy;

  [[nodiscard]] std::size_t total() const { return k + m; }
};

class ReedSolomon {
 public:
  explicit ReedSolomon(CodecParams params);

  [[nodiscard]] std::size_t k() const { return params_.k; }
  [[nodiscard]] std::size_t m() const { return params_.m; }
  [[nodiscard]] std::size_t total() const { return params_.total(); }
  [[nodiscard]] const Matrix& encoding_matrix() const { return encode_; }

  /// Encode k data chunks (all the same size) into m parity chunks.
  /// Throws std::invalid_argument on wrong count or ragged sizes.
  [[nodiscard]] std::vector<Bytes> encode(
      const std::vector<BytesView>& data_chunks) const;

  /// Reconstruct the k original data chunks from any k (or more) available
  /// chunks. `available[i]` pairs a chunk index in [0, k+m) with its bytes.
  /// Throws std::invalid_argument if fewer than k chunks are supplied,
  /// indices repeat, or sizes are ragged.
  [[nodiscard]] std::vector<Bytes> reconstruct_data(
      const std::vector<std::pair<std::uint32_t, BytesView>>& available) const;

  /// Reconstruct one specific chunk (data or parity) from any k available
  /// chunks. Used by repair paths and tests.
  [[nodiscard]] Bytes reconstruct_chunk(
      std::uint32_t target,
      const std::vector<std::pair<std::uint32_t, BytesView>>& available) const;

  // ---------------------------------------------- decode-plan cache stats
  /// Reconstructions that found their inverted decode matrix memoized.
  [[nodiscard]] std::uint64_t decode_plan_hits() const { return plan_hits_; }
  /// Reconstructions that had to invert (and then memoized the result).
  [[nodiscard]] std::uint64_t decode_plan_misses() const {
    return plan_misses_;
  }
  [[nodiscard]] std::size_t decode_plan_cache_size() const {
    return plan_cache_.size();
  }
  /// Drop memoized plans (benchmarks measuring the cold path).
  void clear_decode_plan_cache() const { plan_cache_.clear(); }

 private:
  /// out = sum_j matrix[row][j] * inputs[j], via the fused kernel.
  void apply_row(const Matrix& matrix, std::size_t row,
                 const std::vector<BytesView>& inputs, BytesSpan out) const;

  /// Inverted decode matrix for this exact (sorted, distinct) row set,
  /// served from the plan cache when the row set fits a 64-bit mask.
  [[nodiscard]] const Matrix& decode_plan(
      const std::vector<std::size_t>& rows) const;

  CodecParams params_;
  Matrix encode_;  // (k+m) x k, top square == identity.

  // Memoized inverted decode matrices keyed by the surviving-row bitmask.
  // Mutable: reconstruction is logically const. Single-threaded by design
  // (the simulation drives everything from one event loop). Bounded: once
  // kMaxCachedPlans distinct patterns are cached, further ones invert
  // without memoizing (only reachable by codes far wider than the paper's).
  static constexpr std::size_t kMaxCachedPlans = 4096;
  mutable std::unordered_map<std::uint64_t, Matrix> plan_cache_;
  mutable Matrix plan_scratch_;  // fallback when total() > 64 (uncacheable)
  mutable std::uint64_t plan_hits_ = 0;
  mutable std::uint64_t plan_misses_ = 0;
};

}  // namespace agar::ec
