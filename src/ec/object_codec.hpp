// Object <-> chunk conversion on top of the Reed-Solomon codec.
//
// Objects have arbitrary byte sizes; the stripe requires k equal chunks, so
// the codec pads the object to a multiple of k and records the original size
// so decode can strip the padding. This mirrors what the paper's modified
// YCSB client did around Longhair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/shared_bytes.hpp"
#include "common/types.hpp"
#include "ec/reed_solomon.hpp"

namespace agar::ec {

/// One encoded chunk: stripe position plus payload. The payload is a
/// refcounted immutable buffer, so chunks are cheap to copy between the
/// store, caches and the decoder.
struct Chunk {
  ChunkIndex index = 0;
  SharedBytes data;
};

/// A fully encoded object: k data chunks followed by m parity chunks.
struct EncodedObject {
  std::size_t object_size = 0;  ///< pre-padding size, needed by decode
  std::vector<Chunk> chunks;    ///< size k + m, indices 0..k+m-1
};

class ObjectCodec {
 public:
  explicit ObjectCodec(CodecParams params) : rs_(params) {}

  [[nodiscard]] const ReedSolomon& rs() const { return rs_; }
  [[nodiscard]] std::size_t k() const { return rs_.k(); }
  [[nodiscard]] std::size_t m() const { return rs_.m(); }

  /// Size of each chunk for an object of `object_size` bytes.
  [[nodiscard]] std::size_t chunk_size(std::size_t object_size) const;

  /// Split + encode. Always produces k+m chunks (even for empty objects).
  [[nodiscard]] EncodedObject encode(BytesView object) const;

  /// Reassemble the object from any k of its chunks.
  /// `object_size` must be the original (pre-padding) size.
  [[nodiscard]] Bytes decode(std::size_t object_size,
                             const std::vector<Chunk>& chunks) const;

 private:
  ReedSolomon rs_;
};

}  // namespace agar::ec
