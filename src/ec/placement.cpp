#include "ec/placement.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace agar::ec {

std::vector<ChunkIndex> Placement::chunks_in_region(
    const ObjectKey& key, std::size_t total_chunks, RegionId region,
    std::size_t num_regions) const {
  std::vector<ChunkIndex> out;
  for (std::size_t i = 0; i < total_chunks; ++i) {
    const auto idx = static_cast<ChunkIndex>(i);
    if (region_of(key, idx, num_regions) == region) out.push_back(idx);
  }
  return out;
}

RegionId RoundRobinPlacement::region_of(const ObjectKey& key, ChunkIndex index,
                                        std::size_t num_regions) const {
  if (num_regions == 0) {
    throw std::invalid_argument("RoundRobinPlacement: no regions");
  }
  std::size_t offset = 0;
  if (per_key_offset_) offset = fnv1a(key) % num_regions;
  return static_cast<RegionId>((index + offset) % num_regions);
}

}  // namespace agar::ec
