#include "ec/matrix.hpp"

#include <stdexcept>

#include "gf/gf256.hpp"

namespace agar::ec {

Matrix::Matrix(std::initializer_list<std::initializer_list<std::uint8_t>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint8_t a = at(i, j);
      if (a == 0) continue;
      for (std::size_t k = 0; k < other.cols_; ++k) {
        out.at(i, k) = gf::add(out.at(i, k), gf::mul(a, other.at(j, k)));
      }
    }
  }
  return out;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::inverted: not square");
  }
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix out = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("Matrix::inverted: singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(out.at(pivot, j), out.at(col, j));
      }
    }
    // Scale pivot row to make the diagonal 1.
    const std::uint8_t scale = gf::inv(work.at(col, col));
    if (scale != 1) {
      for (std::size_t j = 0; j < n; ++j) {
        work.at(col, j) = gf::mul(work.at(col, j), scale);
        out.at(col, j) = gf::mul(out.at(col, j), scale);
      }
    }
    // Eliminate the column everywhere else.
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = work.at(row, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(row, j) =
            gf::add(work.at(row, j), gf::mul(factor, work.at(col, j)));
        out.at(row, j) =
            gf::add(out.at(row, j), gf::mul(factor, out.at(col, j)));
      }
    }
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::sub_rows(std::size_t first, std::size_t count) const {
  if (first + count > rows_) {
    throw std::out_of_range("Matrix::sub_rows: range out of bounds");
  }
  Matrix out(count, cols_);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(first + i, j);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: row out of bounds");
    }
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(idx[i], j);
    }
  }
  return out;
}

bool Matrix::is_identity() const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (at(i, j) != (i == j ? 1 : 0)) return false;
    }
  }
  return true;
}

Matrix vandermonde(std::size_t rows, std::size_t cols) {
  if (rows > gf::kFieldSize) {
    throw std::invalid_argument("vandermonde: too many rows for GF(256)");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = gf::pow(static_cast<std::uint8_t>(r),
                           static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix systematic_vandermonde(std::size_t k, std::size_t m) {
  // Right-multiplying V by the inverse of its top k x k square yields a
  // matrix whose top square is the identity. Right multiplication by an
  // invertible matrix preserves the "any k rows invertible" MDS property.
  const Matrix v = vandermonde(k + m, k);
  const Matrix top_inv = v.sub_rows(0, k).inverted();
  return v.multiply(top_inv);
}

Matrix cauchy(std::size_t rows, std::size_t cols) {
  if (rows + cols > gf::kFieldSize) {
    throw std::invalid_argument("cauchy: rows + cols must be <= 256");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto x = static_cast<std::uint8_t>(cols + r);
      const auto y = static_cast<std::uint8_t>(c);
      m.at(r, c) = gf::inv(gf::add(x, y));
    }
  }
  return m;
}

Matrix systematic_cauchy(std::size_t k, std::size_t m) {
  Matrix out(k + m, k);
  for (std::size_t i = 0; i < k; ++i) out.at(i, i) = 1;
  const Matrix c = cauchy(m, k);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      out.at(k + r, j) = c.at(r, j);
    }
  }
  return out;
}

}  // namespace agar::ec
