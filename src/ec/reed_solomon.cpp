#include "ec/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "gf/gf256.hpp"

namespace agar::ec {

namespace {

void check_uniform_size(const std::vector<BytesView>& chunks) {
  if (chunks.empty()) return;
  const std::size_t size = chunks.front().size();
  for (const auto& c : chunks) {
    if (c.size() != size) {
      throw std::invalid_argument("ReedSolomon: ragged chunk sizes");
    }
  }
}

}  // namespace

ReedSolomon::ReedSolomon(CodecParams params) : params_(params) {
  if (params_.k == 0) {
    throw std::invalid_argument("ReedSolomon: k must be positive");
  }
  if (params_.total() > gf::kFieldSize) {
    throw std::invalid_argument("ReedSolomon: k + m must be <= 256");
  }
  encode_ = params_.kind == MatrixKind::kCauchy
                ? systematic_cauchy(params_.k, params_.m)
                : systematic_vandermonde(params_.k, params_.m);
}

void ReedSolomon::apply_row(const Matrix& matrix, std::size_t row,
                            const std::vector<BytesView>& inputs,
                            BytesSpan out) const {
  // The first column initializes `out` outright (mul_slice writes every
  // byte, so no separate zero-fill pass over the buffer); the remaining
  // columns accumulate through the fused kernel — one pass over `out`.
  gf::mul_slice(matrix.at(row, 0), inputs[0], out);
  gf::mul_add_multi(
      std::span<const std::uint8_t>(matrix.row(row) + 1, inputs.size() - 1),
      std::span<const BytesView>(inputs.data() + 1, inputs.size() - 1), out);
}

std::vector<Bytes> ReedSolomon::encode(
    const std::vector<BytesView>& data_chunks) const {
  if (data_chunks.size() != params_.k) {
    throw std::invalid_argument("ReedSolomon::encode: need exactly k chunks");
  }
  check_uniform_size(data_chunks);
  const std::size_t chunk_size = data_chunks.front().size();

  std::vector<Bytes> parity(params_.m, Bytes(chunk_size));
  for (std::size_t p = 0; p < params_.m; ++p) {
    apply_row(encode_, params_.k + p, data_chunks, BytesSpan(parity[p]));
  }
  return parity;
}

const Matrix& ReedSolomon::decode_plan(
    const std::vector<std::size_t>& rows) const {
  if (params_.total() > 64) {
    // Row set doesn't fit a 64-bit mask; invert per call (codes this wide
    // are outside every experiment in the repo).
    plan_scratch_ = encode_.select_rows(rows).inverted();
    ++plan_misses_;
    return plan_scratch_;
  }
  std::uint64_t mask = 0;
  for (const std::size_t r : rows) mask |= std::uint64_t{1} << r;
  const auto it = plan_cache_.find(mask);
  if (it != plan_cache_.end()) {
    ++plan_hits_;
    return it->second;
  }
  ++plan_misses_;
  if (plan_cache_.size() >= kMaxCachedPlans) {
    // Wide codes (total() up to 64) can have astronomically many erasure
    // patterns; stop memoizing rather than grow without bound. The paper's
    // RS(9,3) tops out at 219 cached plans, far under the cap.
    plan_scratch_ = encode_.select_rows(rows).inverted();
    return plan_scratch_;
  }
  return plan_cache_.emplace(mask, encode_.select_rows(rows).inverted())
      .first->second;
}

std::vector<Bytes> ReedSolomon::reconstruct_data(
    const std::vector<std::pair<std::uint32_t, BytesView>>& available) const {
  if (available.size() < params_.k) {
    throw std::invalid_argument(
        "ReedSolomon::reconstruct_data: fewer than k chunks available");
  }

  // Take the first k distinct chunks, preferring data chunks (identity rows)
  // so the common no-failure path is a cheap copy.
  std::vector<std::pair<std::uint32_t, BytesView>> picked;
  picked.reserve(params_.k);
  std::unordered_set<std::uint32_t> seen;
  auto take = [&](bool data_only) {
    for (const auto& [idx, bytes] : available) {
      if (picked.size() == params_.k) break;
      if (idx >= params_.total()) {
        throw std::invalid_argument(
            "ReedSolomon::reconstruct_data: chunk index out of range");
      }
      const bool is_data = idx < params_.k;
      if (data_only != is_data) continue;
      if (!seen.insert(idx).second) continue;
      picked.emplace_back(idx, bytes);
    }
  };
  take(/*data_only=*/true);
  take(/*data_only=*/false);
  if (picked.size() < params_.k) {
    throw std::invalid_argument(
        "ReedSolomon::reconstruct_data: fewer than k distinct chunks");
  }

  // Canonical order: the decode plan is keyed by the chunk *set*, so the
  // picked rows must map to matrix columns the same way regardless of the
  // order `available` arrived in. GF arithmetic is exact — row order never
  // changes the reconstructed bytes.
  std::sort(picked.begin(), picked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<BytesView> views;
  views.reserve(params_.k);
  for (const auto& [idx, bytes] : picked) views.push_back(bytes);
  check_uniform_size(views);
  const std::size_t chunk_size = views.front().size();

  // Fast path: all k data chunks present.
  const bool all_data = picked.back().first < params_.k;
  std::vector<Bytes> out(params_.k, Bytes(chunk_size));
  if (all_data) {
    for (const auto& [idx, bytes] : picked) {
      out[idx].assign(bytes.begin(), bytes.end());
    }
    return out;
  }

  // General path: rows of the encoding matrix for the picked chunks form an
  // invertible k x k matrix (MDS); its inverse maps picked chunks back to
  // the original data chunks. The inverse is memoized per surviving set.
  std::vector<std::size_t> rows;
  rows.reserve(params_.k);
  for (const auto& [idx, bytes] : picked) rows.push_back(idx);
  const Matrix& decode = decode_plan(rows);

  for (std::size_t d = 0; d < params_.k; ++d) {
    apply_row(decode, d, views, BytesSpan(out[d]));
  }
  return out;
}

Bytes ReedSolomon::reconstruct_chunk(
    std::uint32_t target,
    const std::vector<std::pair<std::uint32_t, BytesView>>& available) const {
  if (target >= params_.total()) {
    throw std::invalid_argument(
        "ReedSolomon::reconstruct_chunk: target out of range");
  }
  // If the chunk is already available, return it directly.
  for (const auto& [idx, bytes] : available) {
    if (idx == target) return Bytes(bytes.begin(), bytes.end());
  }
  const std::vector<Bytes> data = reconstruct_data(available);
  if (target < params_.k) return data[target];

  std::vector<BytesView> views;
  views.reserve(params_.k);
  for (const auto& d : data) views.emplace_back(d);
  Bytes out(views.front().size());
  apply_row(encode_, target, views, BytesSpan(out));
  return out;
}

}  // namespace agar::ec
