#include "store/bucket.hpp"

namespace agar::store {

void Bucket::put(const ChunkId& id, SharedBytes data) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  auto it = chunks_.find(id);
  if (it != chunks_.end()) {
    total_bytes_ -= it->second.size();
    total_bytes_ += data.size();
    it->second = std::move(data);
    return;
  }
  total_bytes_ += data.size();
  chunks_.emplace(id, std::move(data));
}

std::optional<SharedBytes> Bucket::get(const ChunkId& id) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return std::nullopt;
  return it->second;  // refcount bump, not a byte copy
}

bool Bucket::contains(const ChunkId& id) const {
  return chunks_.contains(id);
}

bool Bucket::erase(const ChunkId& id) {
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return false;
  total_bytes_ -= it->second.size();
  chunks_.erase(it);
  return true;
}

}  // namespace agar::store
