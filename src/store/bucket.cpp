#include "store/bucket.hpp"

namespace agar::store {

void Bucket::put(const ChunkId& id, Bytes data) {
  ++puts_;
  auto it = chunks_.find(id);
  if (it != chunks_.end()) {
    total_bytes_ -= it->second.size();
    total_bytes_ += data.size();
    it->second = std::move(data);
    return;
  }
  total_bytes_ += data.size();
  chunks_.emplace(id, std::move(data));
}

std::optional<BytesView> Bucket::get(const ChunkId& id) const {
  ++gets_;
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return std::nullopt;
  return BytesView(it->second);
}

bool Bucket::contains(const ChunkId& id) const {
  return chunks_.contains(id);
}

bool Bucket::erase(const ChunkId& id) {
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return false;
  total_bytes_ -= it->second.size();
  chunks_.erase(it);
  return true;
}

}  // namespace agar::store
