#include "store/backend.hpp"

#include <stdexcept>

namespace agar::store {

BackendCluster::BackendCluster(std::size_t num_regions,
                               ec::CodecParams codec_params,
                               std::shared_ptr<const ec::Placement> placement)
    : codec_(codec_params),
      placement_(std::move(placement)),
      buckets_(num_regions) {
  if (num_regions == 0) {
    throw std::invalid_argument("BackendCluster: need at least one region");
  }
  if (placement_ == nullptr) {
    throw std::invalid_argument("BackendCluster: null placement");
  }
}

void BackendCluster::put_object(const ObjectKey& key, BytesView data) {
  ec::EncodedObject encoded = codec_.encode(data);
  for (auto& chunk : encoded.chunks) {
    const RegionId region =
        placement_->region_of(key, chunk.index, num_regions());
    buckets_.at(region).put(ChunkId{key, chunk.index}, std::move(chunk.data));
  }
  objects_[key] = StoredObject{encoded.object_size,
                               codec_.chunk_size(encoded.object_size)};
}

void BackendCluster::register_object(const ObjectKey& key,
                                     std::size_t object_size) {
  objects_[key] = StoredObject{object_size, codec_.chunk_size(object_size)};
}

bool BackendCluster::has_object(const ObjectKey& key) const {
  return objects_.contains(key);
}

ObjectInfo BackendCluster::object_info(const ObjectKey& key) const {
  const auto it = objects_.find(key);
  if (it == objects_.end()) {
    throw std::out_of_range("BackendCluster: unknown object " + key);
  }
  ObjectInfo info;
  info.object_size = it->second.object_size;
  info.chunk_size = it->second.chunk_size;
  const std::size_t total = codec_.rs().total();
  info.locations.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto idx = static_cast<ChunkIndex>(i);
    info.locations.push_back(
        ChunkLocation{idx, placement_->region_of(key, idx, num_regions())});
  }
  return info;
}

std::optional<SharedBytes> BackendCluster::get_chunk(const ChunkId& id) const {
  const auto it = objects_.find(id.key);
  if (it == objects_.end()) return std::nullopt;
  const RegionId region = placement_->region_of(id.key, id.index,
                                                num_regions());
  return buckets_.at(region).get(id);
}

std::vector<ObjectKey> BackendCluster::keys() const {
  std::vector<ObjectKey> out;
  out.reserve(objects_.size());
  for (const auto& [key, value] : objects_) out.push_back(key);
  return out;
}

void populate_working_set(BackendCluster& backend, std::size_t count,
                          std::size_t object_size, const std::string& prefix) {
  for (std::size_t i = 0; i < count; ++i) {
    const ObjectKey key = prefix + std::to_string(i);
    const Bytes payload = deterministic_payload(key, object_size);
    backend.put_object(key, BytesView(payload));
  }
}

}  // namespace agar::store
