// Stripe repair: reconstruct lost chunks from the surviving ones and
// re-store them — the maintenance path every erasure-coded store needs
// (region loss, bucket corruption, bit rot).
//
// Repair operates directly on the backend's buckets (it is an operator
// tool, not a client): for each object with missing chunks it gathers any
// k survivors, recomputes the missing chunks with the Reed-Solomon codec,
// and writes them back to their home regions.
//
// Repair is reachable online through agard's REPAIR control command
// (daemon/service.cpp), which runs this scan against a route's backend
// between requests; routes must store chunk bytes (verify=true) for the
// scan to see anything. Charging repair bandwidth to the simulated
// timeline (competing with reads) remains with the read-write workload
// item in ROADMAP.md.
#pragma once

#include <vector>

#include "store/backend.hpp"

namespace agar::store {

struct RepairReport {
  std::size_t objects_scanned = 0;
  std::size_t objects_damaged = 0;    ///< at least one chunk missing
  std::size_t objects_repaired = 0;   ///< fully restored
  std::size_t objects_unrecoverable = 0;  ///< fewer than k survivors
  std::size_t chunks_rebuilt = 0;
};

/// Repair one object. Returns true if the object is fully intact after the
/// call (including "was never damaged").
bool repair_object(BackendCluster& backend, const ObjectKey& key,
                   RepairReport* report = nullptr);

/// Scan every object and repair whatever is damaged.
[[nodiscard]] RepairReport repair_all(BackendCluster& backend);

/// Chunk indices of `key` currently missing from their buckets.
[[nodiscard]] std::vector<ChunkIndex> missing_chunks(
    const BackendCluster& backend, const ObjectKey& key);

}  // namespace agar::store
