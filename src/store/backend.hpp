// The erasure-coded backend cluster: one bucket per region plus the
// placement policy and codec parameters that define the stripe layout.
//
// Writing an object encodes it with Reed-Solomon and distributes the k+m
// chunks round-robin over the regional buckets, exactly like Fig. 1 of the
// paper (6 regions, RS(9,3), two chunks per region).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "ec/object_codec.hpp"
#include "ec/placement.hpp"
#include "store/bucket.hpp"

namespace agar::store {

/// Location of one chunk: stripe index + region.
struct ChunkLocation {
  ChunkIndex index = 0;
  RegionId region = kInvalidRegion;
};

/// Per-object metadata the backend exposes (what a real deployment would
/// keep in a metadata service).
struct ObjectInfo {
  std::size_t object_size = 0;
  std::size_t chunk_size = 0;
  std::vector<ChunkLocation> locations;  // all k + m chunks
};

class BackendCluster {
 public:
  BackendCluster(std::size_t num_regions, ec::CodecParams codec_params,
                 std::shared_ptr<const ec::Placement> placement);

  [[nodiscard]] std::size_t num_regions() const { return buckets_.size(); }
  [[nodiscard]] const ec::ObjectCodec& codec() const { return codec_; }
  [[nodiscard]] const ec::Placement& placement() const { return *placement_; }

  /// Encode `data` and store its chunks across the regional buckets.
  void put_object(const ObjectKey& key, BytesView data);

  /// Register an object's metadata without materializing chunk payloads.
  /// Used by latency-only experiments where no real bytes move; get_chunk
  /// on such an object returns nullopt.
  void register_object(const ObjectKey& key, std::size_t object_size);

  /// True if the object has been written.
  [[nodiscard]] bool has_object(const ObjectKey& key) const;

  /// Stripe layout for an object. Throws std::out_of_range if unknown.
  [[nodiscard]] ObjectInfo object_info(const ObjectKey& key) const;

  /// Fetch one chunk payload from its region's bucket. Shares the stored
  /// buffer (refcount bump); never copies the bytes.
  [[nodiscard]] std::optional<SharedBytes> get_chunk(const ChunkId& id) const;

  /// Direct bucket access (tests, repair tooling).
  [[nodiscard]] Bucket& bucket(RegionId r) { return buckets_.at(r); }
  [[nodiscard]] const Bucket& bucket(RegionId r) const {
    return buckets_.at(r);
  }

  [[nodiscard]] std::size_t num_objects() const { return objects_.size(); }
  [[nodiscard]] std::vector<ObjectKey> keys() const;

 private:
  struct StoredObject {
    std::size_t object_size = 0;
    std::size_t chunk_size = 0;
  };

  ec::ObjectCodec codec_;
  std::shared_ptr<const ec::Placement> placement_;
  std::vector<Bucket> buckets_;
  std::unordered_map<ObjectKey, StoredObject> objects_;
};

/// Populate the backend with the paper's working set: `count` objects named
/// "<prefix>0".."<prefix>N-1", each `object_size` bytes of deterministic
/// pseudo-random payload (300 x 1 MB in the paper).
void populate_working_set(BackendCluster& backend, std::size_t count,
                          std::size_t object_size,
                          const std::string& prefix = "object");

}  // namespace agar::store
