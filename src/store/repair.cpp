#include "store/repair.hpp"

namespace agar::store {

std::vector<ChunkIndex> missing_chunks(const BackendCluster& backend,
                                       const ObjectKey& key) {
  std::vector<ChunkIndex> missing;
  const ObjectInfo info = backend.object_info(key);
  for (const auto& loc : info.locations) {
    if (!backend.bucket(loc.region).contains(ChunkId{key, loc.index})) {
      missing.push_back(loc.index);
    }
  }
  return missing;
}

bool repair_object(BackendCluster& backend, const ObjectKey& key,
                   RepairReport* report) {
  RepairReport local;
  RepairReport& r = report ? *report : local;
  ++r.objects_scanned;

  const auto missing = missing_chunks(backend, key);
  if (missing.empty()) return true;
  ++r.objects_damaged;

  // Gather the survivors.
  const ObjectInfo info = backend.object_info(key);
  std::vector<std::pair<std::uint32_t, BytesView>> survivors;
  for (const auto& loc : info.locations) {
    const auto bytes = backend.bucket(loc.region).get(ChunkId{key, loc.index});
    if (bytes.has_value()) survivors.emplace_back(loc.index, *bytes);
  }
  const std::size_t k = backend.codec().k();
  if (survivors.size() < k) {
    ++r.objects_unrecoverable;
    return false;
  }

  // Rebuild each missing chunk and write it back to its home region.
  // reconstruct_chunk copies survivor views, so writes during the loop are
  // safe: we collect first, then store.
  std::vector<std::pair<ChunkIndex, Bytes>> rebuilt;
  rebuilt.reserve(missing.size());
  for (const ChunkIndex idx : missing) {
    rebuilt.emplace_back(idx,
                         backend.codec().rs().reconstruct_chunk(idx,
                                                                survivors));
  }
  for (auto& [idx, bytes] : rebuilt) {
    const RegionId region = backend.placement().region_of(
        key, idx, backend.num_regions());
    backend.bucket(region).put(ChunkId{key, idx}, std::move(bytes));
    ++r.chunks_rebuilt;
  }
  ++r.objects_repaired;
  return true;
}

RepairReport repair_all(BackendCluster& backend) {
  RepairReport report;
  for (const auto& key : backend.keys()) {
    (void)repair_object(backend, key, &report);
  }
  return report;
}

}  // namespace agar::store
