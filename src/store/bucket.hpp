// An S3-like bucket: durable chunk storage for one region.
//
// Buckets store chunk payloads keyed by ChunkId and keep simple counters so
// tests and reports can observe backend traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/shared_bytes.hpp"
#include "common/types.hpp"

namespace agar::store {

class Bucket {
 public:
  /// Store (or overwrite) one chunk. Accepts Bytes too (adopted by move).
  void put(const ChunkId& id, SharedBytes data);

  /// Fetch a chunk payload; nullopt if absent. The returned handle shares
  /// the stored buffer (no copy) and stays valid past eviction/overwrite.
  [[nodiscard]] std::optional<SharedBytes> get(const ChunkId& id) const;

  [[nodiscard]] bool contains(const ChunkId& id) const;
  bool erase(const ChunkId& id);

  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

  /// Observability counters. Atomic (relaxed): the chunk map itself is
  /// read-only during sharded runs, but several shard threads fetch
  /// concurrently and all bump these. Totals are order-independent, so
  /// they stay deterministic for any shard count.
  [[nodiscard]] std::uint64_t gets() const {
    return gets_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t puts() const {
    return puts_.load(std::memory_order_relaxed);
  }

 private:
  std::unordered_map<ChunkId, SharedBytes> chunks_;
  std::size_t total_bytes_ = 0;
  mutable std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> puts_{0};
};

}  // namespace agar::store
