#include "client/backend_strategy.hpp"

#include <algorithm>

namespace agar::client {

std::vector<std::pair<ChunkIndex, RegionId>> chunks_by_expected_latency(
    const ClientContext& ctx, const ObjectKey& key) {
  const store::ObjectInfo info = ctx.backend->object_info(key);
  struct Entry {
    ChunkIndex index;
    RegionId region;
    double expected_ms;
  };
  std::vector<Entry> entries;
  entries.reserve(info.locations.size());
  for (const auto& loc : info.locations) {
    entries.push_back(Entry{
        loc.index, loc.region,
        ctx.network->model().expected_backend_fetch_ms(
            ctx.region, loc.region, info.chunk_size)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.expected_ms != b.expected_ms) return a.expected_ms < b.expected_ms;
    if (a.region != b.region) return a.region < b.region;
    return a.index < b.index;
  });
  std::vector<std::pair<ChunkIndex, RegionId>> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.emplace_back(e.index, e.region);
  return out;
}

ReadResult BackendStrategy::read(const ObjectKey& key) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();

  const auto candidates = chunks_by_expected_latency(ctx_, key);
  const std::vector<std::pair<ChunkIndex, RegionId>> on_path(
      candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k));
  const std::vector<std::pair<ChunkIndex, RegionId>> fallbacks(
      candidates.begin() + static_cast<std::ptrdiff_t>(k), candidates.end());

  const FetchOutcome outcome =
      fetch_parallel(on_path, fallbacks, k, info.chunk_size);

  ReadResult result;
  result.backend_chunks = outcome.fetched.size();
  result.latency_ms = outcome.batch_ms + decode_ms(info.object_size);

  if (ctx_.verify_data) {
    std::vector<ec::Chunk> chunks;
    chunks.reserve(outcome.fetched.size());
    for (const ChunkIndex idx : outcome.fetched) {
      const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
      if (bytes.has_value()) {
        chunks.push_back(ec::Chunk{idx, Bytes(bytes->begin(), bytes->end())});
      }
    }
    result.verified = verify_payload(key, chunks);
  }
  return result;
}

}  // namespace agar::client
