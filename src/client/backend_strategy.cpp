#include "client/backend_strategy.hpp"

#include <algorithm>
#include <memory>

#include "api/registry.hpp"

namespace agar::client {

namespace {

const api::StrategyRegistration kBackend{{
    "backend",
    "Backend",
    "no cache: fetch the k cheapest chunks straight from the backend",
    api::ParamSchema{},
    [](const api::StrategyContext& ctx, const api::ParamMap&) {
      return std::make_unique<BackendStrategy>(*ctx.client);
    },
    {}}};

}  // namespace

std::vector<std::pair<ChunkIndex, RegionId>> chunks_by_expected_latency(
    const ClientContext& ctx, const ObjectKey& key) {
  const store::ObjectInfo info = ctx.backend->object_info(key);
  struct Entry {
    ChunkIndex index;
    RegionId region;
    double expected_ms;
  };
  std::vector<Entry> entries;
  entries.reserve(info.locations.size());
  for (const auto& loc : info.locations) {
    entries.push_back(Entry{
        loc.index, loc.region,
        ctx.network->model().expected_backend_fetch_ms(
            ctx.region, loc.region, info.chunk_size)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.expected_ms != b.expected_ms) return a.expected_ms < b.expected_ms;
    if (a.region != b.region) return a.region < b.region;
    return a.index < b.index;
  });
  std::vector<std::pair<ChunkIndex, RegionId>> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.emplace_back(e.index, e.region);
  return out;
}

void BackendStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();

  const auto candidates = chunks_by_expected_latency(ctx_, key);
  BatchSpec spec;
  spec.on_path.assign(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(k));
  spec.fallbacks.assign(candidates.begin() + static_cast<std::ptrdiff_t>(k),
                        candidates.end());
  spec.want_total = k;
  spec.chunk_bytes = info.chunk_size;
  spec.extra_ms = decode_ms(info.object_size);

  start_fetch_batch(
      key, std::move(spec), ReadResult{},
      [this, key, done = std::move(done)](ReadResult result,
                                          std::vector<ChunkIndex> fetched) {
        result.backend_chunks = fetched.size();
        if (ctx_.verify_data && !result.failed) {
          std::vector<ec::Chunk> chunks;
          chunks.reserve(fetched.size());
          for (const ChunkIndex idx : fetched) {
            const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
            if (bytes.has_value()) {
              chunks.push_back(ec::Chunk{idx, *bytes});  // shared, no copy
            }
          }
          result.verified = verify_payload(key, chunks);
        }
        done(result);
      });
}

}  // namespace agar::client
