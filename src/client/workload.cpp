#include "client/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agar::client {

UniformGenerator::UniformGenerator(std::size_t universe)
    : universe_(universe) {
  if (universe == 0) {
    throw std::invalid_argument("UniformGenerator: empty universe");
  }
}

std::size_t UniformGenerator::next_index(Rng& rng) {
  return static_cast<std::size_t>(rng.next_below(universe_));
}

ZipfianGenerator::ZipfianGenerator(std::size_t universe, double skew)
    : skew_(skew) {
  if (universe == 0) {
    throw std::invalid_argument("ZipfianGenerator: empty universe");
  }
  if (skew < 0.0) {
    throw std::invalid_argument("ZipfianGenerator: negative skew");
  }
  cumulative_.resize(universe);
  double acc = 0.0;
  for (std::size_t i = 0; i < universe; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cumulative_[i] = acc;
  }
  // Normalize to a proper CDF.
  for (auto& c : cumulative_) c /= acc;
  cumulative_.back() = 1.0;
}

std::size_t ZipfianGenerator::next_index(Rng& rng) {
  const double u = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfianGenerator::cdf(std::size_t i) const {
  if (i >= cumulative_.size()) return 1.0;
  return cumulative_[i];
}

double ZipfianGenerator::pmf(std::size_t i) const {
  if (i >= cumulative_.size()) return 0.0;
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

std::string WorkloadSpec::label() const {
  if (kind == Kind::kUniform) return "uniform";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "zipf-%.1f", zipf_skew);
  return buf;
}

std::unique_ptr<KeyGenerator> make_generator(const WorkloadSpec& spec,
                                             std::size_t universe) {
  if (spec.kind == WorkloadSpec::Kind::kUniform) {
    return std::make_unique<UniformGenerator>(universe);
  }
  return std::make_unique<ZipfianGenerator>(universe, spec.zipf_skew);
}

Workload::Workload(WorkloadSpec spec, std::size_t universe,
                   std::uint64_t seed, std::string prefix)
    : spec_(spec),
      generator_(make_generator(spec, universe)),
      rng_(seed),
      prefix_(std::move(prefix)) {
  permutation_.resize(universe);
  for (std::size_t i = 0; i < universe; ++i) permutation_[i] = i;
}

ObjectKey Workload::next_key() {
  return prefix_ + std::to_string(permutation_[generator_->next_index(rng_)]);
}

void Workload::apply(const scenario::PopularityShift& shift) {
  const std::size_t n = permutation_.size();
  if (n == 0) return;
  switch (shift.kind) {
    case scenario::PopularityShift::Kind::kRotate: {
      const std::size_t by = shift.rotate_by % n;
      std::rotate(permutation_.begin(),
                  permutation_.begin() + static_cast<std::ptrdiff_t>(by),
                  permutation_.end());
      break;
    }
    case scenario::PopularityShift::Kind::kReseed: {
      // Deterministic Fisher-Yates from the shift's own seed, so every
      // client in every run sees the same post-shift popularity order.
      Rng rng(shift.seed);
      for (std::size_t i = n - 1; i > 0; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.next_below(i + 1));
        std::swap(permutation_[i], permutation_[j]);
      }
      break;
    }
    case scenario::PopularityShift::Kind::kFlashCrowd: {
      const std::size_t count = std::min(shift.crowd_count, n);
      if (count == 0) break;
      const std::size_t from =
          std::min(shift.crowd_from.value_or(n - count), n - count);
      // Move the block to the front, preserving everyone else's order.
      std::rotate(permutation_.begin(),
                  permutation_.begin() + static_cast<std::ptrdiff_t>(from),
                  permutation_.begin() +
                      static_cast<std::ptrdiff_t>(from + count));
      break;
    }
  }
}

std::uint64_t workload_stream_seed(std::uint64_t run_seed,
                                   std::size_t region_index,
                                   std::size_t client) {
  return run_seed * 1315423911ULL + region_index * 1000000007ULL + client;
}

}  // namespace agar::client
