#include "client/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agar::client {

UniformGenerator::UniformGenerator(std::size_t universe)
    : universe_(universe) {
  if (universe == 0) {
    throw std::invalid_argument("UniformGenerator: empty universe");
  }
}

std::size_t UniformGenerator::next_index(Rng& rng) {
  return static_cast<std::size_t>(rng.next_below(universe_));
}

ZipfianGenerator::ZipfianGenerator(std::size_t universe, double skew)
    : skew_(skew) {
  if (universe == 0) {
    throw std::invalid_argument("ZipfianGenerator: empty universe");
  }
  if (skew < 0.0) {
    throw std::invalid_argument("ZipfianGenerator: negative skew");
  }
  cumulative_.resize(universe);
  double acc = 0.0;
  for (std::size_t i = 0; i < universe; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cumulative_[i] = acc;
  }
  // Normalize to a proper CDF.
  for (auto& c : cumulative_) c /= acc;
  cumulative_.back() = 1.0;
}

std::size_t ZipfianGenerator::next_index(Rng& rng) {
  const double u = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfianGenerator::cdf(std::size_t i) const {
  if (i >= cumulative_.size()) return 1.0;
  return cumulative_[i];
}

double ZipfianGenerator::pmf(std::size_t i) const {
  if (i >= cumulative_.size()) return 0.0;
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

std::string WorkloadSpec::label() const {
  if (kind == Kind::kUniform) return "uniform";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "zipf-%.1f", zipf_skew);
  return buf;
}

std::unique_ptr<KeyGenerator> make_generator(const WorkloadSpec& spec,
                                             std::size_t universe) {
  if (spec.kind == WorkloadSpec::Kind::kUniform) {
    return std::make_unique<UniformGenerator>(universe);
  }
  return std::make_unique<ZipfianGenerator>(universe, spec.zipf_skew);
}

Workload::Workload(WorkloadSpec spec, std::size_t universe,
                   std::uint64_t seed, std::string prefix)
    : spec_(spec),
      generator_(make_generator(spec, universe)),
      rng_(seed),
      prefix_(std::move(prefix)) {}

ObjectKey Workload::next_key() {
  return prefix_ + std::to_string(generator_->next_index(rng_));
}

}  // namespace agar::client
