// Fixed-chunks strategies — LRU-c / LFU-c and friends (paper §V-A): a
// cache that "stores a predefined number of erasure-coded chunks for each
// data record" under a replacement/admission policy. The client always
// designates the c most distant of the k needed chunks (the motivating
// experiment of §II-C caches most distant first); on a read it serves
// designated chunks from the cache when resident, fetches the rest from
// the backend, and (re-)inserts the designated chunks afterwards, letting
// the policy evict.
//
// The policy is any engine in api::Registry<cache::CacheEngine>, looked up
// by name — registering a new engine ("arc", ...) makes it a runnable
// system with zero edits here or in the runner/CLI/bench plumbing.
#pragma once

#include <memory>
#include <string>

#include "cache/cache.hpp"
#include "client/strategy.hpp"

namespace agar::client {

struct FixedChunksParams {
  std::string engine = "lru";         ///< cache-engine registry name
  std::size_t chunks_per_object = 9;  ///< the "c" in LRU-c / LFU-c
  std::size_t cache_capacity_bytes = 10_MB;
  /// Frequency-tracking proxies (the paper's LFU client) sit on the
  /// request path; charge their processing like Agar's 0.5 ms monitor.
  double proxy_overhead_ms = 0.0;
};

class FixedChunksStrategy final : public ReadStrategy {
 public:
  /// `engine` is the already-built cache engine (the api registration
  /// creates it from the registry; tests may inject any engine directly).
  FixedChunksStrategy(ClientContext ctx, FixedChunksParams params,
                      std::unique_ptr<cache::CacheEngine> engine);

  void start_read(const ObjectKey& key, ReadCallback done) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] cache::CacheEngine& engine() { return *cache_; }
  [[nodiscard]] const cache::CacheEngine* cache_engine() const override {
    return cache_.get();
  }
  [[nodiscard]] const FixedChunksParams& params() const { return params_; }

 private:
  FixedChunksParams params_;
  std::unique_ptr<cache::CacheEngine> cache_;
};

}  // namespace agar::client
