// LRU-c / LFU-c strategies (paper §V-A): a cache that "stores a predefined
// number of erasure-coded chunks for each data record" under a classical
// replacement policy. The client always designates the c most distant of
// the k needed chunks (the motivating experiment of §II-C caches most
// distant first); on a read it serves designated chunks from the cache when
// resident, fetches the rest from the backend, and (re-)inserts the
// designated chunks afterwards, letting the policy evict.
#pragma once

#include <memory>

#include "cache/cache.hpp"
#include "client/strategy.hpp"

namespace agar::client {

enum class Policy { kLru, kLfu, kTinyLfu };

struct FixedChunksParams {
  Policy policy = Policy::kLru;
  std::size_t chunks_per_object = 9;  ///< the "c" in LRU-c / LFU-c
  std::size_t cache_capacity_bytes = 10_MB;
  /// The paper's LFU client adds a frequency-tracking proxy on the request
  /// path; charge its processing like the Agar request monitor's 0.5 ms.
  double proxy_overhead_ms = 0.0;
};

class FixedChunksStrategy final : public ReadStrategy {
 public:
  FixedChunksStrategy(ClientContext ctx, FixedChunksParams params);

  void start_read(const ObjectKey& key, ReadCallback done) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] cache::CacheEngine& engine() { return *cache_; }
  [[nodiscard]] const FixedChunksParams& params() const { return params_; }

 private:
  FixedChunksParams params_;
  std::unique_ptr<cache::CacheEngine> cache_;
};

}  // namespace agar::client
