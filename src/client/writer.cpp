#include "client/writer.hpp"

#include <stdexcept>

namespace agar::client {

WriterClient::WriterClient(WriterContext ctx,
                           paxos::CoherenceCoordinator* coherence)
    : ctx_(ctx), coherence_(coherence) {
  if (ctx_.backend == nullptr || ctx_.network == nullptr) {
    throw std::invalid_argument("WriterClient: null backend/network");
  }
}

WriteResult WriterClient::write(const ObjectKey& key, BytesView data) {
  ++writes_;
  WriteResult result;
  store::BackendCluster& backend = *ctx_.backend;

  // Encode cost: same CPU model as decode (symmetric GF math).
  result.latency_ms += ctx_.encode_ms_per_mb *
                       static_cast<double>(data.size()) /
                       static_cast<double>(1_MB);

  // Data path: upload all k+m chunks in parallel; completion when the
  // slowest upload lands.
  const std::size_t chunk_bytes = backend.codec().chunk_size(data.size());
  const std::size_t total = backend.codec().rs().total();
  const std::size_t regions = backend.num_regions();
  std::vector<SimTimeMs> uploads;
  uploads.reserve(total);
  for (ChunkIndex i = 0; i < total; ++i) {
    const RegionId region = backend.placement().region_of(key, i, regions);
    const auto latency =
        ctx_.network->backend_fetch(ctx_.region, region, chunk_bytes);
    if (!latency.has_value()) {
      // A region is down: the stripe cannot be fully placed. Real systems
      // would re-place or queue repair; we fail the write.
      return result;
    }
    uploads.push_back(*latency);
  }
  result.latency_ms += sim::Network::parallel_batch_ms(uploads);

  // Durably store the bytes, or just refresh metadata in latency-only mode.
  if (ctx_.store_payloads) {
    backend.put_object(key, data);
  } else {
    backend.register_object(key, data.size());
  }

  // Coordination: serialize the write and invalidate stale cache entries.
  if (coherence_ != nullptr) {
    const auto commit = coherence_->commit_write(ctx_.region, key);
    if (!commit.has_value()) return result;  // no quorum
    result.consensus_ms = *commit;
    result.latency_ms += *commit;
    result.version = coherence_->version(key);
  }
  result.ok = true;
  return result;
}

}  // namespace agar::client
