#include "client/fixed_chunks_strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "cache/lfu_cache.hpp"
#include "cache/lru_cache.hpp"
#include "cache/tinylfu_cache.hpp"
#include "client/backend_strategy.hpp"

namespace agar::client {

namespace {

std::unique_ptr<cache::CacheEngine> make_engine(const FixedChunksParams& p) {
  switch (p.policy) {
    case Policy::kLru:
      return std::make_unique<cache::LruCache>(p.cache_capacity_bytes);
    case Policy::kLfu:
      return std::make_unique<cache::LfuCache>(p.cache_capacity_bytes);
    case Policy::kTinyLfu:
      return std::make_unique<cache::TinyLfuCache>(p.cache_capacity_bytes);
  }
  throw std::invalid_argument("FixedChunksStrategy: unknown policy");
}

}  // namespace

FixedChunksStrategy::FixedChunksStrategy(ClientContext ctx,
                                         FixedChunksParams params)
    : ReadStrategy(ctx), params_(params), cache_(make_engine(params)) {
  if (params_.chunks_per_object == 0) {
    throw std::invalid_argument(
        "FixedChunksStrategy: chunks_per_object must be >= 1");
  }
}

std::string FixedChunksStrategy::name() const {
  std::string base;
  switch (params_.policy) {
    case Policy::kLru: base = "LRU"; break;
    // "ev" = eviction-driven; the paper's LFU baseline (periodic static
    // configuration) lives in LfuConfigStrategy and owns the "LFU-" name.
    case Policy::kLfu: base = "LFUev"; break;
    case Policy::kTinyLfu: base = "TinyLFU"; break;
  }
  return base + "-" + std::to_string(params_.chunks_per_object);
}

ReadResult FixedChunksStrategy::read(const ObjectKey& key) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();
  const std::size_t c = std::min(params_.chunks_per_object, k);

  // Candidates cheapest-first; the k cheapest are the needed set, of which
  // the c most distant (the tail) are the designated cache-resident chunks.
  const auto candidates = chunks_by_expected_latency(ctx_, key);
  std::vector<std::pair<ChunkIndex, RegionId>> needed(
      candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k));
  const std::vector<std::pair<ChunkIndex, RegionId>> fallbacks(
      candidates.begin() + static_cast<std::ptrdiff_t>(k), candidates.end());
  // designated = last c of `needed` (most distant of the needed chunks).
  const std::size_t designated_begin = k - c;

  ReadResult result;
  std::vector<SimTimeMs> cache_latencies;
  std::vector<std::pair<ChunkIndex, RegionId>> on_path;
  std::vector<ec::Chunk> collected;  // verify mode

  for (std::size_t i = 0; i < needed.size(); ++i) {
    const auto& [idx, region] = needed[i];
    const bool designated = i >= designated_begin;
    if (designated) {
      const std::string ck = ChunkId{key, idx}.cache_key();
      const auto hit = cache_->get(ck);
      if (hit.has_value()) {
        cache_latencies.push_back(ctx_.network->cache_fetch(info.chunk_size));
        ++result.cache_chunks;
        if (ctx_.verify_data) {
          collected.push_back(ec::Chunk{idx, Bytes(hit->begin(), hit->end())});
        }
        continue;
      }
    }
    on_path.emplace_back(idx, region);
  }

  const FetchOutcome outcome = fetch_parallel(
      on_path, fallbacks, k - result.cache_chunks, info.chunk_size);
  result.backend_chunks = outcome.fetched.size();

  result.latency_ms =
      std::max(sim::Network::parallel_batch_ms(cache_latencies),
               outcome.batch_ms) +
      decode_ms(info.object_size) + params_.proxy_overhead_ms;
  result.full_hit = result.cache_chunks == k;
  result.partial_hit = result.cache_chunks > 0;

  // Populate: (re-)insert the designated chunks. Writes happen on a
  // separate thread pool in the paper's client — no latency charged.
  for (std::size_t i = designated_begin; i < needed.size(); ++i) {
    const ChunkIndex idx = needed[i].first;
    const std::string ck = ChunkId{key, idx}.cache_key();
    if (cache_->contains(ck)) continue;  // hit earlier; recency refreshed
    Bytes payload;
    if (ctx_.verify_data) {
      const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
      if (!bytes.has_value()) continue;
      payload.assign(bytes->begin(), bytes->end());
    } else {
      payload.assign(info.chunk_size, 0);
    }
    cache_->put(ck, std::move(payload));
  }

  if (ctx_.verify_data) {
    for (const ChunkIndex idx : outcome.fetched) {
      const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
      if (bytes.has_value()) {
        collected.push_back(ec::Chunk{idx, Bytes(bytes->begin(), bytes->end())});
      }
    }
    result.verified = verify_payload(key, collected);
  }
  return result;
}

}  // namespace agar::client
