#include "client/fixed_chunks_strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "cache/lfu_cache.hpp"
#include "cache/lru_cache.hpp"
#include "cache/tinylfu_cache.hpp"
#include "client/backend_strategy.hpp"

namespace agar::client {

namespace {

std::unique_ptr<cache::CacheEngine> make_engine(const FixedChunksParams& p) {
  switch (p.policy) {
    case Policy::kLru:
      return std::make_unique<cache::LruCache>(p.cache_capacity_bytes);
    case Policy::kLfu:
      return std::make_unique<cache::LfuCache>(p.cache_capacity_bytes);
    case Policy::kTinyLfu:
      return std::make_unique<cache::TinyLfuCache>(p.cache_capacity_bytes);
  }
  throw std::invalid_argument("FixedChunksStrategy: unknown policy");
}

}  // namespace

FixedChunksStrategy::FixedChunksStrategy(ClientContext ctx,
                                         FixedChunksParams params)
    : ReadStrategy(ctx), params_(params), cache_(make_engine(params)) {
  if (params_.chunks_per_object == 0) {
    throw std::invalid_argument(
        "FixedChunksStrategy: chunks_per_object must be >= 1");
  }
}

std::string FixedChunksStrategy::name() const {
  std::string base;
  switch (params_.policy) {
    case Policy::kLru: base = "LRU"; break;
    // "ev" = eviction-driven; the paper's LFU baseline (periodic static
    // configuration) lives in LfuConfigStrategy and owns the "LFU-" name.
    case Policy::kLfu: base = "LFUev"; break;
    case Policy::kTinyLfu: base = "TinyLFU"; break;
  }
  return base + "-" + std::to_string(params_.chunks_per_object);
}

void FixedChunksStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();
  const std::size_t c = std::min(params_.chunks_per_object, k);

  // Candidates cheapest-first; the k cheapest are the needed set, of which
  // the c most distant (the tail) are the designated cache-resident chunks.
  const auto candidates = chunks_by_expected_latency(ctx_, key);
  std::vector<std::pair<ChunkIndex, RegionId>> needed(
      candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k));
  // designated = last c of `needed` (most distant of the needed chunks).
  const std::size_t designated_begin = k - c;

  ReadResult partial;
  std::vector<SimTimeMs> cache_latencies;
  auto collected = std::make_shared<std::vector<ec::Chunk>>();  // verify mode
  auto designated = std::make_shared<std::vector<ChunkIndex>>();

  BatchSpec spec;
  spec.fallbacks.assign(candidates.begin() + static_cast<std::ptrdiff_t>(k),
                        candidates.end());
  for (std::size_t i = 0; i < needed.size(); ++i) {
    const auto& [idx, region] = needed[i];
    if (i >= designated_begin) {
      designated->push_back(idx);
      const std::string ck = ChunkId{key, idx}.cache_key();
      const auto hit = cache_->get(ck);
      if (hit.has_value()) {
        cache_latencies.push_back(ctx_.network->cache_fetch(info.chunk_size));
        ++partial.cache_chunks;
        if (ctx_.verify_data) {
          collected->push_back(ec::Chunk{idx, *hit});  // shared, no copy
        }
        continue;
      }
    }
    spec.on_path.emplace_back(idx, region);
  }

  spec.want_total = k - partial.cache_chunks;
  spec.chunk_bytes = info.chunk_size;
  spec.cache_arm_ms = cache_latencies.empty()
                          ? -1.0
                          : sim::Network::parallel_batch_ms(cache_latencies);
  spec.extra_ms = decode_ms(info.object_size) + params_.proxy_overhead_ms;

  start_fetch_batch(
      key, std::move(spec), partial,
      [this, key, k, info, collected, designated,
       done = std::move(done)](ReadResult result,
                               std::vector<ChunkIndex> fetched) {
        result.backend_chunks = fetched.size();
        result.full_hit = result.cache_chunks == k;
        result.partial_hit = result.cache_chunks > 0;

        // Populate: (re-)insert the designated chunks. Writes happen on a
        // separate thread pool in the paper's client — no latency charged.
        for (const ChunkIndex idx : *designated) {
          const std::string ck = ChunkId{key, idx}.cache_key();
          if (cache_->contains(ck)) continue;  // hit earlier; recency kept
          SharedBytes payload = population_payload(key, idx, info.chunk_size);
          if (ctx_.verify_data && payload.empty()) continue;
          cache_->put(ck, std::move(payload));
        }

        if (ctx_.verify_data) {
          for (const ChunkIndex idx : fetched) {
            const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
            if (bytes.has_value()) {
              collected->push_back(ec::Chunk{idx, *bytes});
            }
          }
          result.verified = verify_payload(key, *collected);
        }
        done(result);
      });
}

}  // namespace agar::client
