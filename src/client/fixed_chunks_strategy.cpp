#include "client/fixed_chunks_strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "api/registry.hpp"
#include "client/backend_strategy.hpp"

namespace agar::client {

namespace {

/// THE fixed-chunks label derivation: engine display stem + "-" + c. Used
/// by both the registry label fns and FixedChunksStrategy::name() so the
/// two can never drift apart.
std::string fixed_chunks_label(const std::string& engine_name,
                               std::size_t chunks) {
  const auto& engines = api::EngineRegistry::instance();
  const std::string stem = engines.contains(engine_name)
                               ? engines.at(engine_name).display
                               : engine_name;
  return stem + "-" + std::to_string(chunks);
}

}  // namespace

FixedChunksStrategy::FixedChunksStrategy(
    ClientContext ctx, FixedChunksParams params,
    std::unique_ptr<cache::CacheEngine> engine)
    : ReadStrategy(ctx), params_(std::move(params)), cache_(std::move(engine)) {
  if (params_.chunks_per_object == 0) {
    throw std::invalid_argument(
        "FixedChunksStrategy: chunks_per_object must be >= 1");
  }
  if (cache_ == nullptr) {
    throw std::invalid_argument("FixedChunksStrategy: null cache engine");
  }
}

std::string FixedChunksStrategy::name() const {
  return fixed_chunks_label(params_.engine, params_.chunks_per_object);
}

void FixedChunksStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();
  const std::size_t c = std::min(params_.chunks_per_object, k);

  // Candidates cheapest-first; the k cheapest are the needed set, of which
  // the c most distant (the tail) are the designated cache-resident chunks.
  const auto candidates = chunks_by_expected_latency(ctx_, key);
  std::vector<std::pair<ChunkIndex, RegionId>> needed(
      candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k));
  // designated = last c of `needed` (most distant of the needed chunks).
  const std::size_t designated_begin = k - c;

  ReadResult partial;
  std::vector<SimTimeMs> cache_latencies;
  auto collected = std::make_shared<std::vector<ec::Chunk>>();  // verify mode
  auto designated = std::make_shared<std::vector<ChunkIndex>>();

  BatchSpec spec;
  spec.fallbacks.assign(candidates.begin() + static_cast<std::ptrdiff_t>(k),
                        candidates.end());
  for (std::size_t i = 0; i < needed.size(); ++i) {
    const auto& [idx, region] = needed[i];
    if (i >= designated_begin) {
      designated->push_back(idx);
      const std::string ck = ChunkId{key, idx}.cache_key();
      const auto hit = cache_->get(ck);
      if (hit.has_value()) {
        cache_latencies.push_back(ctx_.network->cache_fetch(info.chunk_size));
        ++partial.cache_chunks;
        if (ctx_.verify_data) {
          collected->push_back(ec::Chunk{idx, *hit});  // shared, no copy
        }
        continue;
      }
    }
    spec.on_path.emplace_back(idx, region);
  }

  spec.want_total = k - partial.cache_chunks;
  spec.chunk_bytes = info.chunk_size;
  spec.cache_arm_ms = cache_latencies.empty()
                          ? -1.0
                          : sim::Network::parallel_batch_ms(cache_latencies);
  spec.extra_ms = decode_ms(info.object_size) + params_.proxy_overhead_ms;

  start_fetch_batch(
      key, std::move(spec), partial,
      [this, key, k, info, collected, designated,
       done = std::move(done)](ReadResult result,
                               std::vector<ChunkIndex> fetched) {
        result.backend_chunks = fetched.size();
        result.full_hit = result.cache_chunks == k;
        result.partial_hit = result.cache_chunks > 0;

        // Populate: (re-)insert the designated chunks. Writes happen on a
        // separate thread pool in the paper's client — no latency charged.
        for (const ChunkIndex idx : *designated) {
          const std::string ck = ChunkId{key, idx}.cache_key();
          if (cache_->contains(ck)) continue;  // hit earlier; recency kept
          SharedBytes payload = population_payload(key, idx, info.chunk_size);
          if (ctx_.verify_data && payload.empty()) continue;
          cache_->put(ck, std::move(payload));
        }

        if (ctx_.verify_data && !result.failed) {
          for (const ChunkIndex idx : fetched) {
            const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
            if (bytes.has_value()) {
              collected->push_back(ec::Chunk{idx, *bytes});
            }
          }
          result.verified = verify_payload(key, *collected);
        }
        done(result);
      });
}

// ----------------------------------------------------------- registration

namespace {

/// Shared factory body: build the named engine through the engine registry
/// and wrap it in a fixed-chunks strategy. The on-path proxy cost defaults
/// to what the engine's registration declares (0 for plain LRU, 0.5 ms for
/// the frequency-tracking policies, per §V-A).
std::unique_ptr<ReadStrategy> make_fixed_chunks(
    const api::StrategyContext& ctx, const api::ParamMap& params,
    const std::string& engine_name) {
  const auto& engines = api::EngineRegistry::instance();
  const auto& entry = engines.at(engine_name);

  FixedChunksParams p;
  p.engine = engine_name;
  p.chunks_per_object = params.get_size("chunks", 9);
  p.cache_capacity_bytes = params.get_size("cache_bytes", 10_MB);
  p.proxy_overhead_ms = params.get_double(
      "proxy_ms", entry.schema.default_double("proxy_ms", 0.0));

  auto engine = engines.create(
      engine_name, api::EngineContext{p.cache_capacity_bytes}, params);
  return std::make_unique<FixedChunksStrategy>(*ctx.client, std::move(p),
                                               std::move(engine));
}

const api::ParamSchema kFixedChunksSchema{{
    {"engine", api::ParamType::kString, "lru", "cache-engine registry name"},
    {"chunks", api::ParamType::kSize, "9",
     "chunks cached per object (the c in LRU-c)"},
    {"cache_bytes", api::ParamType::kSize, "10MB", "cache capacity"},
    {"proxy_ms", api::ParamType::kDouble, "",
     "on-path proxy cost in ms (default: the engine's declared cost)"},
}};

const api::StrategyRegistration kFixedChunks{{
    "fixed-chunks",
    "FixedChunks",
    "cache c designated chunks per object under any registered engine",
    kFixedChunksSchema,
    [](const api::StrategyContext& ctx, const api::ParamMap& params) {
      return make_fixed_chunks(ctx, params,
                               params.get_string("engine", "lru"));
    },
    [](const api::ParamMap& params) {
      return fixed_chunks_label(params.get_string("engine", "lru"),
                                params.get_size("chunks", 9));
    }}};

// The baseline-strength ablation's eviction-driven LFU: the plain LFU
// *engine* under fixed-chunks semantics. ("lfu" the *system* is the
// paper's periodic frequency-proxy baseline in LfuConfigStrategy.)
const api::StrategyRegistration kLfuEviction{{
    "lfu-eviction",
    "LFUev",
    "fixed-chunks cache with eviction-driven (instant-adaptation) LFU",
    api::ParamSchema{{
        {"chunks", api::ParamType::kSize, "9", "chunks cached per object"},
        {"cache_bytes", api::ParamType::kSize, "10MB", "cache capacity"},
        {"proxy_ms", api::ParamType::kDouble, "0.5",
         "frequency-tracking proxy cost on the read path"},
    }},
    [](const api::StrategyContext& ctx, const api::ParamMap& params) {
      return make_fixed_chunks(ctx, params, "lfu");
    },
    [](const api::ParamMap& params) {
      return fixed_chunks_label("lfu", params.get_size("chunks", 9));
    }}};

}  // namespace

}  // namespace agar::client
