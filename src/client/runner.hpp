// Experiment runner: wires a full deployment (topology, network, backend,
// working set) to a read strategy and replays the paper's evaluation
// methodology — N runs x M reads issued by closed-loop clients on the
// discrete-event simulator, with Agar/periodic reconfiguration running on
// the same virtual timeline (paper §V-A: 5 runs, 1,000 reads per run, 2
// YCSB clients per instance, 30 s reconfiguration period).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <map>
#include <vector>

#include "api/param_map.hpp"
#include "cache/cache.hpp"
#include "client/strategy.hpp"
#include "client/workload.hpp"
#include "ec/reed_solomon.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"
#include "stats/histogram.hpp"
#include "store/backend.hpp"

namespace agar::client {

/// Everything needed to stand up the simulated storage system.
struct DeploymentConfig {
  std::size_t num_objects = 300;       ///< paper: 300 objects
  std::size_t object_size_bytes = 1_MB;///< paper: 1 MB each
  ec::CodecParams codec{};             ///< paper: RS(9, 3)
  sim::LatencyModelParams latency{};
  bool per_key_placement_offset = false;
  std::uint64_t seed = 42;
  bool store_payloads = true;  ///< false skips payload bytes (bench speed)
};

/// An instantiated deployment. Address-stable (members referenced across
/// components), hence non-copyable and heap-held parts.
class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& config);

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] const sim::Topology& topology() const { return *topology_; }
  [[nodiscard]] sim::Network& network() { return *network_; }
  [[nodiscard]] store::BackendCluster& backend() { return *backend_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }

  /// Partition the deployment for lane-parallel runs: one client region per
  /// lane. Lane 0 keeps the primary network (and the backend's codec), so
  /// a one-lane run is bit-for-bit the unpartitioned deployment; every
  /// further lane gets its own Network (own latency RNG stream, own wire
  /// and FIFO state) and its own codec clone (own decode-plan cache) so
  /// shard threads never share mutable simulation state.
  void bind_lanes(const std::vector<RegionId>& lane_regions);
  [[nodiscard]] std::size_t num_lanes() const {
    return std::max<std::size_t>(lane_regions_.size(), 1);
  }
  [[nodiscard]] sim::Network& lane_network(std::size_t lane) {
    return lane == 0 ? *network_ : *lane_networks_[lane - 1];
  }
  [[nodiscard]] const ec::ObjectCodec& lane_codec(std::size_t lane) const {
    return lane == 0 ? backend_->codec() : *lane_codecs_[lane - 1];
  }

  /// Network serving `region`'s strategy: its lane's partition when lanes
  /// are bound, else the shared primary network.
  [[nodiscard]] sim::Network& network_for(RegionId region) {
    return lane_network(lane_of(region));
  }
  /// Per-lane decode codec for `region`, or null when the shared backend
  /// codec is safe (single lane / lanes never bound).
  [[nodiscard]] const ec::ObjectCodec* codec_override_for(RegionId region) {
    const std::size_t lane = lane_of(region);
    return lane == 0 ? nullptr : lane_codecs_[lane - 1].get();
  }

 private:
  [[nodiscard]] std::size_t lane_of(RegionId region) const {
    for (std::size_t i = 0; i < lane_regions_.size(); ++i) {
      if (lane_regions_[i] == region) return i;
    }
    return 0;
  }

  DeploymentConfig config_;
  std::unique_ptr<sim::Topology> topology_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<store::BackendCluster> backend_;
  std::vector<RegionId> lane_regions_;
  std::vector<std::unique_ptr<sim::Network>> lane_networks_;   // lanes 1..
  std::vector<std::unique_ptr<ec::ObjectCodec>> lane_codecs_;  // lanes 1..
};

struct ExperimentConfig {
  DeploymentConfig deployment{};
  WorkloadSpec workload = WorkloadSpec::zipfian(1.1);
  RegionId client_region = sim::region::kFrankfurt;
  /// Client populations in multiple regions (one strategy instance — for
  /// Agar, one AgarNode — per region). Empty means {client_region}.
  std::vector<RegionId> client_regions;
  std::size_t ops_per_run = 1000;  ///< paper: 1,000 reads (total, all regions)
  std::size_t runs = 5;            ///< paper: averages of 5 runs
  std::size_t num_clients = 2;     ///< closed-loop clients per region
  /// Open-loop mode: > 0 switches from closed-loop clients to a Poisson
  /// arrival process with this many reads/second per region. Reads overlap
  /// freely (no client blocks waiting for its previous read).
  double arrival_rate_per_s = 0.0;
  SimTimeMs reconfig_period_ms = 30'000.0;
  double decode_ms_per_mb = 10.0;
  bool verify_data = false;
  /// Per-destination-region cap on concurrent backend fetches (0 =
  /// unlimited). Contention beyond the cap queues FIFO on the network.
  std::size_t max_outstanding_per_region = 64;
  /// Candidate option weights for Agar; the paper enumerates {1,3,5,7,9}.
  std::vector<std::size_t> agar_candidate_weights = {1, 3, 5, 7, 9};
  /// Fault-tolerant fetch policy by registry name ("none", "retry",
  /// "hedge"). "none" keeps the historical fail-fast wire path — no policy
  /// object is created and results are byte-identical to before the knob
  /// existed. Parameters arrive namespaced (`fetch.retries=3`) in
  /// `fetch_params` with the prefix already stripped.
  std::string fetch_policy = "none";
  api::ParamMap fetch_params;
  /// Cooperative cache tier by registry name ("none", "broadcast"). "none"
  /// keeps the historical isolated-cache path — no CollabRuntime is built
  /// and results are byte-identical to before the knob existed. Parameters
  /// arrive namespaced (`collab.period_s=5`) in `collab_params` with the
  /// prefix already stripped.
  std::string collab = "none";
  api::ParamMap collab_params;
  /// Scripted mid-run events (popularity shifts, outages, rate changes,
  /// latency degradation). Empty means a stationary run, as before.
  scenario::Scenario scenario;
  /// Width of the windowed time-series metrics in ms; 0 disables windows
  /// (RunResult::windows stays empty, output byte-identical to before).
  SimTimeMs metric_window_ms = 0.0;
  /// Worker threads for the sharded simulation engine. Client-region lanes
  /// are spread across this many shards (clamped to the lane count);
  /// results are byte-identical for any value — 1 runs the engine inline.
  std::size_t shards = 1;

  [[nodiscard]] std::vector<RegionId> effective_client_regions() const {
    return client_regions.empty() ? std::vector<RegionId>{client_region}
                                  : client_regions;
  }
};

/// One fixed time window of a run's time series — the unit adaptation is
/// measured in. Latency stats cover successful reads only; failed reads
/// are counted, not averaged in.
struct WindowStats {
  SimTimeMs start_ms = 0.0;
  SimTimeMs end_ms = 0.0;
  std::uint64_t ops = 0;          ///< completions in the window (incl. failed)
  std::uint64_t full_hits = 0;
  std::uint64_t partial_hits = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t degraded_reads = 0;  ///< succeeded off the fallback path
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Cooperative tier (collab=broadcast only; zero otherwise): chunk
  /// fetches served by a peer cache, and reads issued while this region's
  /// learned config epoch was ahead of the applied one.
  std::uint64_t collab_peer_hits = 0;
  std::uint64_t collab_stale_reads = 0;

  [[nodiscard]] double hit_ratio() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(full_hits + partial_hits) /
                          static_cast<double>(ops);
  }
};

/// Outcome of one run.
struct RunResult {
  stats::Histogram latencies;  ///< successful reads only
  std::uint64_t ops = 0;       ///< completed reads, including failed ones
  std::uint64_t full_hits = 0;
  std::uint64_t partial_hits = 0;  ///< at least one chunk from cache
  std::uint64_t verified = 0;
  /// Reads that completed with fewer than k chunks (outage exhausted every
  /// fallback). Not latency samples — the object was unreadable.
  std::uint64_t failed_reads = 0;
  /// Reads that assembled k chunks but not the planned k (a fallback chunk
  /// substituted for a failed arm). Successes, counted in the latency
  /// stats, surfaced separately — graceful degradation at work.
  std::uint64_t degraded_reads = 0;
  cache::CacheStats cache_stats;
  std::size_t cache_used_bytes = 0;
  /// Agar only: configured objects per option weight (Fig. 10 data),
  /// sorted by weight so consumers iterate deterministically.
  std::map<std::size_t, std::size_t> weight_histogram;
  /// Decode-plan cache of the deployment's codec: reconstructions that
  /// found their inverted decode matrix memoized vs had to invert.
  std::uint64_t decode_plan_hits = 0;
  std::uint64_t decode_plan_misses = 0;

  // ------------------------- async pipeline observability (all regions)
  SimTimeMs duration_ms = 0.0;        ///< virtual time of the last completion
  std::uint64_t wire_fetches = 0;     ///< transfers actually put on the wire
  std::uint64_t coalesced_fetches = 0;///< requests joined to in-flight ones
  std::uint64_t queued_fetches = 0;   ///< fetches that waited in a region FIFO
  std::size_t max_queue_depth = 0;    ///< deepest per-region FIFO observed
  std::size_t max_net_in_flight = 0;  ///< peak concurrent wire transfers
  std::size_t max_reads_in_flight = 0;///< peak concurrent reads (open loop)
  std::uint64_t scenario_events_fired = 0;  ///< scripted events applied
  /// Failed wire fetches by mode (all lanes): aborted on the wire by an
  /// outage, failed while queued in a region FIFO, or timed out (gray
  /// drop — the response was lost and discovery took drop_latency_mult×).
  std::uint64_t aborted_on_wire = 0;
  std::uint64_t failed_in_queue = 0;
  std::uint64_t timed_out_fetches = 0;

  // ------------------------- fetch-policy telemetry (zero when fetch=none)
  std::uint64_t fetch_attempts = 0;  ///< wire attempts incl. retries/hedges
  std::uint64_t fetch_timeouts = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_wasted = 0;
  std::uint64_t fetch_exhausted = 0;  ///< fetches that gave up after retries
  /// Per-destination-region fetch success EWMA (1 = healthy), merged
  /// across lanes weighted by sample count. Empty when no policy ran.
  std::vector<double> region_success_ewma;

  // ------------------------- control-plane observability (all regions)
  std::uint64_t reconfigurations = 0;  ///< completed reconfigurations
  double planning_ms = 0.0;            ///< wall-clock spent in the planner
  /// Config churn: configured chunks added / dropped across all
  /// reconfigurations (a stable control plane installs and evicts little).
  std::uint64_t config_chunks_installed = 0;
  std::uint64_t config_chunks_evicted = 0;

  // ------------------------- cooperative cache tier (collab=broadcast)
  /// True when a CollabRuntime ran; all fields below stay zero otherwise
  /// (and the report elides the block, keeping collab=none byte-identical).
  bool collab_active = false;
  std::uint64_t collab_peer_hits = 0;    ///< chunk fetches served by a peer
  std::uint64_t collab_peer_misses = 0;  ///< peer lookups that fell through
  std::uint64_t collab_bytes_from_peers = 0;
  std::uint64_t collab_bytes_from_backend = 0;
  /// Reads issued while a region had learned a newer config epoch than it
  /// had applied (the stale-configuration window the Paxos log bounds).
  std::uint64_t stale_config_reads = 0;
  std::uint64_t paxos_appends = 0;          ///< config-log append attempts
  std::uint64_t paxos_append_failures = 0;  ///< partition/quorum losses
  double paxos_append_p50_ms = 0.0;
  double paxos_append_p99_ms = 0.0;
  std::uint64_t config_epochs = 0;  ///< decided prefix of the config log
  /// Mean pairwise cache-content overlap across regions at run end
  /// (core::OverlapReport::shared_fraction).
  double config_overlap = 0.0;

  /// Windowed time series (metric_window_ms > 0), windows with no
  /// completions included so indices line up with virtual time.
  std::vector<WindowStats> windows;

  [[nodiscard]] double mean_latency_ms() const { return latencies.mean(); }
  [[nodiscard]] double hit_ratio() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(full_hits + partial_hits) /
                          static_cast<double>(ops);
  }
  /// Completed reads per second of virtual time.
  [[nodiscard]] double throughput_ops_per_s() const {
    return duration_ms <= 0.0
               ? 0.0
               : static_cast<double>(ops) / (duration_ms / 1000.0);
  }
};

/// Aggregate over runs.
struct ExperimentResult {
  /// Display label of the system under test. Derived in exactly one place
  /// (the api registries) so tables, bench legends and JSON reports can
  /// never disagree.
  std::string label;
  std::vector<RunResult> runs;

  [[nodiscard]] double mean_latency_ms() const;
  [[nodiscard]] double stddev_of_means() const;
  [[nodiscard]] double hit_ratio() const;       ///< full + partial
  [[nodiscard]] double full_hit_ratio() const;
  [[nodiscard]] double percentile_ms(double q) const;  ///< merged runs
  [[nodiscard]] std::uint64_t total_ops() const;
  [[nodiscard]] double mean_throughput_ops_per_s() const;
  [[nodiscard]] std::uint64_t total_coalesced_fetches() const;
  [[nodiscard]] std::uint64_t total_wire_fetches() const;
  [[nodiscard]] std::uint64_t total_reconfigurations() const;
  [[nodiscard]] double total_planning_ms() const;
  /// Chunks installed + evicted across all runs — the config-churn scalar
  /// planner comparisons report.
  [[nodiscard]] std::uint64_t total_config_churn() const;
};

/// Builds one strategy instance per client region. The runner owns no
/// knowledge of concrete systems — api::make_strategy_factory turns a
/// declarative ExperimentSpec into one of these via the registries, and
/// tests can hand-roll them. `loop` may be null (the synchronous wrapper
/// path); the config passed at call time is the experiment being run.
using StrategyFactory = std::function<std::unique_ptr<ReadStrategy>(
    const ExperimentConfig& config, Deployment& deployment,
    RegionId client_region, sim::EventLoop* loop)>;

/// Run the full experiment (all runs) for one system.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config,
                                              const StrategyFactory& factory,
                                              std::string label = {});

}  // namespace agar::client
