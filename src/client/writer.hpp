// Write-capable client — the §VI extension path. A write:
//   1. erasure-codes the new object value (CPU cost modelled like decode);
//   2. uploads the k+m chunks to their regions in parallel (data path;
//      latency = slowest upload);
//   3. commits an invalidation record through the Paxos-backed coherence
//      coordinator, which serializes concurrent writers and erases stale
//      chunks from every region's cache.
// The acknowledged write latency is data path + consensus commit.
#pragma once

#include "common/types.hpp"
#include "paxos/coherence.hpp"
#include "sim/network.hpp"
#include "store/backend.hpp"

namespace agar::client {

struct WriteResult {
  bool ok = false;
  SimTimeMs latency_ms = 0.0;
  SimTimeMs consensus_ms = 0.0;  ///< portion spent in Paxos
  std::uint64_t version = 0;
};

struct WriterContext {
  store::BackendCluster* backend = nullptr;  ///< mutable: writes store chunks
  sim::Network* network = nullptr;
  RegionId region = 0;
  double encode_ms_per_mb = 10.0;  ///< CPU cost of the RS encode
  /// When true, writes move real bytes into the buckets; otherwise only
  /// metadata is refreshed (latency-only experiments).
  bool store_payloads = true;
};

class WriterClient {
 public:
  /// `coherence` may be null: then writes skip the coordination step
  /// (paper-era behaviour: read-only caches, writes go straight to the
  /// backend and caches serve stale data until evicted).
  WriterClient(WriterContext ctx, paxos::CoherenceCoordinator* coherence);

  /// Write a full object value.
  [[nodiscard]] WriteResult write(const ObjectKey& key, BytesView data);

  [[nodiscard]] std::uint64_t writes_issued() const { return writes_; }

 private:
  WriterContext ctx_;
  paxos::CoherenceCoordinator* coherence_;  // non-owning, may be null
  std::uint64_t writes_ = 0;
};

}  // namespace agar::client
