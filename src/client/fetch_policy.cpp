#include "client/fetch_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"

namespace agar::client {

FetchPolicy::FetchPolicy(sim::Network* network, double ewma_alpha)
    : network_(network) {
  if (network_ == nullptr) {
    throw std::invalid_argument("FetchPolicy: null network");
  }
  const std::size_t regions = network_->topology().num_regions();
  success_.assign(regions, stats::Ewma(ewma_alpha, 1.0));
  samples_.assign(regions, 0);
}

void FetchPolicy::observe(RegionId to, bool success) {
  success_[to].update(success ? 1.0 : 0.0);
  ++samples_[to];
}

// ---------------------------------------------------------------------------
// FaultTolerantFetchPolicy

/// One logical fetch moving through the retry state machine. Held by
/// shared_ptr so timer and wire closures outlive any individual attempt.
/// `epoch` names the current attempt: abandoning an attempt bumps it, so a
/// completion or timer captured under an older epoch finds the mismatch and
/// becomes a no-op — nothing needs to chase down in-flight wire events.
struct FaultTolerantFetchPolicy::Pending {
  RegionId from = 0;
  RegionId to = 0;
  std::size_t bytes = 0;
  FetchCallback cb;
  std::size_t attempt = 0;  // 1-based once start_attempt runs
  std::uint64_t epoch = 0;
  bool done = false;
  bool primary_outstanding = false;
  bool hedge_outstanding = false;
  sim::EventLoop::TimerId timeout_timer = 0;
  sim::EventLoop::TimerId hedge_timer = 0;
};

FaultTolerantFetchPolicy::FaultTolerantFetchPolicy(sim::Network* network,
                                                   std::uint64_t seed,
                                                   FaultTolerantParams params)
    : FetchPolicy(network, params.ewma_alpha), params_(params), rng_(seed) {
  if (params_.timeout_mult <= 0.0 || params_.timeout_min_ms <= 0.0) {
    throw std::invalid_argument(
        "FaultTolerantFetchPolicy: timeout_mult and timeout_min_ms must be "
        "positive");
  }
  if (params_.backoff_ms < 0.0 || params_.backoff_mult < 1.0) {
    throw std::invalid_argument(
        "FaultTolerantFetchPolicy: backoff_ms must be >= 0 and backoff_mult "
        ">= 1");
  }
  if (params_.jitter < 0.0 || params_.jitter >= 1.0) {
    throw std::invalid_argument(
        "FaultTolerantFetchPolicy: jitter must be in [0, 1)");
  }
  if (params_.hedge_after_mult < 0.0) {
    throw std::invalid_argument(
        "FaultTolerantFetchPolicy: hedge_after_mult must be >= 0");
  }
}

sim::EventLoop* FaultTolerantFetchPolicy::loop() const {
  sim::EventLoop* const loop = network_->loop();
  if (loop == nullptr) {
    throw std::logic_error(
        "FaultTolerantFetchPolicy: network has no bound loop");
  }
  return loop;
}

SimTimeMs FaultTolerantFetchPolicy::timeout_ms(const Pending& p) const {
  const SimTimeMs expected =
      network_->model().expected_backend_fetch_ms(p.from, p.to, p.bytes);
  return std::max(params_.timeout_min_ms, params_.timeout_mult * expected);
}

bool FaultTolerantFetchPolicy::begin_fetch(RegionId from, RegionId to,
                                           std::size_t bytes,
                                           FetchCallback cb) {
  auto p = std::make_shared<Pending>();
  p->from = from;
  p->to = to;
  p->bytes = bytes;
  p->cb = std::move(cb);
  start_attempt(p);
  // Always accepted: even a down destination is only *discovered* down
  // after a timeout, so the caller never gets the synchronous refusal the
  // raw network hands out.
  return true;
}

void FaultTolerantFetchPolicy::start_attempt(const std::shared_ptr<Pending>& p) {
  ++p->attempt;
  ++stats_.attempts;
  const std::uint64_t epoch = p->epoch;
  const SimTimeMs timeout = timeout_ms(*p);
  const bool accepted = network_->begin_fetch(
      p->from, p->to, p->bytes, [this, p, epoch](std::optional<SimTimeMs> l) {
        on_wire_result(p, epoch, /*is_hedge=*/false, l);
      });
  p->primary_outstanding = accepted;
  // One-shot timer: fires once, returns false to disarm.
  p->timeout_timer = loop()->schedule_periodic(timeout, [this, p, epoch] {
    on_timeout(p, epoch);
    return false;
  });
  // Hedge only races a request that actually went out; a refused (down)
  // destination has nothing worth duplicating.
  if (accepted && params_.hedge_after_mult > 0.0) {
    const SimTimeMs hedge_delay =
        params_.hedge_after_mult *
        network_->model().expected_backend_fetch_ms(p->from, p->to, p->bytes);
    if (hedge_delay > 0.0 && hedge_delay < timeout) {
      p->hedge_timer = loop()->schedule_periodic(hedge_delay, [this, p, epoch] {
        on_hedge_fire(p, epoch);
        return false;
      });
    }
  }
}

void FaultTolerantFetchPolicy::on_hedge_fire(const std::shared_ptr<Pending>& p,
                                             std::uint64_t epoch) {
  if (p->done || epoch != p->epoch) return;
  p->hedge_timer = 0;
  if (!p->primary_outstanding) return;  // primary already failed; retry path owns it
  const bool accepted = network_->begin_fetch(
      p->from, p->to, p->bytes, [this, p, epoch](std::optional<SimTimeMs> l) {
        on_wire_result(p, epoch, /*is_hedge=*/true, l);
      });
  if (accepted) {
    ++stats_.attempts;
    ++stats_.hedges_issued;
    p->hedge_outstanding = true;
  }
}

void FaultTolerantFetchPolicy::on_wire_result(const std::shared_ptr<Pending>& p,
                                              std::uint64_t epoch,
                                              bool is_hedge,
                                              std::optional<SimTimeMs> latency) {
  if (p->done || epoch != p->epoch) return;  // raced a winner or a timeout
  if (latency.has_value()) {
    if (is_hedge) {
      ++stats_.hedges_won;
    } else if (p->hedge_outstanding) {
      ++stats_.hedges_wasted;  // duplicate still on the wire, now pointless
    }
    observe(p->to, true);
    complete(p, latency);
    return;
  }
  // One arm failed (abort, queue failure, or gray drop). If the other arm
  // is still racing the timeout, let it run; otherwise the attempt is dead.
  if (is_hedge) {
    p->hedge_outstanding = false;
  } else {
    p->primary_outstanding = false;
  }
  if (p->primary_outstanding || p->hedge_outstanding) return;
  abandon_attempt(p);
  attempt_failed(p);
}

void FaultTolerantFetchPolicy::on_timeout(const std::shared_ptr<Pending>& p,
                                          std::uint64_t epoch) {
  if (p->done || epoch != p->epoch) return;
  p->timeout_timer = 0;  // self-disarmed by returning false
  ++stats_.timeouts;
  abandon_attempt(p);
  attempt_failed(p);
}

void FaultTolerantFetchPolicy::abandon_attempt(
    const std::shared_ptr<Pending>& p) {
  ++p->epoch;  // stale wire completions and timer firings become no-ops
  p->primary_outstanding = false;
  p->hedge_outstanding = false;
  sim::EventLoop* const l = loop();
  if (p->timeout_timer != 0) {
    l->cancel(p->timeout_timer);
    p->timeout_timer = 0;
  }
  if (p->hedge_timer != 0) {
    l->cancel(p->hedge_timer);
    p->hedge_timer = 0;
  }
}

void FaultTolerantFetchPolicy::attempt_failed(
    const std::shared_ptr<Pending>& p) {
  observe(p->to, false);
  if (p->attempt > params_.retries) {  // attempts = retries + 1
    ++stats_.exhausted;
    complete(p, std::nullopt);
    return;
  }
  ++stats_.retries;
  const double jitter =
      params_.jitter > 0.0
          ? rng_.uniform(1.0 - params_.jitter, 1.0 + params_.jitter)
          : 1.0;
  const SimTimeMs backoff =
      params_.backoff_ms *
      std::pow(params_.backoff_mult, static_cast<double>(p->attempt - 1)) *
      jitter;
  loop()->schedule_in(backoff, [this, p] {
    if (!p->done) start_attempt(p);
  });
}

void FaultTolerantFetchPolicy::complete(const std::shared_ptr<Pending>& p,
                                        std::optional<SimTimeMs> result) {
  abandon_attempt(p);  // disarm timers; late arrivals drop on the epoch
  p->done = true;
  FetchCallback cb = std::move(p->cb);
  cb(result);
}

// ---------------------------------------------------------------------------
// Registrations

namespace {

FaultTolerantParams params_from(const api::ParamMap& params, bool hedged) {
  FaultTolerantParams out;
  out.timeout_mult = params.get_double("timeout_mult", out.timeout_mult);
  out.timeout_min_ms = params.get_double("timeout_min_ms", out.timeout_min_ms);
  out.retries = params.get_size("retries", out.retries);
  out.backoff_ms = params.get_double("backoff_ms", out.backoff_ms);
  out.backoff_mult = params.get_double("backoff_mult", out.backoff_mult);
  out.jitter = params.get_double("jitter", out.jitter);
  out.hedge_after_mult =
      hedged ? params.get_double("hedge_after_mult", 2.0) : 0.0;
  out.ewma_alpha = params.get_double("ewma_alpha", out.ewma_alpha);
  return out;
}

api::ParamSchema retry_schema(bool hedged) {
  api::ParamSchema schema{{
      {"timeout_mult", api::ParamType::kDouble, "3",
       "per-fetch timeout as a multiple of the expected transfer latency"},
      {"timeout_min_ms", api::ParamType::kDouble, "10",
       "floor on the per-fetch timeout (ms)"},
      {"retries", api::ParamType::kSize, "2",
       "re-issues after the first attempt before giving up"},
      {"backoff_ms", api::ParamType::kDouble, "5",
       "base backoff before the first retry (ms)"},
      {"backoff_mult", api::ParamType::kDouble, "2",
       "backoff growth factor per retry"},
      {"jitter", api::ParamType::kDouble, "0.5",
       "backoff jitter: uniform factor in [1-j, 1+j)"},
      {"ewma_alpha", api::ParamType::kDouble, "0.2",
       "weight of the per-region fetch-success EWMA"},
  }};
  if (hedged) {
    schema.params.push_back(
        {"hedge_after_mult", api::ParamType::kDouble, "2",
         "issue the duplicate after this multiple of the expected latency"});
  }
  return schema;
}

const api::FetchPolicyRegistration kNone{{
    "none",
    "",
    "fail-fast pass-through: no timeouts, retries or hedging (the historical "
    "read path, byte for byte)",
    api::ParamSchema{},
    [](const api::FetchPolicyContext& ctx, const api::ParamMap&) {
      return std::make_unique<PassThroughFetchPolicy>(ctx.network);
    },
    {}}};

const api::FetchPolicyRegistration kRetry{{
    "retry",
    "retry",
    "per-fetch timeout with bounded retries and jittered exponential backoff; "
    "down regions cost a timeout to discover",
    retry_schema(/*hedged=*/false),
    [](const api::FetchPolicyContext& ctx, const api::ParamMap& params) {
      return std::make_unique<FaultTolerantFetchPolicy>(
          ctx.network, ctx.seed, params_from(params, /*hedged=*/false));
    },
    {}}};

const api::FetchPolicyRegistration kHedge{{
    "hedge",
    "hedge",
    "retry policy plus tail hedging: a duplicate request races the laggard "
    "and the first response wins",
    retry_schema(/*hedged=*/true),
    [](const api::FetchPolicyContext& ctx, const api::ParamMap& params) {
      return std::make_unique<FaultTolerantFetchPolicy>(
          ctx.network, ctx.seed, params_from(params, /*hedged=*/true));
    },
    {}}};

}  // namespace

}  // namespace agar::client
