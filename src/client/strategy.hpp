// Read strategies — the four client variants of the paper's evaluation
// (§V-A): Backend (no cache), LRU-c, LFU-c (fixed chunks per object with a
// classic eviction policy), and Agar.
//
// A strategy turns `start_read(key, done)` into events on the simulation
// loop: chunk fetches begin on the network (which enforces per-region
// concurrency limits), duplicate fetches coalesce in the strategy's
// in-flight table, and `done` fires at the virtual time the read completes
// — so concurrent clients genuinely overlap on the timeline. A thin
// synchronous `read(key)` wrapper drives a loop to completion for tests and
// simple callers.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/static_cache.hpp"
#include "client/fetch_policy.hpp"
#include "common/types.hpp"
#include "core/collaboration.hpp"
#include "core/fetch_coordinator.hpp"
#include "core/planner.hpp"
#include "core/read_planner.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "store/backend.hpp"

namespace agar::client {

struct ReadResult {
  SimTimeMs latency_ms = 0.0;
  std::size_t cache_chunks = 0;    ///< chunks served by the local cache
  std::size_t backend_chunks = 0;  ///< chunks fetched from backend regions
  std::size_t coalesced_chunks = 0;///< chunk fetches joined to in-flight ones
  bool full_hit = false;           ///< every chunk came from the cache
  bool partial_hit = false;        ///< at least one chunk came from the cache
  bool verified = false;           ///< payload decoded and checked (verify mode)
  /// Fewer than k chunks could be assembled (outage exhausted every
  /// fallback): the object is unreadable right now. No decode happened;
  /// latency_ms is the time until exhaustion. Runners count these as
  /// failed reads instead of latency samples.
  bool failed = false;
  /// The read completed, but not on its planned path: at least one arm
  /// failed (down region, abort, or an exhausted fetch policy) and a
  /// fallback chunk was decoded instead. These count as successes with
  /// their real (inflated) latency — the paper's motivation for caching
  /// under failure — but are surfaced separately.
  bool degraded = false;
};

/// Shared context every strategy needs.
struct ClientContext {
  const store::BackendCluster* backend = nullptr;
  sim::Network* network = nullptr;
  /// Codec used for client-side decodes (verify mode). Null means the
  /// backend's shared codec; lane-parallel runs install a per-lane clone
  /// so the decode-plan cache is never shared across shard threads.
  const ec::ObjectCodec* codec = nullptr;
  /// Loop that reads run on. May be null: the synchronous wrapper then
  /// spins up a private loop per read (tests, simple examples).
  sim::EventLoop* loop = nullptr;
  RegionId region = 0;
  /// Simulated decode cost: ms per MB of object decoded (CPU time of the
  /// Reed-Solomon decode on the client, paper's clients decode after k
  /// chunks arrive).
  double decode_ms_per_mb = 10.0;
  /// When true, reads move real bytes and RS-decode them; tests use this.
  /// Benches leave it off: latency math is identical, wall-clock far lower.
  bool verify_data = false;
  /// Fault-tolerant fetch wrapper (timeouts/retries/hedging). Null means
  /// the historical fail-fast path: the coordinator talks to the raw
  /// network directly. Shared because the runner also reads its stats.
  std::shared_ptr<FetchPolicy> fetch_policy;
};

class ReadStrategy {
 public:
  /// Completion callback of one read; fires on the loop at the virtual
  /// time the read finishes (last chunk + decode + monitor overhead).
  using ReadCallback = std::function<void(const ReadResult&)>;

  explicit ReadStrategy(ClientContext ctx);
  virtual ~ReadStrategy() = default;

  /// Start one asynchronous read. The strategy issues its chunk fetches as
  /// events and invokes `done` exactly once when the read completes.
  virtual void start_read(const ObjectKey& key, ReadCallback done) = 0;

  /// Thin synchronous wrapper: starts the read and drives the loop until
  /// it completes. With no loop in the context, a private loop serves just
  /// this read (and its trailing population events).
  [[nodiscard]] ReadResult read(const ObjectKey& key);

  [[nodiscard]] virtual std::string name() const = 0;

  /// Hook for periodic work (Agar reconfigurations) on the sim loop. The
  /// base records the loop in the context so reads become events on it.
  virtual void attach_to_loop(sim::EventLoop& loop) { ctx_.loop = &loop; }

  /// Warm-up before measurement starts (latency probes etc.).
  virtual void warm_up() {}

  /// In-flight table: one wire fetch per chunk regardless of how many
  /// concurrent reads/populations want it.
  [[nodiscard]] core::FetchCoordinator& fetch_coordinator() {
    return fetcher_;
  }

  /// The fault-tolerant fetch policy wrapping this strategy's wire fetches,
  /// or null on the fail-fast path (runner telemetry).
  [[nodiscard]] const FetchPolicy* fetch_policy() const {
    return ctx_.fetch_policy.get();
  }

  // ------------------------------------------- cooperative cache tier
  // Installed by collab::CollabRuntime::attach between construction and
  // attach_to_loop; never called on the collab=none path, so the historical
  // wire path stays byte-identical.

  /// Peer-fetch routing: picks the region a wire fetch should actually go
  /// to (the chunk's home region when no peer cache is cheaper).
  using CollabRoute =
      std::function<RegionId(const ChunkId&, RegionId home, std::size_t)>;
  /// Completion accounting for the tier: (target, home, bytes, success).
  using CollabDone =
      std::function<void(RegionId, RegionId, std::size_t, bool)>;

  /// Re-install the coordinator transport with the collab tier on top: the
  /// route picks the target, then the fetch rides the fetch policy (or the
  /// raw network) to it — so retries/hedges/timeouts compose with
  /// redirected transfers, and a failed peer arm falls back through the
  /// strategies' existing degraded-read machinery.
  void enable_collab(CollabRoute route, CollabDone done);

  /// Observer fired after every completed reconfiguration (the collab tier
  /// appends the installed configuration to the Paxos config log). Only
  /// strategies with a periodic control plane ever invoke it.
  void set_reconfigure_observer(std::function<void()> observer) {
    on_reconfigure_ = std::move(observer);
  }

  /// Broadcastable snapshot of this strategy's cache state (configured
  /// chunks + popularity). Default: an empty snapshot — strategies without
  /// a configured cache still participate in the broadcast protocol so
  /// determinism is uniform, they just never attract peer fetches.
  [[nodiscard]] virtual core::PeerInfo collab_info() { return {}; }

  /// Cooperative-planning hooks (merged popularity, peer-aware chunk
  /// costs). Default ignores them — only strategies with a planning
  /// control plane (Agar, under planner.scope=global) forward them.
  virtual void set_collab_hooks(const core::CollabPlannerHooks&) {}

  // ------------------------------------------------ observability hooks
  // The runner snapshots end-of-run state through these instead of
  // dynamic_casting to concrete types, so strategies added through the
  // api registry are observable without runner edits.

  /// The cache engine serving this strategy, if any (null: uncached).
  [[nodiscard]] virtual const cache::CacheEngine* cache_engine() const {
    return nullptr;
  }

  /// Configured objects per option weight (Agar's Fig. 10 data), sorted by
  /// weight; empty for strategies without a weighted configuration.
  [[nodiscard]] virtual std::map<std::size_t, std::size_t>
  config_weight_histogram() const {
    return {};
  }

  /// Control-plane telemetry (reconfiguration count, planner time, config
  /// churn); zeros for strategies without a periodic control plane.
  [[nodiscard]] virtual core::ControlPlaneStats control_plane_stats() const {
    return {};
  }

 protected:
  /// One parallel fetch batch: the backend arms (`on_path`, substituting
  /// `fallbacks` for down regions until `want_total` are in flight) plus an
  /// optional cache arm, completing when every arm has landed and charging
  /// `extra_ms` (decode + monitor) after the last arrival.
  struct BatchSpec {
    std::vector<std::pair<ChunkIndex, RegionId>> on_path;
    std::vector<std::pair<ChunkIndex, RegionId>> fallbacks;
    std::size_t want_total = 0;
    std::size_t chunk_bytes = 0;
    SimTimeMs cache_arm_ms = -1.0;  ///< < 0 means no cache arm
    SimTimeMs extra_ms = 0.0;       ///< decode + monitor, after the batch
  };
  using BatchCallback =
      std::function<void(ReadResult, std::vector<ChunkIndex>)>;

  /// Issue the batch on the loop. `partial` carries the cache-hit counters
  /// already accounted; the callback receives it completed (latency set,
  /// fetched chunk indices attached).
  void start_fetch_batch(const ObjectKey& key, BatchSpec spec,
                         ReadResult partial, BatchCallback done);

  /// Execute a planned read against a configured cache asynchronously:
  /// cache arms and the backend batch in parallel, monitor/proxy overhead
  /// charged after, population per plan off-path. Shared by the Agar
  /// strategy and the paper's periodic-LFU baseline so the two differ only
  /// in their configuration policy.
  void start_plan(const ObjectKey& key, const core::ReadPlan& plan,
                  cache::StaticConfigCache& cache, ReadCallback done);

  /// Decode-cost model.
  [[nodiscard]] double decode_ms(std::size_t object_bytes) const;

  /// Population download as a background event (paper §IV-A: "caching items
  /// implies downloading them a priori"): fetch one chunk from its backend
  /// region through the coalescing table and install it in the cache when
  /// the transfer lands. Off the latency path. No-op if already resident.
  void populate_chunk_async(const ObjectKey& key, ChunkIndex index,
                            cache::CacheEngine& cache);

  /// Synchronous population for loop-less callers (tests drive reconfigure
  /// directly). Returns true if the chunk is resident afterwards.
  bool prefetch_chunk(const ObjectKey& key, ChunkIndex index,
                      cache::CacheEngine& cache);

  /// Payload to install for a populated chunk (in verify mode, a shared
  /// handle to the backend's buffer — no copy).
  [[nodiscard]] SharedBytes population_payload(const ObjectKey& key,
                                               ChunkIndex index,
                                               std::size_t chunk_size) const;

  /// Verify-mode helper: fetch the given chunks' real bytes from the
  /// backend/caches is handled by subclasses; this decodes and checks.
  [[nodiscard]] bool verify_payload(const ObjectKey& key,
                                    const std::vector<ec::Chunk>& chunks) const;

  ClientContext ctx_;
  core::FetchCoordinator fetcher_;
  /// Fired after each completed reconfiguration (collab config log).
  std::function<void()> on_reconfigure_;
  /// Memoized zero buffer for latency-only cache populations: every
  /// populated chunk of one size shares it (refcount bump per put).
  mutable SharedBytes zero_payload_;

 private:
  struct BatchState;
  /// Issue on-path/fallback fetches until `want_total` arms are in flight.
  void batch_issue(const std::shared_ptr<BatchState>& st);
  /// One arm landed (ok) or died (down while queued → try a fallback).
  void batch_arm_done(const std::shared_ptr<BatchState>& st);
};

}  // namespace agar::client
