// Read strategies — the four client variants of the paper's evaluation
// (§V-A): Backend (no cache), LRU-c, LFU-c (fixed chunks per object with a
// classic eviction policy), and Agar.
//
// A strategy turns `read(key)` into a simulated latency plus bookkeeping:
// which chunks came from the cache, whether the read was a full or partial
// hit, and (in verify mode) the actual Reed-Solomon decode of real bytes so
// tests can check end-to-end integrity.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/static_cache.hpp"
#include "common/types.hpp"
#include "core/read_planner.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "store/backend.hpp"

namespace agar::client {

struct ReadResult {
  SimTimeMs latency_ms = 0.0;
  std::size_t cache_chunks = 0;    ///< chunks served by the local cache
  std::size_t backend_chunks = 0;  ///< chunks fetched from backend regions
  bool full_hit = false;           ///< every chunk came from the cache
  bool partial_hit = false;        ///< at least one chunk came from the cache
  bool verified = false;           ///< payload decoded and checked (verify mode)
};

/// Shared context every strategy needs.
struct ClientContext {
  const store::BackendCluster* backend = nullptr;
  sim::Network* network = nullptr;
  RegionId region = 0;
  /// Simulated decode cost: ms per MB of object decoded (CPU time of the
  /// Reed-Solomon decode on the client, paper's clients decode after k
  /// chunks arrive).
  double decode_ms_per_mb = 10.0;
  /// When true, reads move real bytes and RS-decode them; tests use this.
  /// Benches leave it off: latency math is identical, wall-clock far lower.
  bool verify_data = false;
};

class ReadStrategy {
 public:
  explicit ReadStrategy(ClientContext ctx);
  virtual ~ReadStrategy() = default;

  [[nodiscard]] virtual ReadResult read(const ObjectKey& key) = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Hook for periodic work (Agar reconfigurations) on the sim loop.
  virtual void attach_to_loop(sim::EventLoop& loop) { (void)loop; }

  /// Warm-up before measurement starts (latency probes etc.).
  virtual void warm_up() {}

 protected:
  /// Latency of fetching `count` chunks of `chunk_bytes` from the given
  /// regions in parallel. Skips down regions by substituting the next
  /// cheapest live region holding an unused chunk — callers pass the full
  /// candidate list sorted cheapest-first.
  struct FetchOutcome {
    SimTimeMs batch_ms = 0.0;
    std::vector<ChunkIndex> fetched;
  };
  [[nodiscard]] FetchOutcome fetch_parallel(
      const std::vector<std::pair<ChunkIndex, RegionId>>& on_path,
      const std::vector<std::pair<ChunkIndex, RegionId>>& fallbacks,
      std::size_t want_total, std::size_t chunk_bytes);

  /// Decode-cost model.
  [[nodiscard]] double decode_ms(std::size_t object_bytes) const;

  /// Execute a planned read against a configured cache: fetch the cached
  /// chunks and the backend batch in parallel, charge the monitor/proxy
  /// overhead, then perform the plan's population writes off-path. Shared
  /// by the Agar strategy and the paper's periodic-LFU baseline so the two
  /// differ only in their configuration policy.
  [[nodiscard]] ReadResult execute_plan(const ObjectKey& key,
                                        const core::ReadPlan& plan,
                                        cache::StaticConfigCache& cache);

  /// Population prefetch ("caching items implies downloading them a
  /// priori", paper §IV-A): download one configured chunk from its backend
  /// region and install it in the cache. Off the latency path — the
  /// prototype's population thread pool does this after reconfigurations.
  /// Returns true if the chunk is resident afterwards.
  bool prefetch_chunk(const ObjectKey& key, ChunkIndex index,
                      cache::StaticConfigCache& cache);

  /// Verify-mode helper: fetch the given chunks' real bytes from the
  /// backend/caches is handled by subclasses; this decodes and checks.
  [[nodiscard]] bool verify_payload(const ObjectKey& key,
                                    const std::vector<ec::Chunk>& chunks) const;

  ClientContext ctx_;
};

}  // namespace agar::client
