#include "client/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "client/backend_strategy.hpp"

namespace agar::client {

ReadStrategy::ReadStrategy(ClientContext ctx) : ctx_(ctx) {
  if (ctx_.backend == nullptr || ctx_.network == nullptr) {
    throw std::invalid_argument("ReadStrategy: null backend/network");
  }
}

ReadStrategy::FetchOutcome ReadStrategy::fetch_parallel(
    const std::vector<std::pair<ChunkIndex, RegionId>>& on_path,
    const std::vector<std::pair<ChunkIndex, RegionId>>& fallbacks,
    std::size_t want_total, std::size_t chunk_bytes) {
  FetchOutcome out;
  std::vector<SimTimeMs> latencies;
  latencies.reserve(want_total);

  auto try_fetch = [&](const std::pair<ChunkIndex, RegionId>& target) {
    if (out.fetched.size() >= want_total) return;
    const auto latency =
        ctx_.network->backend_fetch(ctx_.region, target.second, chunk_bytes);
    if (!latency.has_value()) return;  // region down; fallback covers it
    latencies.push_back(*latency);
    out.fetched.push_back(target.first);
  };

  for (const auto& t : on_path) try_fetch(t);
  // Failure fallback: pull replacement chunks (typically parity from the
  // regions the planner discarded) until the batch is complete.
  for (const auto& t : fallbacks) {
    if (out.fetched.size() >= want_total) break;
    try_fetch(t);
  }

  out.batch_ms = sim::Network::parallel_batch_ms(latencies);
  return out;
}

double ReadStrategy::decode_ms(std::size_t object_bytes) const {
  return ctx_.decode_ms_per_mb * static_cast<double>(object_bytes) /
         static_cast<double>(1_MB);
}

ReadResult ReadStrategy::execute_plan(const ObjectKey& key,
                                      const core::ReadPlan& plan,
                                      cache::StaticConfigCache& cache) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();

  ReadResult result;
  std::vector<SimTimeMs> cache_latencies;
  std::vector<ec::Chunk> collected;  // verify mode

  // Cache-resident chunks, fetched in parallel with the backend batch.
  for (const ChunkIndex idx : plan.from_cache) {
    const std::string ck = ChunkId{key, idx}.cache_key();
    const auto hit = cache.get(ck);
    if (!hit.has_value()) continue;  // raced with a reconfiguration
    cache_latencies.push_back(ctx_.network->cache_fetch(info.chunk_size));
    ++result.cache_chunks;
    if (ctx_.verify_data) {
      collected.push_back(ec::Chunk{idx, Bytes(hit->begin(), hit->end())});
    }
  }

  // Backend chunks; every other chunk (cheapest-first) is a fallback in
  // case a region is down or a cache entry vanished.
  std::vector<std::pair<ChunkIndex, RegionId>> fallbacks;
  for (const auto& cand : chunks_by_expected_latency(ctx_, key)) {
    const bool planned =
        std::any_of(plan.from_backend.begin(), plan.from_backend.end(),
                    [&](const auto& p) { return p.first == cand.first; }) ||
        std::any_of(plan.from_cache.begin(), plan.from_cache.end(),
                    [&](ChunkIndex i) { return i == cand.first; });
    if (!planned) fallbacks.push_back(cand);
  }
  const FetchOutcome outcome = fetch_parallel(
      plan.from_backend, fallbacks, k - result.cache_chunks, info.chunk_size);
  result.backend_chunks = outcome.fetched.size();

  result.latency_ms =
      std::max(sim::Network::parallel_batch_ms(cache_latencies),
               outcome.batch_ms) +
      decode_ms(info.object_size) + plan.monitor_overhead_ms;
  result.full_hit = result.cache_chunks == k;
  result.partial_hit = result.cache_chunks > 0;

  // Populate the cache per plan (asynchronous in the prototype: a separate
  // thread pool performs the writes, so no latency is charged).
  auto chunk_payload = [&](ChunkIndex idx) {
    Bytes payload;
    if (ctx_.verify_data) {
      const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
      if (bytes.has_value()) payload.assign(bytes->begin(), bytes->end());
    } else {
      payload.assign(info.chunk_size, 0);
    }
    return payload;
  };
  for (const ChunkIndex idx : plan.populate_after_read) {
    cache.put(ChunkId{key, idx}.cache_key(), chunk_payload(idx));
  }
  for (const auto& [idx, region] : plan.async_populate) {
    // The population fetch still crosses the network (traffic counted by
    // the region's bucket); its latency is off the read path.
    (void)ctx_.network->backend_fetch(ctx_.region, region, info.chunk_size);
    cache.put(ChunkId{key, idx}.cache_key(), chunk_payload(idx));
  }

  if (ctx_.verify_data) {
    for (const ChunkIndex idx : outcome.fetched) {
      const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
      if (bytes.has_value()) {
        collected.push_back(
            ec::Chunk{idx, Bytes(bytes->begin(), bytes->end())});
      }
    }
    result.verified = verify_payload(key, collected);
  }
  return result;
}

bool ReadStrategy::prefetch_chunk(const ObjectKey& key, ChunkIndex index,
                                  cache::StaticConfigCache& cache) {
  const std::string ck = ChunkId{key, index}.cache_key();
  if (cache.contains(ck)) return true;
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const RegionId region = ctx_.backend->placement().region_of(
      key, index, ctx_.backend->num_regions());
  // The fetch crosses the WAN (traffic is real) but happens on the
  // population pool, so no read pays for it.
  const auto latency =
      ctx_.network->backend_fetch(ctx_.region, region, info.chunk_size);
  if (!latency.has_value()) return false;  // region down; retry next period
  Bytes payload;
  if (ctx_.verify_data) {
    const auto bytes = ctx_.backend->get_chunk(ChunkId{key, index});
    if (!bytes.has_value()) return false;
    payload.assign(bytes->begin(), bytes->end());
  } else {
    payload.assign(info.chunk_size, 0);
  }
  return cache.put(ck, std::move(payload));
}

bool ReadStrategy::verify_payload(const ObjectKey& key,
                                  const std::vector<ec::Chunk>& chunks) const {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const Bytes decoded = ctx_.backend->codec().decode(info.object_size, chunks);
  const Bytes expected = deterministic_payload(key, info.object_size);
  return decoded == expected;
}

}  // namespace agar::client
