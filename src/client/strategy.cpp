#include "client/strategy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "client/backend_strategy.hpp"

namespace agar::client {

ReadStrategy::ReadStrategy(ClientContext ctx) : ctx_(ctx), fetcher_(ctx.network) {
  if (ctx_.backend == nullptr || ctx_.network == nullptr) {
    throw std::invalid_argument("ReadStrategy: null backend/network");
  }
  if (ctx_.fetch_policy != nullptr) {
    // Install the policy *under* the coalescing table: one in-flight entry
    // per chunk regardless of how many retries/hedges the policy spends.
    fetcher_.set_transport(
        [policy = ctx_.fetch_policy.get()](
            const ChunkId&, RegionId from, RegionId to, std::size_t bytes,
            core::FetchCoordinator::Callback cb) {
          return policy->begin_fetch(from, to, bytes, std::move(cb));
        });
  }
}

void ReadStrategy::enable_collab(CollabRoute route, CollabDone done) {
  // Layering per wire fetch: coalescing table -> collab routing (pick the
  // peer or the home region) -> fetch policy (retry/hedge/timeout against
  // the chosen target) -> network. The accounting wrapper observes the
  // final outcome, after any retries, so a peer hit means the transfer
  // actually landed.
  fetcher_.set_transport(
      [this, route = std::move(route), done = std::move(done)](
          const ChunkId& chunk, RegionId from, RegionId to, std::size_t bytes,
          core::FetchCoordinator::Callback cb) {
        const RegionId target = route ? route(chunk, to, bytes) : to;
        core::FetchCoordinator::Callback wrapped =
            [done, target, to, bytes,
             cb = std::move(cb)](std::optional<SimTimeMs> latency) {
              if (done) done(target, to, bytes, latency.has_value());
              cb(latency);
            };
        if (ctx_.fetch_policy != nullptr) {
          return ctx_.fetch_policy->begin_fetch(from, target, bytes,
                                                std::move(wrapped));
        }
        return ctx_.network->begin_fetch(from, target, bytes,
                                         std::move(wrapped));
      });
}

ReadResult ReadStrategy::read(const ObjectKey& key) {
  ReadResult out;
  bool done = false;
  if (ctx_.loop != nullptr) {
    start_read(key, [&](const ReadResult& r) {
      out = r;
      done = true;
    });
    // Drive the shared loop one event at a time; other events (timers,
    // populations, other clients' fetches) interleave as they would in a
    // real run.
    while (!done && ctx_.loop->step()) {
    }
    return out;
  }
  // Loop-less caller: a private loop serves this read and its trailing
  // population events, then the network is handed back. A verify-mode
  // decode failure throws from a completion event; the loop must still be
  // drained (so the network's in-flight accounting returns to zero) and
  // the bindings restored before the exception continues to the caller.
  sim::EventLoop local;
  sim::EventLoop* const prev = ctx_.network->loop();
  ctx_.network->bind_loop(&local);
  ctx_.loop = &local;
  std::exception_ptr error;
  try {
    start_read(key, [&](const ReadResult& r) {
      out = r;
      done = true;
    });
  } catch (...) {
    error = std::current_exception();
  }
  while (!local.empty()) {
    try {
      local.run();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  ctx_.loop = nullptr;
  ctx_.network->bind_loop(prev);
  if (error) std::rethrow_exception(error);
  return out;
}

// ------------------------------------------------------------ fetch batch

struct ReadStrategy::BatchState {
  ObjectKey key;
  std::size_t chunk_bytes = 0;
  std::size_t want = 0;      // backend arms we aim to keep in flight
  std::size_t accepted = 0;  // backend arms issued so far
  std::size_t pending = 0;   // arms (backend + cache) not yet landed
  bool issued_all = false;   // initial issue pass finished
  std::vector<std::pair<ChunkIndex, RegionId>> on_path;
  std::size_t next_on_path = 0;
  std::vector<std::pair<ChunkIndex, RegionId>> fallbacks;
  std::size_t next_fallback = 0;
  std::size_t failed_arms = 0;  // arms whose fetch came back nullopt
  std::size_t down_skips = 0;   // arms refused synchronously (region down)
  std::vector<ChunkIndex> fetched;
  ReadResult result;
  SimTimeMs start = 0.0;
  SimTimeMs extra = 0.0;
  BatchCallback done;
};

void ReadStrategy::start_fetch_batch(const ObjectKey& key, BatchSpec spec,
                                     ReadResult partial, BatchCallback done) {
  sim::EventLoop* const loop = ctx_.loop;
  if (loop == nullptr) {
    throw std::logic_error("ReadStrategy: start_read requires a loop");
  }
  auto st = std::make_shared<BatchState>();
  st->key = key;
  st->chunk_bytes = spec.chunk_bytes;
  st->want = spec.want_total;
  st->on_path = std::move(spec.on_path);
  st->fallbacks = std::move(spec.fallbacks);
  st->result = std::move(partial);
  st->start = loop->now();
  st->extra = spec.extra_ms;
  st->done = std::move(done);

  if (spec.cache_arm_ms >= 0.0) {
    ++st->pending;
    loop->schedule_in(spec.cache_arm_ms,
                      [this, st] { batch_arm_done(st); });
  }
  batch_issue(st);
  st->issued_all = true;
  if (st->pending == 0) {
    // Nothing to wait for (all regions down, or a zero-latency full hit):
    // complete asynchronously so `done` still fires on the loop.
    loop->schedule_in(0.0, [this, st] { batch_arm_done(st); });
    ++st->pending;
  }
}

void ReadStrategy::batch_issue(const std::shared_ptr<BatchState>& st) {
  auto try_issue = [&](const std::pair<ChunkIndex, RegionId>& target) {
    const auto [index, region] = target;
    const core::FetchStart started = fetcher_.fetch(
        ChunkId{st->key, index}, ctx_.region, region, st->chunk_bytes,
        [this, st, index](std::optional<SimTimeMs> latency) {
          if (latency.has_value()) {
            st->fetched.push_back(index);
          } else {
            // Failed in flight (outage, queue abort, or the fetch policy
            // exhausted its retries): replace with the next fallback.
            ++st->failed_arms;
            --st->accepted;
            batch_issue(st);
          }
          batch_arm_done(st);
        });
    if (started == core::FetchStart::kDown) {
      ++st->down_skips;
      return false;  // region down right now; caller falls back
    }
    if (started == core::FetchStart::kJoined) ++st->result.coalesced_chunks;
    ++st->accepted;
    ++st->pending;
    return true;
  };

  while (st->accepted < st->want && st->next_on_path < st->on_path.size()) {
    (void)try_issue(st->on_path[st->next_on_path++]);
  }
  // Failure fallback: pull replacement chunks (typically parity from the
  // regions the planner discarded) until the batch is complete.
  while (st->accepted < st->want && st->next_fallback < st->fallbacks.size()) {
    (void)try_issue(st->fallbacks[st->next_fallback++]);
  }
}

void ReadStrategy::batch_arm_done(const std::shared_ptr<BatchState>& st) {
  --st->pending;
  if (st->pending != 0 || !st->issued_all) return;
  sim::EventLoop* const loop = ctx_.loop;
  // Every fallback exhausted before `want` backend arms landed (a mid-run
  // outage took out the remaining sources): the read cannot assemble k
  // chunks. Complete it as a counted failure — no decode happens, so no
  // decode time is charged and no decoder throws from a completion event.
  st->result.failed = st->fetched.size() < st->want;
  // A read that assembled k chunks but not the planned k is a degraded
  // read: it succeeded off its fallback path (and paid for it in latency).
  st->result.degraded =
      !st->result.failed && (st->failed_arms > 0 || st->down_skips > 0);
  loop->schedule_in(st->result.failed ? 0.0 : st->extra, [loop, st] {
    st->result.latency_ms = loop->now() - st->start;
    st->done(std::move(st->result), std::move(st->fetched));
  });
}

// ---------------------------------------------------------- planned reads

double ReadStrategy::decode_ms(std::size_t object_bytes) const {
  return ctx_.decode_ms_per_mb * static_cast<double>(object_bytes) /
         static_cast<double>(1_MB);
}

void ReadStrategy::start_plan(const ObjectKey& key, const core::ReadPlan& plan,
                              cache::StaticConfigCache& cache,
                              ReadCallback done) {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const std::size_t k = ctx_.backend->codec().k();

  ReadResult partial;
  std::vector<SimTimeMs> cache_latencies;
  auto collected = std::make_shared<std::vector<ec::Chunk>>();  // verify mode

  // Cache-resident chunks, fetched in parallel with the backend batch.
  for (const ChunkIndex idx : plan.from_cache) {
    const std::string ck = ChunkId{key, idx}.cache_key();
    const auto hit = cache.get(ck);
    if (!hit.has_value()) continue;  // raced with a reconfiguration
    cache_latencies.push_back(ctx_.network->cache_fetch(info.chunk_size));
    ++partial.cache_chunks;
    if (ctx_.verify_data) {
      collected->push_back(ec::Chunk{idx, *hit});  // shared, no copy
    }
  }

  // Backend chunks; every other chunk (cheapest-first) is a fallback in
  // case a region is down or a cache entry vanished.
  BatchSpec spec;
  spec.on_path = plan.from_backend;
  for (const auto& cand : chunks_by_expected_latency(ctx_, key)) {
    const bool planned =
        std::any_of(plan.from_backend.begin(), plan.from_backend.end(),
                    [&](const auto& p) { return p.first == cand.first; }) ||
        std::any_of(plan.from_cache.begin(), plan.from_cache.end(),
                    [&](ChunkIndex i) { return i == cand.first; });
    if (!planned) spec.fallbacks.push_back(cand);
  }
  spec.want_total = k - partial.cache_chunks;
  spec.chunk_bytes = info.chunk_size;
  spec.cache_arm_ms = cache_latencies.empty()
                          ? -1.0
                          : sim::Network::parallel_batch_ms(cache_latencies);
  spec.extra_ms = decode_ms(info.object_size) + plan.monitor_overhead_ms;

  start_fetch_batch(
      key, std::move(spec), partial,
      [this, key, plan, &cache, collected, k, info,
       done = std::move(done)](ReadResult result,
                               std::vector<ChunkIndex> fetched) {
        result.backend_chunks = fetched.size();
        result.full_hit = result.cache_chunks == k;
        result.partial_hit = result.cache_chunks > 0;

        // Populate the cache per plan (asynchronous in the prototype: a
        // separate thread pool performs the writes, so no latency charged).
        for (const ChunkIndex idx : plan.populate_after_read) {
          SharedBytes payload = population_payload(key, idx, info.chunk_size);
          if (ctx_.verify_data && payload.empty()) continue;
          cache.put(ChunkId{key, idx}.cache_key(), std::move(payload));
        }
        for (const auto& [idx, region] : plan.async_populate) {
          (void)region;
          // Population fetch crosses the network as a background event
          // (traffic counted; coalesces with any in-flight read of the
          // same chunk); its latency is off the read path.
          populate_chunk_async(key, idx, cache);
        }

        if (ctx_.verify_data && !result.failed) {
          for (const ChunkIndex idx : fetched) {
            const auto bytes = ctx_.backend->get_chunk(ChunkId{key, idx});
            if (bytes.has_value()) {
              collected->push_back(ec::Chunk{idx, *bytes});
            }
          }
          result.verified = verify_payload(key, *collected);
        }
        done(result);
      });
}

// ------------------------------------------------------------- population

SharedBytes ReadStrategy::population_payload(const ObjectKey& key,
                                             ChunkIndex index,
                                             std::size_t chunk_size) const {
  if (ctx_.verify_data) {
    // Share the backend's buffer; empty handle if the bytes were never
    // materialized (latency-only objects).
    const auto bytes = ctx_.backend->get_chunk(ChunkId{key, index});
    return bytes.has_value() ? *bytes : SharedBytes{};
  }
  // Latency-only mode: only the size matters to the cache, so every
  // populated chunk of a given size shares one zero buffer.
  if (zero_payload_.size() != chunk_size) {
    zero_payload_ = SharedBytes(Bytes(chunk_size, 0));
  }
  return zero_payload_;
}

void ReadStrategy::populate_chunk_async(const ObjectKey& key, ChunkIndex index,
                                        cache::CacheEngine& cache) {
  const std::string ck = ChunkId{key, index}.cache_key();
  if (cache.contains(ck)) return;
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const RegionId region = ctx_.backend->placement().region_of(
      key, index, ctx_.backend->num_regions());
  (void)fetcher_.fetch(
      ChunkId{key, index}, ctx_.region, region, info.chunk_size,
      [this, key, index, &cache,
       chunk_size = info.chunk_size](std::optional<SimTimeMs> latency) {
        if (!latency.has_value()) return;  // region down; retry next period
        SharedBytes payload = population_payload(key, index, chunk_size);
        if (ctx_.verify_data && payload.empty()) return;  // no backend bytes
        cache.put(ChunkId{key, index}.cache_key(), std::move(payload));
      });
}

bool ReadStrategy::prefetch_chunk(const ObjectKey& key, ChunkIndex index,
                                  cache::CacheEngine& cache) {
  const std::string ck = ChunkId{key, index}.cache_key();
  if (cache.contains(ck)) return true;
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const RegionId region = ctx_.backend->placement().region_of(
      key, index, ctx_.backend->num_regions());
  // The fetch crosses the WAN (traffic is real) but happens on the
  // population pool, so no read pays for it.
  const auto latency =
      ctx_.network->backend_fetch(ctx_.region, region, info.chunk_size);
  if (!latency.has_value()) return false;  // region down; retry next period
  SharedBytes payload = population_payload(key, index, info.chunk_size);
  if (ctx_.verify_data && payload.empty()) return false;  // no backend bytes
  return cache.put(ck, std::move(payload));
}

bool ReadStrategy::verify_payload(const ObjectKey& key,
                                  const std::vector<ec::Chunk>& chunks) const {
  const store::ObjectInfo info = ctx_.backend->object_info(key);
  const ec::ObjectCodec& codec =
      ctx_.codec != nullptr ? *ctx_.codec : ctx_.backend->codec();
  const Bytes decoded = codec.decode(info.object_size, chunks);
  const Bytes expected = deterministic_payload(key, info.object_size);
  return decoded == expected;
}

}  // namespace agar::client
