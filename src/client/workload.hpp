// YCSB-style workload generation (paper §V-A: read-only workloads, Zipfian
// with configurable skew or uniform, over a fixed pool of objects).
//
// The Zipfian generator samples rank r with probability proportional to
// 1 / r^s by inverse-CDF over a precomputed cumulative table — exact for
// any skew s >= 0 (s == 0 degenerates to uniform), including s == 1 where
// the YCSB rejection formula needs special-casing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "scenario/scenario.hpp"

namespace agar::client {

/// Key-choice distribution.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  /// Returns a key index in [0, universe).
  [[nodiscard]] virtual std::size_t next_index(Rng& rng) = 0;
  [[nodiscard]] virtual std::size_t universe() const = 0;
};

class UniformGenerator final : public KeyGenerator {
 public:
  explicit UniformGenerator(std::size_t universe);
  [[nodiscard]] std::size_t next_index(Rng& rng) override;
  [[nodiscard]] std::size_t universe() const override { return universe_; }

 private:
  std::size_t universe_;
};

class ZipfianGenerator final : public KeyGenerator {
 public:
  /// `skew` is the Zipf exponent (the paper sweeps 0.2 .. 1.4).
  ZipfianGenerator(std::size_t universe, double skew);

  [[nodiscard]] std::size_t next_index(Rng& rng) override;
  [[nodiscard]] std::size_t universe() const override {
    return cumulative_.size();
  }
  [[nodiscard]] double skew() const { return skew_; }

  /// P(rank <= i), 0-based inclusive — the Fig. 9 CDF.
  [[nodiscard]] double cdf(std::size_t i) const;

  /// Probability of exactly rank i.
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  double skew_;
  std::vector<double> cumulative_;  // cumulative_[i] = P(rank <= i)
};

/// Declarative workload description used by experiment configs.
struct WorkloadSpec {
  enum class Kind { kUniform, kZipfian };
  Kind kind = Kind::kZipfian;
  double zipf_skew = 1.1;  ///< paper default

  [[nodiscard]] static WorkloadSpec uniform() {
    return WorkloadSpec{Kind::kUniform, 0.0};
  }
  [[nodiscard]] static WorkloadSpec zipfian(double skew) {
    return WorkloadSpec{Kind::kZipfian, skew};
  }

  [[nodiscard]] std::string label() const;
};

/// Instantiate the generator a spec describes.
[[nodiscard]] std::unique_ptr<KeyGenerator> make_generator(
    const WorkloadSpec& spec, std::size_t universe);

/// Mix the per-(run, region, client) workload RNG seed the experiment
/// runner uses. Exported so external load generators (agarctl's replay
/// mode) can reproduce the exact key stream of a run: region index 0,
/// client c reduces to the historical single-region formula.
[[nodiscard]] std::uint64_t workload_stream_seed(std::uint64_t run_seed,
                                                 std::size_t region_index,
                                                 std::size_t client);

/// A stream of object keys: maps generator ranks onto key names through a
/// mutable rank->object permutation. Rank 0 is the most popular object;
/// initially rank r maps to object r. Keys follow the backend's naming
/// scheme ("<prefix><i>").
///
/// The permutation is what makes the workload non-stationary: scenario
/// popularity shifts rewrite which objects occupy the hot ranks mid-run
/// while the generator's rank distribution (the Zipf shape) is untouched.
class Workload {
 public:
  Workload(WorkloadSpec spec, std::size_t universe, std::uint64_t seed,
           std::string prefix = "object");

  [[nodiscard]] ObjectKey next_key();
  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

  /// Apply one scripted popularity shift to the rank->object mapping:
  ///   * rotate: rank r now yields the object previously at rank r+by;
  ///   * reseed: deterministic Fisher-Yates reshuffle of the mapping;
  ///   * flash crowd: a block of `count` objects (default: the coldest
  ///     tail) jumps to the top ranks, everything else shifts back.
  void apply(const scenario::PopularityShift& shift);

  /// Object index currently mapped to `rank` (tests/observability).
  [[nodiscard]] std::size_t object_at_rank(std::size_t rank) const {
    return permutation_.at(rank);
  }

 private:
  WorkloadSpec spec_;
  std::unique_ptr<KeyGenerator> generator_;
  Rng rng_;
  std::string prefix_;
  std::vector<std::size_t> permutation_;  ///< rank -> object index
};

}  // namespace agar::client
