// Fault-tolerant fetch policies — the client-side answer to gray failures.
//
// A FetchPolicy sits between the strategies' coalescing table
// (core::FetchCoordinator) and sim::Network. The baseline "none" policy is
// a verbatim pass-through reproducing the historical fail-fast semantics
// byte for byte. The fault-tolerant policies wrap every wire fetch in a
// state machine:
//
//   * per-fetch timeout — a one-shot timer-wheel timer races the network
//     completion; whichever fires first wins, the loser is ignored;
//   * bounded retries with exponential backoff plus multiplicative jitter
//     (deterministic: the jitter RNG is seeded per lane);
//   * optional hedging — after hedge_after_mult x the expected latency, a
//     duplicate request is issued and the first response wins, the loser's
//     completion is dropped on the floor and counted as wasted work.
//
// Discovering a down region now costs a timeout: where the raw network
// refuses synchronously (begin_fetch returns false), a fault-tolerant
// policy accepts the fetch and delivers the failure only after the timeout
// would have expired — real clients do not learn about dead peers for free.
//
// Placement note: chunks are round-robin placed with exactly one home
// region per chunk (no replicas), so a hedge cannot go to a "next-best
// region" for the same chunk — it re-asks the same region and draws an
// independent latency sample, modeling a second server behind the
// regional endpoint. With straggle fraction f, both copies straggle with
// probability f², which is what cuts the tail. Cross-region diversity
// comes from the strategies' degraded-read fallback path instead.
//
// Every policy tracks a per-destination-region success EWMA (1 = healthy)
// plus counters (timeouts, retries, hedges issued/won/wasted, exhausted
// fetches) that the runner merges into RunResult.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"
#include "stats/ewma.hpp"

namespace agar::client {

struct FetchPolicyStats {
  std::uint64_t attempts = 0;       ///< wire fetches issued (incl. retries/hedges)
  std::uint64_t timeouts = 0;       ///< attempts abandoned by the timeout timer
  std::uint64_t retries = 0;        ///< re-issues after a failed/timed-out attempt
  std::uint64_t hedges_issued = 0;  ///< duplicate requests sent
  std::uint64_t hedges_won = 0;     ///< hedge finished first
  std::uint64_t hedges_wasted = 0;  ///< primary won with the hedge in flight
  std::uint64_t exhausted = 0;      ///< fetches that gave up (caller hears nullopt)
};

class FetchPolicy {
 public:
  using FetchCallback = sim::Network::FetchCallback;

  /// `ewma_alpha` weights the per-region success EWMA (policies that never
  /// observe() can leave the default).
  explicit FetchPolicy(sim::Network* network, double ewma_alpha = 0.2);
  virtual ~FetchPolicy() = default;

  /// Same contract as Network::begin_fetch: returns false only when the
  /// caller should substitute a fallback immediately; otherwise `cb` fires
  /// exactly once on the loop with the outcome.
  virtual bool begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                           FetchCallback cb) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const FetchPolicyStats& stats() const { return stats_; }

  /// Success EWMA of fetches to `r` (1 = every fetch lands). Starts at 1.
  [[nodiscard]] double region_success_ewma(RegionId r) const {
    return success_.at(r).value();
  }
  [[nodiscard]] std::uint64_t region_samples(RegionId r) const {
    return samples_.at(r);
  }
  [[nodiscard]] std::size_t num_regions() const { return success_.size(); }

 protected:
  /// Fold one fetch outcome into the per-region health tracking.
  void observe(RegionId to, bool success);

  sim::Network* network_;  // non-owning
  FetchPolicyStats stats_;

 private:
  std::vector<stats::Ewma> success_;
  std::vector<std::uint64_t> samples_;
};

/// Pass-through: the historical fail-fast semantics, bit for bit. No
/// wrapping, no timers, no extra RNG draws, no health tracking.
class PassThroughFetchPolicy final : public FetchPolicy {
 public:
  explicit PassThroughFetchPolicy(sim::Network* network)
      : FetchPolicy(network) {}

  bool begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                   FetchCallback cb) override {
    return network_->begin_fetch(from, to, bytes, std::move(cb));
  }

  [[nodiscard]] std::string name() const override { return "none"; }
};

struct FaultTolerantParams {
  /// Timeout = max(timeout_min_ms, timeout_mult x expected latency).
  double timeout_mult = 3.0;
  double timeout_min_ms = 10.0;
  /// Re-issues after the first attempt (attempts = retries + 1).
  std::size_t retries = 2;
  /// Backoff before retry n is backoff_ms x backoff_mult^(n-1), scaled by
  /// a uniform jitter factor in [1 - jitter, 1 + jitter).
  double backoff_ms = 5.0;
  double backoff_mult = 2.0;
  double jitter = 0.5;
  /// > 0 arms hedging: the duplicate goes out hedge_after_mult x the
  /// expected latency after the primary (0 disables).
  double hedge_after_mult = 0.0;
  /// EWMA weight for the per-region success estimate.
  double ewma_alpha = 0.2;
};

/// Timeout + retry + backoff (+ optional hedging) state machine. One
/// instance serves one lane, so its jitter RNG stream is deterministic
/// for any shard count.
class FaultTolerantFetchPolicy final : public FetchPolicy {
 public:
  FaultTolerantFetchPolicy(sim::Network* network, std::uint64_t seed,
                           FaultTolerantParams params);

  bool begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                   FetchCallback cb) override;

  [[nodiscard]] std::string name() const override {
    return params_.hedge_after_mult > 0.0 ? "hedge" : "retry";
  }

  [[nodiscard]] const FaultTolerantParams& params() const { return params_; }

 private:
  struct Pending;

  void start_attempt(const std::shared_ptr<Pending>& p);
  void on_wire_result(const std::shared_ptr<Pending>& p, std::uint64_t epoch,
                      bool is_hedge, std::optional<SimTimeMs> latency);
  void on_timeout(const std::shared_ptr<Pending>& p, std::uint64_t epoch);
  void on_hedge_fire(const std::shared_ptr<Pending>& p, std::uint64_t epoch);
  /// The current attempt (primary + any hedge) is dead: retry or exhaust.
  void attempt_failed(const std::shared_ptr<Pending>& p);
  /// Invalidate the in-flight attempt: bump the epoch (stale completions
  /// are dropped) and disarm the timers.
  void abandon_attempt(const std::shared_ptr<Pending>& p);
  void complete(const std::shared_ptr<Pending>& p,
                std::optional<SimTimeMs> result);

  [[nodiscard]] sim::EventLoop* loop() const;
  [[nodiscard]] SimTimeMs timeout_ms(const Pending& p) const;

  FaultTolerantParams params_;
  Rng rng_;
};

}  // namespace agar::client
