#include "client/lfu_config_strategy.hpp"

#include <algorithm>
#include <memory>

#include "api/registry.hpp"
#include "client/runner.hpp"

namespace agar::client {

namespace {

const api::StrategyRegistration kLfuConfig{{
    "lfu",
    "LFU",
    "the paper's LFU baseline: frequency proxy + periodic static "
    "configuration of c chunks per object",
    api::ParamSchema{{
        {"chunks", api::ParamType::kSize, "9", "chunks cached per object"},
        {"cache_bytes", api::ParamType::kSize, "10MB", "cache capacity"},
        {"ewma_alpha", api::ParamType::kDouble, "0.8",
         "request-frequency EWMA smoothing"},
        {"proxy_ms", api::ParamType::kDouble, "0.5",
         "frequency-tracking proxy cost on the read path"},
    }},
    [](const api::StrategyContext& ctx, const api::ParamMap& params) {
      LfuConfigParams p;
      p.chunks_per_object = params.get_size("chunks", 9);
      p.cache_capacity_bytes = params.get_size("cache_bytes", 10_MB);
      p.reconfig_period_ms = ctx.experiment->reconfig_period_ms;
      p.ewma_alpha = params.get_double("ewma_alpha", p.ewma_alpha);
      p.proxy_overhead_ms = params.get_double("proxy_ms", p.proxy_overhead_ms);
      return std::make_unique<LfuConfigStrategy>(*ctx.client, p);
    },
    [](const api::ParamMap& params) {
      return "LFU-" + std::to_string(params.get_size("chunks", 9));
    }}};

core::RegionManagerParams region_params(const ClientContext& ctx) {
  core::RegionManagerParams p;
  p.local_region = ctx.region;
  return p;
}

core::RequestMonitorParams monitor_params(const LfuConfigParams& p) {
  core::RequestMonitorParams mp;
  mp.ewma_alpha = p.ewma_alpha;
  mp.processing_ms = p.proxy_overhead_ms;
  return mp;
}

}  // namespace

LfuConfigStrategy::LfuConfigStrategy(ClientContext ctx, LfuConfigParams params)
    : ReadStrategy(ctx),
      params_(params),
      cache_(params.cache_capacity_bytes),
      region_manager_(ctx.backend, ctx.network, region_params(ctx)),
      monitor_(monitor_params(params)) {
  if (params_.chunks_per_object == 0) {
    throw std::invalid_argument(
        "LfuConfigStrategy: chunks_per_object must be >= 1");
  }
}

std::string LfuConfigStrategy::name() const {
  return "LFU-" + std::to_string(params_.chunks_per_object);
}

void LfuConfigStrategy::warm_up() { region_manager_.probe(); }

void LfuConfigStrategy::attach_to_loop(sim::EventLoop& loop) {
  ReadStrategy::attach_to_loop(loop);
  // Same event-driven pipeline as Agar: async probe round, then apply the
  // configuration once the probes have landed.
  reconfig_timer_ = region_manager_.schedule_probe_pipeline(
      loop, params_.reconfig_period_ms, [this] { apply_configuration(); });
}

std::vector<ChunkIndex> LfuConfigStrategy::designated_chunks(
    const ObjectKey& key) const {
  auto costs = region_manager_.chunk_costs(key);
  // Most distant first; deterministic tie-break (same ordering the option
  // generator uses).
  std::sort(costs.begin(), costs.end(),
            [](const core::ChunkCost& a, const core::ChunkCost& b) {
              if (a.latency_ms != b.latency_ms) {
                return a.latency_ms > b.latency_ms;
              }
              if (a.region != b.region) return a.region > b.region;
              return a.index < b.index;
            });
  const std::size_t k = ctx_.backend->codec().k();
  const std::size_t m = ctx_.backend->codec().m();
  const std::size_t c = std::min(params_.chunks_per_object, k);
  // Discard the m furthest (never fetched in the failure-free case), then
  // take the c most distant of the k needed.
  std::vector<ChunkIndex> out;
  out.reserve(c);
  for (std::size_t i = m; i < m + c && i < costs.size(); ++i) {
    out.push_back(costs[i].index);
  }
  return out;
}

void LfuConfigStrategy::reconfigure() {
  region_manager_.probe();
  apply_configuration();
}

void LfuConfigStrategy::apply_configuration() {
  monitor_.roll_period();

  // Rank by popularity, most frequent first; deterministic tie-break.
  auto ranked = monitor_.snapshot();
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  std::unordered_set<std::string> configured_keys;
  std::map<ObjectKey, std::vector<ChunkIndex>> next;
  std::size_t used = 0;
  for (const auto& [key, popularity] : ranked) {
    if (popularity <= 0.0) break;
    if (!ctx_.backend->has_object(key)) continue;
    const std::size_t chunk_bytes =
        ctx_.backend->object_info(key).chunk_size;
    auto chunks = designated_chunks(key);
    const std::size_t cost = chunks.size() * chunk_bytes;
    if (used + cost > cache_.capacity_bytes()) break;  // strict ranking
    used += cost;
    for (const ChunkIndex idx : chunks) {
      configured_keys.insert(ChunkId{key, idx}.cache_key());
    }
    next.emplace(key, std::move(chunks));
  }
  configured_ = std::move(next);
  cache_.install_configuration(std::move(configured_keys));

  // Same a-priori population downloads as Agar (paper §IV-A): the proxy's
  // thread pool fills the configured chunks off the read path. Keeping the
  // population mechanism identical across systems isolates the
  // configuration policy (knapsack vs fixed-c) in comparisons.
  for (const auto& [key, chunks] : configured_) {
    for (const ChunkIndex idx : chunks) {
      if (ctx_.loop != nullptr) {
        populate_chunk_async(key, idx, cache_);
      } else {
        (void)prefetch_chunk(key, idx, cache_);
      }
    }
  }
}

void LfuConfigStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  const double overhead = monitor_.record_access(key);
  core::ReadPlan plan = core::plan_chunk_sources(
      *ctx_.backend, region_manager_, cache_,
      [this](const ObjectKey& k, ChunkIndex idx) {
        const auto it = configured_.find(k);
        if (it == configured_.end()) return false;
        return std::find(it->second.begin(), it->second.end(), idx) !=
               it->second.end();
      },
      key);
  plan.monitor_overhead_ms = overhead;
  start_plan(key, plan, cache_, std::move(done));
}

}  // namespace agar::client
