#include "client/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace agar::client {

std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) {
    widths[i] = headers[i].size();
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      out << "| " << cell << std::string(widths[i] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  auto emit_rule = [&] {
    for (const std::size_t w : widths) {
      out << "+" << std::string(w + 2, '-');
    }
    out << "+\n";
  };

  emit_rule();
  emit_row(headers);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  emit_rule();
  return out.str();
}

void print_experiment_banner(const std::string& id, const std::string& what,
                             const std::string& setup) {
  std::cout << "\n=== " << id << ": " << what << " ===\n"
            << "setup: " << setup << "\n\n";
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void print_results_table(const std::vector<ExperimentResult>& results) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (const auto& r : results) {
    rows.push_back({
        r.label,
        fmt_ms(r.mean_latency_ms()),
        fmt_ms(r.stddev_of_means()),
        fmt_ms(r.percentile_ms(50)),
        fmt_ms(r.percentile_ms(95)),
        fmt_pct(r.hit_ratio()),
        fmt_pct(r.full_hit_ratio()),
        fmt_ms(r.mean_throughput_ops_per_s()),
        std::to_string(r.total_coalesced_fetches()),
    });
  }
  std::cout << format_table({"system", "avg latency (ms)", "stddev", "p50",
                             "p95", "hit ratio", "full hits", "ops/s",
                             "coalesced"},
                            rows);
}

std::string results_json(const std::vector<ExperimentResult>& results) {
  std::ostringstream out;
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ",";
    out << "\n  {\"system\": \"" << r.label << "\""
        << ", \"mean_latency_ms\": " << num(r.mean_latency_ms())
        << ", \"stddev_ms\": " << num(r.stddev_of_means())
        << ", \"p50_ms\": " << num(r.percentile_ms(50))
        << ", \"p95_ms\": " << num(r.percentile_ms(95))
        << ", \"p99_ms\": " << num(r.percentile_ms(99))
        << ", \"hit_ratio\": " << num(r.hit_ratio())
        << ", \"full_hit_ratio\": " << num(r.full_hit_ratio())
        << ", \"throughput_ops_per_s\": " << num(r.mean_throughput_ops_per_s())
        << ", \"total_ops\": " << r.total_ops()
        << ", \"wire_fetches\": " << r.total_wire_fetches()
        << ", \"coalesced_fetches\": " << r.total_coalesced_fetches()
        << ", \"runs\": [";
    for (std::size_t j = 0; j < r.runs.size(); ++j) {
      const auto& run = r.runs[j];
      if (j > 0) out << ",";
      out << "\n    {\"ops\": " << run.ops
          << ", \"mean_latency_ms\": " << num(run.mean_latency_ms())
          << ", \"duration_ms\": " << num(run.duration_ms)
          << ", \"throughput_ops_per_s\": " << num(run.throughput_ops_per_s())
          << ", \"full_hits\": " << run.full_hits
          << ", \"partial_hits\": " << run.partial_hits
          << ", \"failed_reads\": " << run.failed_reads
          << ", \"degraded_reads\": " << run.degraded_reads
          << ", \"scenario_events\": " << run.scenario_events_fired
          << ", \"wire_fetches\": " << run.wire_fetches
          << ", \"coalesced_fetches\": " << run.coalesced_fetches
          << ", \"queued_fetches\": " << run.queued_fetches
          << ", \"max_queue_depth\": " << run.max_queue_depth
          << ", \"max_net_in_flight\": " << run.max_net_in_flight
          << ", \"max_reads_in_flight\": " << run.max_reads_in_flight
          // Failed wire fetches split by mode: outage aborts, FIFO kills,
          // gray-drop timeouts.
          << ", \"fetch_failures\": {\"aborted_on_wire\": "
          << run.aborted_on_wire
          << ", \"failed_in_queue\": " << run.failed_in_queue
          << ", \"timed_out\": " << run.timed_out_fetches << "}"
          // Full cache counter set (admission/rejection/eviction telemetry)
          // plus the codec's decode-plan cache, so bench JSON captures the
          // whole instrumented data plane.
          << ", \"cache\": {\"hits\": " << run.cache_stats.hits
          << ", \"misses\": " << run.cache_stats.misses
          << ", \"puts\": " << run.cache_stats.puts
          << ", \"admissions\": " << run.cache_stats.admissions
          << ", \"rejections\": " << run.cache_stats.rejections
          << ", \"evictions\": " << run.cache_stats.evictions
          << ", \"used_bytes\": " << run.cache_used_bytes << "}"
          << ", \"decode_plan\": {\"hits\": " << run.decode_plan_hits
          << ", \"misses\": " << run.decode_plan_misses << "}"
          // Control-plane telemetry: planner timing (wall clock — CI
          // normalizes it before cross-build diffs) and config churn.
          << ", \"control_plane\": {\"reconfigurations\": "
          << run.reconfigurations
          << ", \"planning_ms\": " << num(run.planning_ms)
          << ", \"chunks_installed\": " << run.config_chunks_installed
          << ", \"chunks_evicted\": " << run.config_chunks_evicted << "}";
      // Fetch-policy telemetry: present only when a policy ran (the
      // region_success_ewma vector is empty under fetch=none).
      if (!run.region_success_ewma.empty()) {
        out << ", \"fetch\": {\"attempts\": " << run.fetch_attempts
            << ", \"timeouts\": " << run.fetch_timeouts
            << ", \"retries\": " << run.fetch_retries
            << ", \"hedges_issued\": " << run.hedges_issued
            << ", \"hedges_won\": " << run.hedges_won
            << ", \"hedges_wasted\": " << run.hedges_wasted
            << ", \"exhausted\": " << run.fetch_exhausted
            << ", \"region_success_ewma\": [";
        for (std::size_t e = 0; e < run.region_success_ewma.size(); ++e) {
          out << (e > 0 ? ", " : "") << num(run.region_success_ewma[e]);
        }
        out << "]}";
      }
      // Cooperative-tier telemetry: present only when a CollabRuntime ran
      // (collab=none stays byte-identical to the pre-collab format).
      if (run.collab_active) {
        out << ", \"collab\": {\"peer_hits\": " << run.collab_peer_hits
            << ", \"peer_misses\": " << run.collab_peer_misses
            << ", \"bytes_from_peers\": " << run.collab_bytes_from_peers
            << ", \"bytes_from_backend\": " << run.collab_bytes_from_backend
            << ", \"stale_config_reads\": " << run.stale_config_reads
            << ", \"paxos_appends\": " << run.paxos_appends
            << ", \"paxos_append_failures\": " << run.paxos_append_failures
            << ", \"paxos_append_p50_ms\": " << num(run.paxos_append_p50_ms)
            << ", \"paxos_append_p99_ms\": " << num(run.paxos_append_p99_ms)
            << ", \"config_epochs\": " << run.config_epochs
            << ", \"config_overlap\": " << num(run.config_overlap) << "}";
      }
      // Windowed time series (scenario runs with window_ms set): the
      // per-window latency/hit/failure shape adaptation is judged by.
      if (!run.windows.empty()) {
        out << ", \"windows\": [";
        for (std::size_t w = 0; w < run.windows.size(); ++w) {
          const auto& win = run.windows[w];
          if (w > 0) out << ",";
          out << "\n      {\"start_ms\": " << num(win.start_ms)
              << ", \"end_ms\": " << num(win.end_ms)
              << ", \"ops\": " << win.ops
              << ", \"mean_ms\": " << num(win.mean_ms)
              << ", \"p50_ms\": " << num(win.p50_ms)
              << ", \"p99_ms\": " << num(win.p99_ms)
              << ", \"hit_ratio\": " << num(win.hit_ratio())
              << ", \"full_hits\": " << win.full_hits
              << ", \"partial_hits\": " << win.partial_hits
              << ", \"failed_reads\": " << win.failed_reads
              << ", \"degraded_reads\": " << win.degraded_reads;
          if (run.collab_active) {
            out << ", \"collab_peer_hits\": " << win.collab_peer_hits
                << ", \"collab_stale_reads\": " << win.collab_stale_reads;
          }
          out << "}";
        }
        out << "\n    ]";
      }
      out << "}";
    }
    out << "\n  ]}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace agar::client
