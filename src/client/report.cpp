#include "client/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace agar::client {

std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) {
    widths[i] = headers[i].size();
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      out << "| " << cell << std::string(widths[i] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  auto emit_rule = [&] {
    for (const std::size_t w : widths) {
      out << "+" << std::string(w + 2, '-');
    }
    out << "+\n";
  };

  emit_rule();
  emit_row(headers);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  emit_rule();
  return out.str();
}

void print_experiment_banner(const std::string& id, const std::string& what,
                             const std::string& setup) {
  std::cout << "\n=== " << id << ": " << what << " ===\n"
            << "setup: " << setup << "\n\n";
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ms);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void print_results_table(const std::vector<ExperimentResult>& results) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (const auto& r : results) {
    rows.push_back({
        r.spec.label(),
        fmt_ms(r.mean_latency_ms()),
        fmt_ms(r.stddev_of_means()),
        fmt_ms(r.percentile_ms(50)),
        fmt_ms(r.percentile_ms(95)),
        fmt_pct(r.hit_ratio()),
        fmt_pct(r.full_hit_ratio()),
    });
  }
  std::cout << format_table({"system", "avg latency (ms)", "stddev", "p50",
                             "p95", "hit ratio", "full hits"},
                            rows);
}

}  // namespace agar::client
