#include "client/runner.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/logging.hpp"
#include "scenario/engine.hpp"
#include "sim/event_loop.hpp"
#include "stats/windowed.hpp"

namespace agar::client {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  topology_ = std::make_unique<sim::Topology>(sim::aws_six_regions());
  network_ = std::make_unique<sim::Network>(
      sim::LatencyModel(topology_.get(), config.latency, config.seed));
  backend_ = std::make_unique<store::BackendCluster>(
      topology_->num_regions(), config.codec,
      std::make_shared<ec::RoundRobinPlacement>(
          config.per_key_placement_offset));
  if (config.store_payloads) {
    store::populate_working_set(*backend_, config.num_objects,
                                config.object_size_bytes);
  } else {
    for (std::size_t i = 0; i < config.num_objects; ++i) {
      backend_->register_object("object" + std::to_string(i),
                                config.object_size_bytes);
    }
  }
}

namespace {

/// Mix a per-(run, region, client) workload seed. Region index 0 client c
/// reduces to the historical single-region formula, so single-region runs
/// replay the seed repo's exact key streams.
std::uint64_t workload_seed(std::uint64_t run_seed, std::size_t region_index,
                            std::size_t client) {
  return run_seed * 1315423911ULL + region_index * 1000000007ULL + client;
}

RunResult run_once(const ExperimentConfig& config,
                   const StrategyFactory& factory, std::uint64_t run_seed) {
  DeploymentConfig dep_config = config.deployment;
  dep_config.seed = run_seed;
  // Latency-only experiments skip payload materialization entirely.
  dep_config.store_payloads = config.verify_data;
  Deployment deployment(dep_config);
  deployment.network().set_max_outstanding_per_region(
      config.max_outstanding_per_region);

  sim::EventLoop loop;
  deployment.network().bind_loop(&loop);

  // One strategy instance (for Agar: one AgarNode) per client region.
  const std::vector<RegionId> regions = config.effective_client_regions();
  std::vector<std::unique_ptr<ReadStrategy>> strategies;
  strategies.reserve(regions.size());
  for (const RegionId region : regions) {
    auto strategy = factory(config, deployment, region, &loop);
    strategy->warm_up();
    strategy->attach_to_loop(loop);
    strategies.push_back(std::move(strategy));
  }

  RunResult result;
  const std::size_t ops_total = config.ops_per_run;
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::size_t reads_in_flight = 0;

  // Windowed time series (scenario runs): latency histogram per window plus
  // the counters a histogram cannot carry.
  const SimTimeMs window_ms = config.metric_window_ms;
  struct WindowCounters {
    std::uint64_t ops = 0, full = 0, partial = 0, failed = 0;
  };
  std::unique_ptr<stats::WindowedHistogram> window_latencies;
  std::vector<WindowCounters> window_counters;
  if (window_ms > 0.0) {
    window_latencies = std::make_unique<stats::WindowedHistogram>(window_ms);
  }

  auto record = [&](const ReadResult& r) {
    ++result.ops;
    if (r.failed) {
      ++result.failed_reads;
    } else {
      result.latencies.add(r.latency_ms);
      if (r.full_hit) ++result.full_hits;
      if (r.partial_hit && !r.full_hit) ++result.partial_hits;
      if (r.verified) ++result.verified;
    }
    if (window_latencies != nullptr) {
      const std::size_t w = window_latencies->index_of(loop.now());
      window_latencies->ensure(w);
      if (window_counters.size() <= w) window_counters.resize(w + 1);
      WindowCounters& wc = window_counters[w];
      ++wc.ops;
      if (r.failed) {
        ++wc.failed;
      } else {
        window_latencies->add(loop.now(), r.latency_ms);
        if (r.full_hit) ++wc.full;
        if (r.partial_hit && !r.full_hit) ++wc.partial;
      }
    }
    ++completed;
    --reads_in_flight;
    result.duration_ms = std::max(result.duration_ms, loop.now());
  };
  auto begin_read = [&](std::size_t region_index, Workload& workload,
                        ReadStrategy::ReadCallback done) {
    ++issued;
    ++reads_in_flight;
    result.max_reads_in_flight =
        std::max(result.max_reads_in_flight, reads_in_flight);
    strategies[region_index]->start_read(workload.next_key(),
                                         std::move(done));
  };

  // Client state is heap-held and owns its own issue/arrival closure: the
  // closures re-schedule themselves, so they must outlive this setup scope
  // and have a stable address for the events already in the queue.
  struct ClientState {
    std::size_t region_index;
    Workload workload;
    Rng gaps;                   // open loop: inter-arrival draws
    std::size_t remaining = 0;  // open loop: arrivals left for this region
    std::function<void()> next;
  };
  std::vector<std::unique_ptr<ClientState>> clients;

  // Scenario engine: scripted mid-run events on the same loop. Network
  // events apply directly; popularity shifts rewrite every client's
  // rank->object mapping; arrival modulation is sampled below each time an
  // open-loop gap is drawn. The hook captures `clients` by reference — the
  // vector is fully populated before the loop (and thus any event) runs.
  std::unique_ptr<scenario::ScenarioEngine> engine;
  if (!config.scenario.empty()) {
    engine = std::make_unique<scenario::ScenarioEngine>(
        config.scenario, &deployment.network(),
        [&clients](const scenario::PopularityShift& shift) {
          for (auto& client : clients) client->workload.apply(shift);
        });
    engine->schedule(loop);
  }
  scenario::ScenarioEngine* const scenario_engine = engine.get();

  if (config.arrival_rate_per_s > 0.0) {
    // Open-loop mode: one Poisson arrival process per region; reads start
    // at exponentially distributed instants regardless of completions, so
    // load is applied even while earlier reads are still in flight.
    const SimTimeMs mean_gap_ms = 1000.0 / config.arrival_rate_per_s;
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      // Split the op budget across regions; the first region absorbs the
      // remainder so totals always match ops_per_run.
      const std::size_t budget = ops_total / regions.size() +
                                 (ri == 0 ? ops_total % regions.size() : 0);
      clients.push_back(std::make_unique<ClientState>(ClientState{
          ri,
          Workload(config.workload, config.deployment.num_objects,
                   workload_seed(run_seed, ri, 0)),
          Rng(workload_seed(run_seed, ri, 7777)), budget, {}}));
      ClientState* state = clients.back().get();
      state->next = [&, state, mean_gap_ms, scenario_engine]() {
        if (state->remaining == 0) return;
        --state->remaining;
        begin_read(state->region_index, state->workload, record);
        if (state->remaining > 0) {
          const double u = state->gaps.next_double();
          // Scenario arrival modulation scales the instantaneous rate:
          // the mean gap shrinks (surge) or stretches (lull) by the
          // multiplier in force when this gap is drawn.
          const double rate_mult =
              scenario_engine != nullptr
                  ? scenario_engine->arrival_multiplier(loop.now())
                  : 1.0;
          const SimTimeMs gap =
              -mean_gap_ms * std::log(1.0 - u) / rate_mult;
          loop.schedule_in(gap, state->next);
        }
      };
      loop.schedule_in(0.0, state->next);
    }
  } else {
    // Closed-loop clients: each issues its next read when the previous one
    // completes (the paper's YCSB clients are closed-loop).
    const std::size_t per_region = std::max<std::size_t>(1, config.num_clients);
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      for (std::size_t c = 0; c < per_region; ++c) {
        clients.push_back(std::make_unique<ClientState>(ClientState{
            ri,
            Workload(config.workload, config.deployment.num_objects,
                     workload_seed(run_seed, ri, c)),
            Rng(0), 0, {}}));
        ClientState* state = clients.back().get();
        state->next = [&, state]() {
          if (issued >= ops_total) return;
          begin_read(state->region_index, state->workload,
                     [&, state](const ReadResult& r) {
                       record(r);
                       state->next();
                     });
        };
        loop.schedule_in(0.0, state->next);
      }
    }
  }

  // The periodic reconfiguration re-arms forever; cut it off once every
  // read has completed by draining with a bounded horizon.
  while (!loop.empty() && completed < ops_total) {
    loop.run_until(loop.now() + 1000.0);
  }

  // Materialize the windowed time series: latency stats from the per-window
  // histograms, counters alongside, empty windows kept so indices map to
  // virtual time.
  if (window_latencies != nullptr) {
    const std::size_t n =
        std::max(window_latencies->size(), window_counters.size());
    window_counters.resize(n);
    result.windows.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      WindowStats ws;
      ws.start_ms = window_latencies->start_of(w);
      ws.end_ms = ws.start_ms + window_ms;
      const WindowCounters& wc = window_counters[w];
      ws.ops = wc.ops;
      ws.full_hits = wc.full;
      ws.partial_hits = wc.partial;
      ws.failed_reads = wc.failed;
      if (w < window_latencies->size() &&
          window_latencies->window(w).count() > 0) {
        const stats::Histogram& h = window_latencies->window(w);
        ws.mean_ms = h.mean();
        ws.p50_ms = h.percentile(50);
        ws.p99_ms = h.percentile(99);
      }
      result.windows.push_back(ws);
    }
  }
  if (engine != nullptr) result.scenario_events_fired = engine->fired();

  // Aggregate pipeline gauges: network-wide plus per-strategy coalescing.
  result.wire_fetches = deployment.network().wire_fetches();
  result.queued_fetches = deployment.network().queued_fetches();
  result.max_queue_depth = deployment.network().max_queue_depth();
  result.max_net_in_flight = deployment.network().max_in_flight();
  for (const auto& strategy : strategies) {
    result.coalesced_fetches += strategy->fetch_coordinator().coalesced();
    const core::ControlPlaneStats cp = strategy->control_plane_stats();
    result.reconfigurations += cp.reconfigurations;
    result.planning_ms += cp.planning_ms;
    result.config_chunks_installed += cp.chunks_installed;
    result.config_chunks_evicted += cp.chunks_evicted;
  }

  // Final snapshots through the observability hooks every strategy
  // exposes (primary region's strategy, as before) — the runner needs no
  // knowledge of concrete strategy types.
  ReadStrategy* primary = strategies.front().get();
  if (const cache::CacheEngine* engine = primary->cache_engine()) {
    result.cache_stats = engine->stats();
    result.cache_used_bytes = engine->used_bytes();
  }
  result.weight_histogram = primary->config_weight_histogram();
  result.decode_plan_hits = deployment.backend().codec().rs().decode_plan_hits();
  result.decode_plan_misses =
      deployment.backend().codec().rs().decode_plan_misses();
  return result;
}

}  // namespace

double ExperimentResult::mean_latency_ms() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.mean_latency_ms();
  return acc / static_cast<double>(runs.size());
}

double ExperimentResult::stddev_of_means() const {
  if (runs.size() < 2) return 0.0;
  const double m = mean_latency_ms();
  double acc = 0.0;
  for (const auto& r : runs) {
    const double d = r.mean_latency_ms() - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(runs.size() - 1));
}

double ExperimentResult::hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits + r.partial_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::full_hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::percentile_ms(double q) const {
  stats::Histogram merged;
  for (const auto& r : runs) merged.merge(r.latencies);
  return merged.percentile(q);
}

std::uint64_t ExperimentResult::total_ops() const {
  std::uint64_t ops = 0;
  for (const auto& r : runs) ops += r.ops;
  return ops;
}

double ExperimentResult::mean_throughput_ops_per_s() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.throughput_ops_per_s();
  return acc / static_cast<double>(runs.size());
}

std::uint64_t ExperimentResult::total_coalesced_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.coalesced_fetches;
  return acc;
}

std::uint64_t ExperimentResult::total_wire_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.wire_fetches;
  return acc;
}

std::uint64_t ExperimentResult::total_reconfigurations() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.reconfigurations;
  return acc;
}

double ExperimentResult::total_planning_ms() const {
  double acc = 0.0;
  for (const auto& r : runs) acc += r.planning_ms;
  return acc;
}

std::uint64_t ExperimentResult::total_config_churn() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) {
    acc += r.config_chunks_installed + r.config_chunks_evicted;
  }
  return acc;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const StrategyFactory& factory,
                                std::string label) {
  if (!factory) {
    throw std::invalid_argument("run_experiment: null strategy factory");
  }
  ExperimentResult result;
  // Reports print/serialize the label verbatim; never leave it blank.
  result.label = label.empty() ? "experiment" : std::move(label);
  result.runs.reserve(config.runs);
  for (std::size_t r = 0; r < config.runs; ++r) {
    const std::uint64_t run_seed =
        config.deployment.seed + r * 1000003ULL;
    result.runs.push_back(run_once(config, factory, run_seed));
  }
  log_info("runner") << result.label << ": mean " << result.mean_latency_ms()
                     << " ms, hit ratio " << result.hit_ratio();
  return result;
}

}  // namespace agar::client
