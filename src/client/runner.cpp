#include "client/runner.hpp"

#include <cmath>
#include <stdexcept>

#include "client/agar_strategy.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/lfu_config_strategy.hpp"
#include "common/logging.hpp"
#include "sim/event_loop.hpp"

namespace agar::client {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  topology_ = std::make_unique<sim::Topology>(sim::aws_six_regions());
  network_ = std::make_unique<sim::Network>(
      sim::LatencyModel(topology_.get(), config.latency, config.seed));
  backend_ = std::make_unique<store::BackendCluster>(
      topology_->num_regions(), config.codec,
      std::make_shared<ec::RoundRobinPlacement>(
          config.per_key_placement_offset));
  if (config.store_payloads) {
    store::populate_working_set(*backend_, config.num_objects,
                                config.object_size_bytes);
  } else {
    for (std::size_t i = 0; i < config.num_objects; ++i) {
      backend_->register_object("object" + std::to_string(i),
                                config.object_size_bytes);
    }
  }
}

StrategySpec StrategySpec::backend() {
  return StrategySpec{Kind::kBackend, 0, 0};
}
StrategySpec StrategySpec::lru(std::size_t chunks, std::size_t cache_bytes) {
  return StrategySpec{Kind::kLru, chunks, cache_bytes};
}
StrategySpec StrategySpec::lfu(std::size_t chunks, std::size_t cache_bytes) {
  return StrategySpec{Kind::kLfu, chunks, cache_bytes};
}
StrategySpec StrategySpec::lfu_eviction(std::size_t chunks,
                                        std::size_t cache_bytes) {
  return StrategySpec{Kind::kLfuEviction, chunks, cache_bytes};
}
StrategySpec StrategySpec::tinylfu(std::size_t chunks,
                                   std::size_t cache_bytes) {
  return StrategySpec{Kind::kTinyLfu, chunks, cache_bytes};
}
StrategySpec StrategySpec::agar(std::size_t cache_bytes) {
  return StrategySpec{Kind::kAgar, 0, cache_bytes};
}

std::string StrategySpec::label() const {
  switch (kind) {
    case Kind::kBackend: return "Backend";
    case Kind::kLru: return "LRU-" + std::to_string(chunks);
    case Kind::kLfu: return "LFU-" + std::to_string(chunks);
    case Kind::kLfuEviction: return "LFUev-" + std::to_string(chunks);
    case Kind::kTinyLfu: return "TinyLFU-" + std::to_string(chunks);
    case Kind::kAgar: return "Agar";
  }
  return "?";
}

std::unique_ptr<ReadStrategy> make_strategy(const ExperimentConfig& config,
                                            const StrategySpec& spec,
                                            Deployment& deployment) {
  return make_strategy(config, spec, deployment, config.client_region,
                       nullptr);
}

std::unique_ptr<ReadStrategy> make_strategy(const ExperimentConfig& config,
                                            const StrategySpec& spec,
                                            Deployment& deployment,
                                            RegionId client_region,
                                            sim::EventLoop* loop) {
  ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.loop = loop;
  ctx.region = client_region;
  ctx.decode_ms_per_mb = config.decode_ms_per_mb;
  ctx.verify_data = config.verify_data;

  switch (spec.kind) {
    case StrategySpec::Kind::kBackend:
      return std::make_unique<BackendStrategy>(ctx);
    case StrategySpec::Kind::kLru: {
      FixedChunksParams p;
      p.policy = Policy::kLru;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kLfu: {
      LfuConfigParams p;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.reconfig_period_ms = config.reconfig_period_ms;
      return std::make_unique<LfuConfigStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kLfuEviction: {
      FixedChunksParams p;
      p.policy = Policy::kLfu;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.proxy_overhead_ms = 0.5;  // frequency-tracking proxy (paper §V-A)
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kTinyLfu: {
      FixedChunksParams p;
      p.policy = Policy::kTinyLfu;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.proxy_overhead_ms = 0.5;
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kAgar: {
      core::AgarNodeParams p;
      p.region = client_region;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.reconfig_period_ms = config.reconfig_period_ms;
      p.cache_manager.candidate_weights = config.agar_candidate_weights;
      p.cache_manager.cache_latency_ms =
          deployment.network().model().params().cache_base_ms;
      return std::make_unique<AgarStrategy>(ctx, p);
    }
  }
  throw std::invalid_argument("make_strategy: unknown kind");
}

namespace {

/// Mix a per-(run, region, client) workload seed. Region index 0 client c
/// reduces to the historical single-region formula, so single-region runs
/// replay the seed repo's exact key streams.
std::uint64_t workload_seed(std::uint64_t run_seed, std::size_t region_index,
                            std::size_t client) {
  return run_seed * 1315423911ULL + region_index * 1000000007ULL + client;
}

RunResult run_once(const ExperimentConfig& config, const StrategySpec& spec,
                   std::uint64_t run_seed) {
  DeploymentConfig dep_config = config.deployment;
  dep_config.seed = run_seed;
  // Latency-only experiments skip payload materialization entirely.
  dep_config.store_payloads = config.verify_data;
  Deployment deployment(dep_config);
  deployment.network().set_max_outstanding_per_region(
      config.max_outstanding_per_region);

  sim::EventLoop loop;
  deployment.network().bind_loop(&loop);

  // One strategy instance (for Agar: one AgarNode) per client region.
  const std::vector<RegionId> regions = config.effective_client_regions();
  std::vector<std::unique_ptr<ReadStrategy>> strategies;
  strategies.reserve(regions.size());
  for (const RegionId region : regions) {
    auto strategy = make_strategy(config, spec, deployment, region, &loop);
    strategy->warm_up();
    strategy->attach_to_loop(loop);
    strategies.push_back(std::move(strategy));
  }

  RunResult result;
  const std::size_t ops_total = config.ops_per_run;
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::size_t reads_in_flight = 0;

  auto record = [&](const ReadResult& r) {
    result.latencies.add(r.latency_ms);
    ++result.ops;
    if (r.full_hit) ++result.full_hits;
    if (r.partial_hit && !r.full_hit) ++result.partial_hits;
    if (r.verified) ++result.verified;
    ++completed;
    --reads_in_flight;
    result.duration_ms = std::max(result.duration_ms, loop.now());
  };
  auto begin_read = [&](std::size_t region_index, Workload& workload,
                        ReadStrategy::ReadCallback done) {
    ++issued;
    ++reads_in_flight;
    result.max_reads_in_flight =
        std::max(result.max_reads_in_flight, reads_in_flight);
    strategies[region_index]->start_read(workload.next_key(),
                                         std::move(done));
  };

  // Client state is heap-held and owns its own issue/arrival closure: the
  // closures re-schedule themselves, so they must outlive this setup scope
  // and have a stable address for the events already in the queue.
  struct ClientState {
    std::size_t region_index;
    Workload workload;
    Rng gaps;                   // open loop: inter-arrival draws
    std::size_t remaining = 0;  // open loop: arrivals left for this region
    std::function<void()> next;
  };
  std::vector<std::unique_ptr<ClientState>> clients;

  if (config.arrival_rate_per_s > 0.0) {
    // Open-loop mode: one Poisson arrival process per region; reads start
    // at exponentially distributed instants regardless of completions, so
    // load is applied even while earlier reads are still in flight.
    const SimTimeMs mean_gap_ms = 1000.0 / config.arrival_rate_per_s;
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      // Split the op budget across regions; the first region absorbs the
      // remainder so totals always match ops_per_run.
      const std::size_t budget = ops_total / regions.size() +
                                 (ri == 0 ? ops_total % regions.size() : 0);
      clients.push_back(std::make_unique<ClientState>(ClientState{
          ri,
          Workload(config.workload, config.deployment.num_objects,
                   workload_seed(run_seed, ri, 0)),
          Rng(workload_seed(run_seed, ri, 7777)), budget, {}}));
      ClientState* state = clients.back().get();
      state->next = [&, state, mean_gap_ms]() {
        if (state->remaining == 0) return;
        --state->remaining;
        begin_read(state->region_index, state->workload, record);
        if (state->remaining > 0) {
          const double u = state->gaps.next_double();
          const SimTimeMs gap = -mean_gap_ms * std::log(1.0 - u);
          loop.schedule_in(gap, state->next);
        }
      };
      loop.schedule_in(0.0, state->next);
    }
  } else {
    // Closed-loop clients: each issues its next read when the previous one
    // completes (the paper's YCSB clients are closed-loop).
    const std::size_t per_region = std::max<std::size_t>(1, config.num_clients);
    for (std::size_t ri = 0; ri < regions.size(); ++ri) {
      for (std::size_t c = 0; c < per_region; ++c) {
        clients.push_back(std::make_unique<ClientState>(ClientState{
            ri,
            Workload(config.workload, config.deployment.num_objects,
                     workload_seed(run_seed, ri, c)),
            Rng(0), 0, {}}));
        ClientState* state = clients.back().get();
        state->next = [&, state]() {
          if (issued >= ops_total) return;
          begin_read(state->region_index, state->workload,
                     [&, state](const ReadResult& r) {
                       record(r);
                       state->next();
                     });
        };
        loop.schedule_in(0.0, state->next);
      }
    }
  }

  // The periodic reconfiguration re-arms forever; cut it off once every
  // read has completed by draining with a bounded horizon.
  while (!loop.empty() && completed < ops_total) {
    loop.run_until(loop.now() + 1000.0);
  }

  // Aggregate pipeline gauges: network-wide plus per-strategy coalescing.
  result.wire_fetches = deployment.network().wire_fetches();
  result.queued_fetches = deployment.network().queued_fetches();
  result.max_queue_depth = deployment.network().max_queue_depth();
  result.max_net_in_flight = deployment.network().max_in_flight();
  for (const auto& strategy : strategies) {
    result.coalesced_fetches += strategy->fetch_coordinator().coalesced();
  }

  // Final snapshots (primary region's strategy, as before).
  ReadStrategy* primary = strategies.front().get();
  if (auto* agar = dynamic_cast<AgarStrategy*>(primary)) {
    result.cache_stats = agar->node().cache().stats();
    result.cache_used_bytes = agar->node().cache().used_bytes();
    result.weight_histogram =
        agar->node().cache_manager().current().weight_histogram();
  } else if (auto* fixed = dynamic_cast<FixedChunksStrategy*>(primary)) {
    result.cache_stats = fixed->engine().stats();
    result.cache_used_bytes = fixed->engine().used_bytes();
  } else if (auto* lfu = dynamic_cast<LfuConfigStrategy*>(primary)) {
    result.cache_stats = lfu->cache().stats();
    result.cache_used_bytes = lfu->cache().used_bytes();
  }
  return result;
}

}  // namespace

double ExperimentResult::mean_latency_ms() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.mean_latency_ms();
  return acc / static_cast<double>(runs.size());
}

double ExperimentResult::stddev_of_means() const {
  if (runs.size() < 2) return 0.0;
  const double m = mean_latency_ms();
  double acc = 0.0;
  for (const auto& r : runs) {
    const double d = r.mean_latency_ms() - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(runs.size() - 1));
}

double ExperimentResult::hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits + r.partial_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::full_hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::percentile_ms(double q) const {
  stats::Histogram merged;
  for (const auto& r : runs) merged.merge(r.latencies);
  return merged.percentile(q);
}

std::uint64_t ExperimentResult::total_ops() const {
  std::uint64_t ops = 0;
  for (const auto& r : runs) ops += r.ops;
  return ops;
}

double ExperimentResult::mean_throughput_ops_per_s() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.throughput_ops_per_s();
  return acc / static_cast<double>(runs.size());
}

std::uint64_t ExperimentResult::total_coalesced_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.coalesced_fetches;
  return acc;
}

std::uint64_t ExperimentResult::total_wire_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.wire_fetches;
  return acc;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const StrategySpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  result.runs.reserve(config.runs);
  for (std::size_t r = 0; r < config.runs; ++r) {
    const std::uint64_t run_seed =
        config.deployment.seed + r * 1000003ULL;
    result.runs.push_back(run_once(config, spec, run_seed));
  }
  log_info("runner") << spec.label() << ": mean "
                     << result.mean_latency_ms() << " ms, hit ratio "
                     << result.hit_ratio();
  return result;
}

std::vector<ExperimentResult> run_comparison(
    const ExperimentConfig& config, const std::vector<StrategySpec>& specs) {
  std::vector<ExperimentResult> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) {
    out.push_back(run_experiment(config, spec));
  }
  return out;
}

}  // namespace agar::client
