#include "client/runner.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "api/registry.hpp"
#include "collab/collab.hpp"
#include "common/logging.hpp"
#include "scenario/engine.hpp"
#include "sim/event_loop.hpp"
#include "sim/sharded_engine.hpp"
#include "stats/windowed.hpp"

namespace agar::client {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  topology_ = std::make_unique<sim::Topology>(sim::aws_six_regions());
  network_ = std::make_unique<sim::Network>(
      sim::LatencyModel(topology_.get(), config.latency, config.seed));
  backend_ = std::make_unique<store::BackendCluster>(
      topology_->num_regions(), config.codec,
      std::make_shared<ec::RoundRobinPlacement>(
          config.per_key_placement_offset));
  if (config.store_payloads) {
    store::populate_working_set(*backend_, config.num_objects,
                                config.object_size_bytes);
  } else {
    for (std::size_t i = 0; i < config.num_objects; ++i) {
      backend_->register_object("object" + std::to_string(i),
                                config.object_size_bytes);
    }
  }
}

void Deployment::bind_lanes(const std::vector<RegionId>& lane_regions) {
  lane_regions_ = lane_regions;
  lane_networks_.clear();
  lane_codecs_.clear();
  for (std::size_t lane = 1; lane < lane_regions_.size(); ++lane) {
    // Each extra lane draws from its own deterministic latency RNG stream.
    const std::uint64_t lane_seed =
        config_.seed + 0x9E3779B97F4A7C15ULL * lane;
    lane_networks_.push_back(std::make_unique<sim::Network>(
        sim::LatencyModel(topology_.get(), config_.latency, lane_seed)));
    lane_codecs_.push_back(std::make_unique<ec::ObjectCodec>(config_.codec));
  }
}

namespace {

/// Per-(run, region, client) workload seed — the exported mixing formula,
/// aliased so the call sites below read as before.
std::uint64_t workload_seed(std::uint64_t run_seed, std::size_t region_index,
                            std::size_t client) {
  return workload_stream_seed(run_seed, region_index, client);
}

RunResult run_once(const ExperimentConfig& config,
                   const StrategyFactory& factory, std::uint64_t run_seed) {
  DeploymentConfig dep_config = config.deployment;
  dep_config.seed = run_seed;
  // Latency-only experiments skip payload materialization entirely.
  dep_config.store_payloads = config.verify_data;
  Deployment deployment(dep_config);

  // One lane per client region. Lanes share no mutable simulation state
  // (own network partition, own RNG streams, own strategy/clients/stats),
  // so the sharded engine can execute them on any number of worker threads
  // and the merged event order — hence every result byte — is identical.
  const std::vector<RegionId> regions = config.effective_client_regions();
  const std::size_t num_lanes = regions.size();
  deployment.bind_lanes(regions);
  sim::ShardedEngine engine(config.shards, num_lanes);

  // Cooperative cache tier: one runtime per run, spanning every lane.
  // collab=none builds nothing — the historical isolated-cache path, with
  // byte-identical output.
  std::unique_ptr<collab::CollabRuntime> collab_rt;
  if (config.collab != "none") {
    const auto settings = api::CollabRegistry::instance().create(
        config.collab, api::CollabContext{}, config.collab_params);
    if (settings != nullptr && settings->enabled) {
      std::vector<sim::Network*> lane_nets;
      lane_nets.reserve(num_lanes);
      for (std::size_t i = 0; i < num_lanes; ++i) {
        lane_nets.push_back(&deployment.lane_network(i));
      }
      collab_rt = std::make_unique<collab::CollabRuntime>(
          *settings, &engine, &deployment.topology(), regions,
          std::move(lane_nets));
    }
  }
  collab::CollabRuntime* const crt = collab_rt.get();

  const std::size_t ops_total = config.ops_per_run;
  const SimTimeMs window_ms = config.metric_window_ms;

  struct WindowCounters {
    std::uint64_t ops = 0, full = 0, partial = 0, failed = 0, degraded = 0;
    std::uint64_t peer_hits = 0, stale = 0;  // collab tier only
  };
  // Client state is heap-held and owns its own issue/arrival closure: the
  // closures re-schedule themselves, so they must outlive the setup scope
  // and have a stable address for the events already in the queue.
  struct ClientState {
    Workload workload;
    Rng gaps;                   // open loop: inter-arrival draws
    std::size_t remaining = 0;  // open loop: arrivals left for this region
    std::function<void()> next;
  };
  /// Everything one lane mutates while it runs — touched only by the shard
  /// thread that owns the lane, then merged in lane order afterwards.
  struct LaneState {
    RunResult partial;
    std::size_t issued = 0;
    std::size_t completed = 0;
    std::size_t reads_in_flight = 0;
    std::size_t budget = 0;  // closed-loop op cap for this lane
    std::unique_ptr<stats::WindowedHistogram> window_latencies;
    std::vector<WindowCounters> window_counters;
    std::unique_ptr<scenario::ScenarioEngine> scenario;
    std::vector<std::unique_ptr<ClientState>> clients;
    std::unique_ptr<ReadStrategy> strategy;
  };
  std::vector<LaneState> lanes(num_lanes);  // never resized: stable refs

  for (std::size_t ri = 0; ri < num_lanes; ++ri) {
    LaneState& lane = lanes[ri];
    sim::EventLoop& loop = engine.loop_of_lane(ri);
    // Events scheduled during this lane's setup — and everything causally
    // derived from them at run time — carry this lane's ordering key.
    loop.set_scheduling_lane(static_cast<sim::EventLoop::LaneId>(ri));
    loop.reserve(1024);

    sim::Network& network = deployment.lane_network(ri);
    network.set_max_outstanding_per_region(config.max_outstanding_per_region);
    network.bind_loop(&loop);

    // Split the op budget across lanes; lane 0 absorbs the remainder so
    // totals always match ops_per_run.
    lane.budget =
        ops_total / num_lanes + (ri == 0 ? ops_total % num_lanes : 0);
    if (window_ms > 0.0) {
      lane.window_latencies =
          std::make_unique<stats::WindowedHistogram>(window_ms);
    }

    // One strategy instance (for Agar: one AgarNode) per client region.
    auto strategy = factory(config, deployment, regions[ri], &loop);
    strategy->warm_up();
    // The collab tier hooks in between warm-up and loop attachment: the
    // peer-fetch transport and planner hooks must be installed before the
    // first reconfiguration, and the broadcast timer is scheduled here so
    // it carries this lane's ordering key.
    if (crt != nullptr) crt->attach(ri, *strategy);
    strategy->attach_to_loop(loop);
    lane.strategy = std::move(strategy);

    // Scenario engine, one per lane: scripted network events apply to this
    // lane's network partition, popularity shifts rewrite this lane's
    // clients, arrival modulation is sampled when gaps are drawn. The hook
    // captures the lane — its client vector fills in just below, before
    // any event can fire.
    if (!config.scenario.empty()) {
      lane.scenario = std::make_unique<scenario::ScenarioEngine>(
          config.scenario, &network,
          [&lane](const scenario::PopularityShift& shift) {
            for (auto& client : lane.clients) client->workload.apply(shift);
          });
      if (crt != nullptr) {
        // Partitions cut collab traffic only, so the hook targets the
        // collab runtime; each lane's engine fires the same script, giving
        // every lane its own consistent copy of the partition state.
        lane.scenario->set_partition_hook(
            [crt, ri](const std::vector<RegionId>& group) {
              if (group.empty()) {
                crt->heal_partition(ri);
              } else {
                crt->set_partition(ri, group);
              }
            });
      }
      lane.scenario->schedule(loop);
    }
    scenario::ScenarioEngine* const scenario_engine = lane.scenario.get();

    auto record = [&lane, &loop, crt, ri](const ReadResult& r) {
      RunResult& res = lane.partial;
      ++res.ops;
      if (crt != nullptr) crt->note_read(ri);
      if (r.failed) {
        ++res.failed_reads;
      } else {
        res.latencies.add(r.latency_ms);
        if (r.full_hit) ++res.full_hits;
        if (r.partial_hit && !r.full_hit) ++res.partial_hits;
        if (r.verified) ++res.verified;
        if (r.degraded) ++res.degraded_reads;
      }
      if (lane.window_latencies != nullptr) {
        const std::size_t w = lane.window_latencies->index_of(loop.now());
        lane.window_latencies->ensure(w);
        if (lane.window_counters.size() <= w) {
          lane.window_counters.resize(w + 1);
        }
        WindowCounters& wc = lane.window_counters[w];
        ++wc.ops;
        if (r.failed) {
          ++wc.failed;
        } else {
          lane.window_latencies->add(loop.now(), r.latency_ms);
          if (r.full_hit) ++wc.full;
          if (r.partial_hit && !r.full_hit) ++wc.partial;
          if (r.degraded) ++wc.degraded;
        }
        if (crt != nullptr) {
          // Drain the collab slice accumulated since the last completion
          // into the window this completion lands in.
          wc.peer_hits += crt->take_window_peer_hits(ri);
          wc.stale += crt->take_window_stale_reads(ri);
        }
      }
      ++lane.completed;
      --lane.reads_in_flight;
      res.duration_ms = std::max(res.duration_ms, loop.now());
    };
    auto begin_read = [&lane](Workload& workload,
                              ReadStrategy::ReadCallback done) {
      ++lane.issued;
      ++lane.reads_in_flight;
      lane.partial.max_reads_in_flight =
          std::max(lane.partial.max_reads_in_flight, lane.reads_in_flight);
      lane.strategy->start_read(workload.next_key(), std::move(done));
    };

    if (config.arrival_rate_per_s > 0.0) {
      // Open-loop mode: one Poisson arrival process per region; reads
      // start at exponentially distributed instants regardless of
      // completions, so load is applied even while earlier reads are
      // still in flight.
      const SimTimeMs mean_gap_ms = 1000.0 / config.arrival_rate_per_s;
      lane.clients.push_back(std::make_unique<ClientState>(ClientState{
          Workload(config.workload, config.deployment.num_objects,
                   workload_seed(run_seed, ri, 0)),
          Rng(workload_seed(run_seed, ri, 7777)), lane.budget, {}}));
      ClientState* state = lane.clients.back().get();
      state->next = [state, begin_read, record, mean_gap_ms, scenario_engine,
                     &loop]() {
        if (state->remaining == 0) return;
        --state->remaining;
        begin_read(state->workload, record);
        if (state->remaining > 0) {
          const double u = state->gaps.next_double();
          // Scenario arrival modulation scales the instantaneous rate:
          // the mean gap shrinks (surge) or stretches (lull) by the
          // multiplier in force when this gap is drawn.
          const double rate_mult =
              scenario_engine != nullptr
                  ? scenario_engine->arrival_multiplier(loop.now())
                  : 1.0;
          const SimTimeMs gap = -mean_gap_ms * std::log(1.0 - u) / rate_mult;
          loop.schedule_in(gap, state->next);
        }
      };
      loop.schedule_in(0.0, state->next);
    } else {
      // Closed-loop clients: each issues its next read when the previous
      // one completes (the paper's YCSB clients are closed-loop).
      const std::size_t per_region =
          std::max<std::size_t>(1, config.num_clients);
      for (std::size_t c = 0; c < per_region; ++c) {
        lane.clients.push_back(std::make_unique<ClientState>(ClientState{
            Workload(config.workload, config.deployment.num_objects,
                     workload_seed(run_seed, ri, c)),
            Rng(0), 0, {}}));
        ClientState* state = lane.clients.back().get();
        state->next = [&lane, state, begin_read, record]() {
          if (lane.issued >= lane.budget) return;
          begin_read(state->workload,
                     [state, record](const ReadResult& r) {
                       record(r);
                       state->next();
                     });
        };
        loop.schedule_in(0.0, state->next);
      }
    }
  }

  // Drive the engine in whole 1 s windows until every read has completed
  // (the periodic reconfiguration re-arms forever, so idleness alone never
  // ends a run). The stop predicate runs at window boundaries while all
  // shards are quiescent at the barrier.
  engine.run_windows(1000.0, [&lanes, ops_total] {
    std::size_t completed = 0;
    for (const LaneState& lane : lanes) completed += lane.completed;
    return completed >= ops_total;
  });

  RunResult result;

  // Materialize the windowed time series: per-window histograms merged
  // across lanes in lane order, counters alongside, empty windows kept so
  // indices map to virtual time.
  if (window_ms > 0.0) {
    std::size_t n = 0;
    for (const LaneState& lane : lanes) {
      if (lane.window_latencies != nullptr) {
        n = std::max(n, lane.window_latencies->size());
      }
      n = std::max(n, lane.window_counters.size());
    }
    result.windows.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      WindowStats ws;
      ws.start_ms = static_cast<double>(w) * window_ms;
      ws.end_ms = ws.start_ms + window_ms;
      stats::Histogram merged;
      for (const LaneState& lane : lanes) {
        if (w < lane.window_counters.size()) {
          const WindowCounters& wc = lane.window_counters[w];
          ws.ops += wc.ops;
          ws.full_hits += wc.full;
          ws.partial_hits += wc.partial;
          ws.failed_reads += wc.failed;
          ws.degraded_reads += wc.degraded;
          ws.collab_peer_hits += wc.peer_hits;
          ws.collab_stale_reads += wc.stale;
        }
        if (lane.window_latencies != nullptr &&
            w < lane.window_latencies->size()) {
          merged.merge(lane.window_latencies->window(w));
        }
      }
      if (merged.count() > 0) {
        ws.mean_ms = merged.mean();
        ws.p50_ms = merged.percentile(50);
        ws.p99_ms = merged.percentile(99);
      }
      result.windows.push_back(ws);
    }
  }
  // Every lane's engine fires the same script; report one copy, as before.
  if (lanes.front().scenario != nullptr) {
    result.scenario_events_fired = lanes.front().scenario->fired();
  }

  // Merge lane results in lane order (float accumulation order is part of
  // the determinism contract), then the per-lane pipeline gauges: peaks
  // that were per-region stay maxima, per-lane concurrency peaks sum.
  std::vector<double> ewma_sum, ewma_weight;  // per region, across lanes
  bool any_policy = false;
  for (std::size_t ri = 0; ri < num_lanes; ++ri) {
    LaneState& lane = lanes[ri];
    const RunResult& p = lane.partial;
    result.latencies.merge(p.latencies);
    result.ops += p.ops;
    result.full_hits += p.full_hits;
    result.partial_hits += p.partial_hits;
    result.verified += p.verified;
    result.failed_reads += p.failed_reads;
    result.degraded_reads += p.degraded_reads;
    result.duration_ms = std::max(result.duration_ms, p.duration_ms);
    result.max_reads_in_flight += p.max_reads_in_flight;

    sim::Network& network = deployment.lane_network(ri);
    result.wire_fetches += network.wire_fetches();
    result.queued_fetches += network.queued_fetches();
    result.max_queue_depth =
        std::max(result.max_queue_depth, network.max_queue_depth());
    result.max_net_in_flight += network.max_in_flight();
    result.aborted_on_wire += network.aborted_on_wire();
    result.failed_in_queue += network.failed_in_queue();
    result.timed_out_fetches += network.timed_out();

    result.coalesced_fetches += lane.strategy->fetch_coordinator().coalesced();
    const core::ControlPlaneStats cp = lane.strategy->control_plane_stats();
    result.reconfigurations += cp.reconfigurations;
    result.planning_ms += cp.planning_ms;
    result.config_chunks_installed += cp.chunks_installed;
    result.config_chunks_evicted += cp.chunks_evicted;

    if (const FetchPolicy* policy = lane.strategy->fetch_policy()) {
      any_policy = true;
      const FetchPolicyStats& fs = policy->stats();
      result.fetch_attempts += fs.attempts;
      result.fetch_timeouts += fs.timeouts;
      result.fetch_retries += fs.retries;
      result.hedges_issued += fs.hedges_issued;
      result.hedges_won += fs.hedges_won;
      result.hedges_wasted += fs.hedges_wasted;
      result.fetch_exhausted += fs.exhausted;
      if (ewma_sum.size() < policy->num_regions()) {
        ewma_sum.resize(policy->num_regions(), 0.0);
        ewma_weight.resize(policy->num_regions(), 0.0);
      }
      // Sample-weighted merge, in lane order: a lane that fetched more from
      // a region moves that region's merged health estimate more.
      for (RegionId r = 0; r < policy->num_regions(); ++r) {
        const auto w = static_cast<double>(policy->region_samples(r));
        ewma_sum[r] += w * policy->region_success_ewma(r);
        ewma_weight[r] += w;
      }
    }
  }
  if (any_policy) {
    result.region_success_ewma.reserve(ewma_sum.size());
    for (std::size_t r = 0; r < ewma_sum.size(); ++r) {
      // No samples anywhere: report the EWMA's healthy prior.
      result.region_success_ewma.push_back(
          ewma_weight[r] > 0.0 ? ewma_sum[r] / ewma_weight[r] : 1.0);
    }
  }

  // Cooperative-tier summary: lane-order merge of the per-lane counters
  // plus the config log / overlap state that exists once per run.
  if (crt != nullptr) {
    std::vector<ReadStrategy*> strategies;
    strategies.reserve(num_lanes);
    for (LaneState& lane : lanes) strategies.push_back(lane.strategy.get());
    const collab::CollabRuntime::Summary s = crt->summarize(strategies);
    result.collab_active = true;
    result.collab_peer_hits = s.peer_hits;
    result.collab_peer_misses = s.peer_misses;
    result.collab_bytes_from_peers = s.bytes_from_peers;
    result.collab_bytes_from_backend = s.bytes_from_backend;
    result.stale_config_reads = s.stale_config_reads;
    result.paxos_appends = s.paxos_appends;
    result.paxos_append_failures = s.paxos_append_failures;
    result.paxos_append_p50_ms = s.paxos_append_p50_ms;
    result.paxos_append_p99_ms = s.paxos_append_p99_ms;
    result.config_epochs = s.config_epochs;
    result.config_overlap = s.config_overlap;
  }

  // Final snapshots through the observability hooks every strategy
  // exposes (primary region's strategy, as before) — the runner needs no
  // knowledge of concrete strategy types.
  ReadStrategy* primary = lanes.front().strategy.get();
  if (const cache::CacheEngine* cache_engine = primary->cache_engine()) {
    result.cache_stats = cache_engine->stats();
    result.cache_used_bytes = cache_engine->used_bytes();
  }
  result.weight_histogram = primary->config_weight_histogram();
  // Lane 0 decodes on the backend's codec, further lanes on their clones;
  // the report is the sum over all decode-plan caches.
  result.decode_plan_hits =
      deployment.backend().codec().rs().decode_plan_hits();
  result.decode_plan_misses =
      deployment.backend().codec().rs().decode_plan_misses();
  for (std::size_t ri = 1; ri < num_lanes; ++ri) {
    result.decode_plan_hits += deployment.lane_codec(ri).rs().decode_plan_hits();
    result.decode_plan_misses +=
        deployment.lane_codec(ri).rs().decode_plan_misses();
  }
  return result;
}

}  // namespace

double ExperimentResult::mean_latency_ms() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.mean_latency_ms();
  return acc / static_cast<double>(runs.size());
}

double ExperimentResult::stddev_of_means() const {
  if (runs.size() < 2) return 0.0;
  const double m = mean_latency_ms();
  double acc = 0.0;
  for (const auto& r : runs) {
    const double d = r.mean_latency_ms() - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(runs.size() - 1));
}

double ExperimentResult::hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits + r.partial_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::full_hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::percentile_ms(double q) const {
  stats::Histogram merged;
  for (const auto& r : runs) merged.merge(r.latencies);
  // No completed reads (e.g. a daemon route that never saw traffic):
  // report 0 rather than throwing, matching mean_latency_ms.
  if (merged.count() == 0) return 0.0;
  return merged.percentile(q);
}

std::uint64_t ExperimentResult::total_ops() const {
  std::uint64_t ops = 0;
  for (const auto& r : runs) ops += r.ops;
  return ops;
}

double ExperimentResult::mean_throughput_ops_per_s() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.throughput_ops_per_s();
  return acc / static_cast<double>(runs.size());
}

std::uint64_t ExperimentResult::total_coalesced_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.coalesced_fetches;
  return acc;
}

std::uint64_t ExperimentResult::total_wire_fetches() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.wire_fetches;
  return acc;
}

std::uint64_t ExperimentResult::total_reconfigurations() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) acc += r.reconfigurations;
  return acc;
}

double ExperimentResult::total_planning_ms() const {
  double acc = 0.0;
  for (const auto& r : runs) acc += r.planning_ms;
  return acc;
}

std::uint64_t ExperimentResult::total_config_churn() const {
  std::uint64_t acc = 0;
  for (const auto& r : runs) {
    acc += r.config_chunks_installed + r.config_chunks_evicted;
  }
  return acc;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const StrategyFactory& factory,
                                std::string label) {
  if (!factory) {
    throw std::invalid_argument("run_experiment: null strategy factory");
  }
  ExperimentResult result;
  // Reports print/serialize the label verbatim; never leave it blank.
  result.label = label.empty() ? "experiment" : std::move(label);
  result.runs.reserve(config.runs);
  for (std::size_t r = 0; r < config.runs; ++r) {
    const std::uint64_t run_seed =
        config.deployment.seed + r * 1000003ULL;
    result.runs.push_back(run_once(config, factory, run_seed));
  }
  log_info("runner") << result.label << ": mean " << result.mean_latency_ms()
                     << " ms, hit ratio " << result.hit_ratio();
  return result;
}

}  // namespace agar::client
