#include "client/runner.hpp"

#include <cmath>
#include <stdexcept>

#include "client/agar_strategy.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/lfu_config_strategy.hpp"
#include "common/logging.hpp"
#include "sim/event_loop.hpp"

namespace agar::client {

Deployment::Deployment(const DeploymentConfig& config) : config_(config) {
  topology_ = std::make_unique<sim::Topology>(sim::aws_six_regions());
  network_ = std::make_unique<sim::Network>(
      sim::LatencyModel(topology_.get(), config.latency, config.seed));
  backend_ = std::make_unique<store::BackendCluster>(
      topology_->num_regions(), config.codec,
      std::make_shared<ec::RoundRobinPlacement>(
          config.per_key_placement_offset));
  if (config.store_payloads) {
    store::populate_working_set(*backend_, config.num_objects,
                                config.object_size_bytes);
  } else {
    for (std::size_t i = 0; i < config.num_objects; ++i) {
      backend_->register_object("object" + std::to_string(i),
                                config.object_size_bytes);
    }
  }
}

StrategySpec StrategySpec::backend() {
  return StrategySpec{Kind::kBackend, 0, 0};
}
StrategySpec StrategySpec::lru(std::size_t chunks, std::size_t cache_bytes) {
  return StrategySpec{Kind::kLru, chunks, cache_bytes};
}
StrategySpec StrategySpec::lfu(std::size_t chunks, std::size_t cache_bytes) {
  return StrategySpec{Kind::kLfu, chunks, cache_bytes};
}
StrategySpec StrategySpec::lfu_eviction(std::size_t chunks,
                                        std::size_t cache_bytes) {
  return StrategySpec{Kind::kLfuEviction, chunks, cache_bytes};
}
StrategySpec StrategySpec::tinylfu(std::size_t chunks,
                                   std::size_t cache_bytes) {
  return StrategySpec{Kind::kTinyLfu, chunks, cache_bytes};
}
StrategySpec StrategySpec::agar(std::size_t cache_bytes) {
  return StrategySpec{Kind::kAgar, 0, cache_bytes};
}

std::string StrategySpec::label() const {
  switch (kind) {
    case Kind::kBackend: return "Backend";
    case Kind::kLru: return "LRU-" + std::to_string(chunks);
    case Kind::kLfu: return "LFU-" + std::to_string(chunks);
    case Kind::kLfuEviction: return "LFUev-" + std::to_string(chunks);
    case Kind::kTinyLfu: return "TinyLFU-" + std::to_string(chunks);
    case Kind::kAgar: return "Agar";
  }
  return "?";
}

std::unique_ptr<ReadStrategy> make_strategy(const ExperimentConfig& config,
                                            const StrategySpec& spec,
                                            Deployment& deployment) {
  ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.region = config.client_region;
  ctx.decode_ms_per_mb = config.decode_ms_per_mb;
  ctx.verify_data = config.verify_data;

  switch (spec.kind) {
    case StrategySpec::Kind::kBackend:
      return std::make_unique<BackendStrategy>(ctx);
    case StrategySpec::Kind::kLru: {
      FixedChunksParams p;
      p.policy = Policy::kLru;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kLfu: {
      LfuConfigParams p;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.reconfig_period_ms = config.reconfig_period_ms;
      return std::make_unique<LfuConfigStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kLfuEviction: {
      FixedChunksParams p;
      p.policy = Policy::kLfu;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.proxy_overhead_ms = 0.5;  // frequency-tracking proxy (paper §V-A)
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kTinyLfu: {
      FixedChunksParams p;
      p.policy = Policy::kTinyLfu;
      p.chunks_per_object = spec.chunks;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.proxy_overhead_ms = 0.5;
      return std::make_unique<FixedChunksStrategy>(ctx, p);
    }
    case StrategySpec::Kind::kAgar: {
      core::AgarNodeParams p;
      p.region = config.client_region;
      p.cache_capacity_bytes = spec.cache_bytes;
      p.reconfig_period_ms = config.reconfig_period_ms;
      p.cache_manager.candidate_weights = config.agar_candidate_weights;
      p.cache_manager.cache_latency_ms =
          deployment.network().model().params().cache_base_ms;
      return std::make_unique<AgarStrategy>(ctx, p);
    }
  }
  throw std::invalid_argument("make_strategy: unknown kind");
}

namespace {

RunResult run_once(const ExperimentConfig& config, const StrategySpec& spec,
                   std::uint64_t run_seed) {
  DeploymentConfig dep_config = config.deployment;
  dep_config.seed = run_seed;
  // Latency-only experiments skip payload materialization entirely.
  dep_config.store_payloads = config.verify_data;
  Deployment deployment(dep_config);

  auto strategy = make_strategy(config, spec, deployment);
  strategy->warm_up();

  sim::EventLoop loop;
  strategy->attach_to_loop(loop);

  RunResult result;
  // Closed-loop clients: each issues its next read when the previous one
  // completes (the paper's YCSB clients are closed-loop).
  const std::size_t clients = std::max<std::size_t>(1, config.num_clients);
  const std::size_t ops_total = config.ops_per_run;
  std::size_t issued = 0;
  std::size_t completed = 0;

  struct ClientState {
    Workload workload;
  };
  std::vector<ClientState> client_states;
  client_states.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_states.push_back(ClientState{
        Workload(config.workload, config.deployment.num_objects,
                 run_seed * 1315423911ULL + c)});
  }

  // One lambda per client, rescheduling itself until the op budget is gone.
  std::function<void(std::size_t)> issue = [&](std::size_t c) {
    if (issued >= ops_total) return;
    ++issued;
    const ObjectKey key = client_states[c].workload.next_key();
    const ReadResult r = strategy->read(key);
    result.latencies.add(r.latency_ms);
    ++result.ops;
    if (r.full_hit) ++result.full_hits;
    if (r.partial_hit && !r.full_hit) ++result.partial_hits;
    if (r.verified) ++result.verified;
    ++completed;
    loop.schedule_in(r.latency_ms, [&, c] { issue(c); });
  };
  for (std::size_t c = 0; c < clients; ++c) {
    loop.schedule_in(0.0, [&, c] { issue(c); });
  }

  // The periodic reconfiguration re-arms forever; cut it off once every
  // client is done by draining with a horizon just past the last read.
  while (!loop.empty() && completed < ops_total) {
    loop.run_until(loop.now() + 1000.0);
  }

  // Final snapshots.
  if (auto* agar = dynamic_cast<AgarStrategy*>(strategy.get())) {
    result.cache_stats = agar->node().cache().stats();
    result.cache_used_bytes = agar->node().cache().used_bytes();
    result.weight_histogram =
        agar->node().cache_manager().current().weight_histogram();
  } else if (auto* fixed =
                 dynamic_cast<FixedChunksStrategy*>(strategy.get())) {
    result.cache_stats = fixed->engine().stats();
    result.cache_used_bytes = fixed->engine().used_bytes();
  } else if (auto* lfu = dynamic_cast<LfuConfigStrategy*>(strategy.get())) {
    result.cache_stats = lfu->cache().stats();
    result.cache_used_bytes = lfu->cache().used_bytes();
  }
  return result;
}

}  // namespace

double ExperimentResult::mean_latency_ms() const {
  if (runs.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& r : runs) acc += r.mean_latency_ms();
  return acc / static_cast<double>(runs.size());
}

double ExperimentResult::stddev_of_means() const {
  if (runs.size() < 2) return 0.0;
  const double m = mean_latency_ms();
  double acc = 0.0;
  for (const auto& r : runs) {
    const double d = r.mean_latency_ms() - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(runs.size() - 1));
}

double ExperimentResult::hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits + r.partial_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::full_hit_ratio() const {
  std::uint64_t hits = 0, ops = 0;
  for (const auto& r : runs) {
    hits += r.full_hits;
    ops += r.ops;
  }
  return ops == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(ops);
}

double ExperimentResult::percentile_ms(double q) const {
  stats::Histogram merged;
  for (const auto& r : runs) merged.merge(r.latencies);
  return merged.percentile(q);
}

std::uint64_t ExperimentResult::total_ops() const {
  std::uint64_t ops = 0;
  for (const auto& r : runs) ops += r.ops;
  return ops;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const StrategySpec& spec) {
  ExperimentResult result;
  result.spec = spec;
  result.runs.reserve(config.runs);
  for (std::size_t r = 0; r < config.runs; ++r) {
    const std::uint64_t run_seed =
        config.deployment.seed + r * 1000003ULL;
    result.runs.push_back(run_once(config, spec, run_seed));
  }
  log_info("runner") << spec.label() << ": mean "
                     << result.mean_latency_ms() << " ms, hit ratio "
                     << result.hit_ratio();
  return result;
}

std::vector<ExperimentResult> run_comparison(
    const ExperimentConfig& config, const std::vector<StrategySpec>& specs) {
  std::vector<ExperimentResult> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) {
    out.push_back(run_experiment(config, spec));
  }
  return out;
}

}  // namespace agar::client
