#include "client/agar_strategy.hpp"

namespace agar::client {

AgarStrategy::AgarStrategy(ClientContext ctx, core::AgarNodeParams node_params)
    : ReadStrategy(ctx),
      node_(std::make_unique<core::AgarNode>(ctx.backend, ctx.network,
                                             node_params)) {}

void AgarStrategy::warm_up() { node_->warm_up(); }

void AgarStrategy::populate_configuration() {
  for (const auto& [key, option] : node_->cache_manager().current().entries) {
    for (const ChunkIndex idx : option.chunks) {
      if (ctx_.loop != nullptr) {
        populate_chunk_async(key, idx, node_->cache());
      } else {
        (void)prefetch_chunk(key, idx, node_->cache());
      }
    }
  }
}

void AgarStrategy::reconfigure() {
  node_->reconfigure();
  populate_configuration();
}

void AgarStrategy::attach_to_loop(sim::EventLoop& loop) {
  ReadStrategy::attach_to_loop(loop);
  // Event-driven reconfiguration pipeline (shared with the node): a probe
  // round fires, and only once its fetches have landed is the
  // configuration recomputed and the population downloads started.
  reconfig_timer_ =
      node_->attach_to_loop(loop, [this] { populate_configuration(); });
}

void AgarStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  start_plan(key, node_->plan_read(key), node_->cache(), std::move(done));
}

}  // namespace agar::client
