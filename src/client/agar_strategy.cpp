#include "client/agar_strategy.hpp"

namespace agar::client {

AgarStrategy::AgarStrategy(ClientContext ctx, core::AgarNodeParams node_params)
    : ReadStrategy(ctx),
      node_(std::make_unique<core::AgarNode>(ctx.backend, ctx.network,
                                             node_params)) {}

void AgarStrategy::warm_up() { node_->warm_up(); }

void AgarStrategy::reconfigure() {
  node_->reconfigure();
  for (const auto& [key, option] :
       node_->cache_manager().current().entries) {
    for (const ChunkIndex idx : option.chunks) {
      (void)prefetch_chunk(key, idx, node_->cache());
    }
  }
}

void AgarStrategy::attach_to_loop(sim::EventLoop& loop) {
  loop.schedule_periodic(node_->params().reconfig_period_ms, [this] {
    reconfigure();
    return true;
  });
}

ReadResult AgarStrategy::read(const ObjectKey& key) {
  return execute_plan(key, node_->plan_read(key), node_->cache());
}

}  // namespace agar::client
