#include "client/agar_strategy.hpp"

#include <memory>

#include "api/registry.hpp"
#include "client/runner.hpp"

namespace agar::client {

namespace {

const api::StrategyRegistration kAgar{{
    "agar",
    "Agar",
    "knapsack-optimized chunk caching with periodic reconfiguration "
    "(the paper's system)",
    api::ParamSchema{{
        {"cache_bytes", api::ParamType::kSize, "10MB", "cache capacity"},
        {"probes_per_region", api::ParamType::kSize, "6",
         "latency probes per region per warm-up/reconfiguration"},
        {"planner", api::ParamType::kString, "knapsack-dp",
         "planner registry entry solving each reconfiguration "
         "(planner.<param> passes planner-specific knobs)"},
        {"monitor", api::ParamType::kString, "exact-ewma",
         "popularity-estimator registry entry behind the request monitor "
         "(monitor.<param> passes estimator-specific knobs)"},
    }},
    [](const api::StrategyContext& ctx, const api::ParamMap& params) {
      core::AgarNodeParams p;
      p.region = ctx.client->region;
      p.cache_capacity_bytes = params.get_size("cache_bytes", 10_MB);
      p.reconfig_period_ms = ctx.experiment->reconfig_period_ms;
      p.probes_per_region =
          params.get_size("probes_per_region", p.probes_per_region);
      p.cache_manager.candidate_weights =
          ctx.experiment->agar_candidate_weights;
      p.cache_manager.cache_latency_ms =
          ctx.deployment->network().model().params().cache_base_ms;
      p.cache_manager.planner = params.get_string("planner", "knapsack-dp");
      p.cache_manager.planner_params = params.scoped("planner.");
      p.monitor.estimator = params.get_string("monitor", "exact-ewma");
      p.monitor.estimator_params = params.scoped("monitor.");
      return std::make_unique<AgarStrategy>(*ctx.client, p);
    },
    [](const api::ParamMap& params) {
      // Non-default control-plane picks show up in the label so planner /
      // estimator sweeps stay distinguishable in tables and JSON reports.
      std::string tags;
      const auto planner = params.get_string("planner", "knapsack-dp");
      const auto monitor = params.get_string("monitor", "exact-ewma");
      if (planner != "knapsack-dp") tags += planner;
      if (monitor != "exact-ewma") tags += (tags.empty() ? "" : ",") + monitor;
      return tags.empty() ? std::string("Agar") : "Agar[" + tags + "]";
    }}};

}  // namespace

AgarStrategy::AgarStrategy(ClientContext ctx, core::AgarNodeParams node_params)
    : ReadStrategy(ctx),
      node_(std::make_unique<core::AgarNode>(ctx.backend, ctx.network,
                                             node_params)) {}

void AgarStrategy::warm_up() { node_->warm_up(); }

void AgarStrategy::populate_configuration() {
  for (const auto& [key, option] : node_->cache_manager().current().entries) {
    for (const ChunkIndex idx : option.chunks) {
      if (ctx_.loop != nullptr) {
        populate_chunk_async(key, idx, node_->cache());
      } else {
        (void)prefetch_chunk(key, idx, node_->cache());
      }
    }
  }
}

void AgarStrategy::reconfigure() {
  node_->reconfigure();
  populate_configuration();
}

void AgarStrategy::attach_to_loop(sim::EventLoop& loop) {
  ReadStrategy::attach_to_loop(loop);
  // Event-driven reconfiguration pipeline (shared with the node): a probe
  // round fires, and only once its fetches have landed is the
  // configuration recomputed and the population downloads started. The
  // reconfigure observer (collab config log) runs after the population
  // kicks off, with the installed configuration current.
  reconfig_timer_ = node_->attach_to_loop(loop, [this] {
    populate_configuration();
    if (on_reconfigure_) on_reconfigure_();
  });
}

core::PeerInfo AgarStrategy::collab_info() {
  return core::broadcast_info(*node_);
}

void AgarStrategy::set_collab_hooks(const core::CollabPlannerHooks& hooks) {
  // planner.scope=global turns the per-region planner into one global
  // optimization: merged popularity snapshots and peer-aware chunk costs.
  // scope=region (the default) keeps planning local — the tier then only
  // contributes peer-fetch on the data path.
  if (node_->params().cache_manager.planner_params.get_string(
          "scope", "region") == "global") {
    node_->cache_manager().set_collab_hooks(hooks);
  }
}

void AgarStrategy::start_read(const ObjectKey& key, ReadCallback done) {
  start_plan(key, node_->plan_read(key), node_->cache(), std::move(done));
}

}  // namespace agar::client
