// Plain-text reporting for the benchmark harness: aligned tables plus the
// paper-figure framing (experiment id, workload, expected shape).
#pragma once

#include <string>
#include <vector>

#include "client/runner.hpp"

namespace agar::client {

/// Render an aligned table. `rows` are already-formatted cells.
[[nodiscard]] std::string format_table(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows);

/// Header block for one reproduced figure/table.
void print_experiment_banner(const std::string& id, const std::string& what,
                             const std::string& setup);

/// One row per strategy: label, mean latency, stddev, p50/p95, hit ratios,
/// throughput and coalescing counters.
void print_results_table(const std::vector<ExperimentResult>& results);

/// Machine-readable variant for bench harnesses: a JSON array with one
/// object per strategy, per-run results nested inside.
[[nodiscard]] std::string results_json(
    const std::vector<ExperimentResult>& results);

/// Format helpers.
[[nodiscard]] std::string fmt_ms(double ms);
[[nodiscard]] std::string fmt_pct(double fraction);

}  // namespace agar::client
