// Agar strategy (paper §V-A "Agar"): reads go through an AgarNode — the
// request monitor supplies hints, resident configured chunks come from the
// Agar cache, the rest from the backend; after the read the client
// populates the cache with the chunks the current configuration wants
// (asynchronously, off the latency path).
//
// On the event loop the whole control plane is background events: latency
// probes are asynchronous fetches, each reconfiguration waits for its probe
// round to land, and the a-priori population downloads go through the
// strategy's coalescing fetch table so they merge with concurrent reads.
#pragma once

#include <memory>

#include "client/strategy.hpp"
#include "core/agar_node.hpp"

namespace agar::client {

class AgarStrategy final : public ReadStrategy {
 public:
  AgarStrategy(ClientContext ctx, core::AgarNodeParams node_params);

  void start_read(const ObjectKey& key, ReadCallback done) override;
  [[nodiscard]] std::string name() const override { return "Agar"; }

  void warm_up() override;
  void attach_to_loop(sim::EventLoop& loop) override;

  /// One reconfiguration plus the a-priori population downloads for every
  /// configured-but-missing chunk (paper §IV-A; performed by the
  /// population thread pool, off the read path). Synchronous variant for
  /// loop-less callers; the periodic pipeline on the loop runs the same
  /// steps as events (async probe round, then reconfigure + population).
  void reconfigure();

  [[nodiscard]] core::AgarNode& node() { return *node_; }

  [[nodiscard]] const cache::CacheEngine* cache_engine() const override {
    return &node_->cache();
  }
  [[nodiscard]] std::map<std::size_t, std::size_t> config_weight_histogram()
      const override {
    return node_->cache_manager().current().weight_histogram();
  }
  [[nodiscard]] core::ControlPlaneStats control_plane_stats() const override {
    return node_->cache_manager().control_plane_stats();
  }

  /// Broadcastable cache state for the cooperative tier (configured chunk
  /// keys + popularity snapshot — the paper's §VI broadcast).
  [[nodiscard]] core::PeerInfo collab_info() override;

  /// Forward the cooperative-planning hooks to the cache manager when the
  /// planner runs at global scope (planner.scope=global); no-op otherwise.
  void set_collab_hooks(const core::CollabPlannerHooks& hooks) override;

  /// Cancel handle of the periodic reconfiguration (0 until attached);
  /// pass to EventLoop::cancel to stop the control plane mid-run.
  [[nodiscard]] sim::EventLoop::TimerId reconfig_timer() const {
    return reconfig_timer_;
  }

 private:
  /// Download every configured-but-missing chunk: background events through
  /// the coalescing table when a loop is attached, synchronous otherwise.
  void populate_configuration();

  std::unique_ptr<core::AgarNode> node_;
  sim::EventLoop::TimerId reconfig_timer_ = 0;
};

}  // namespace agar::client
