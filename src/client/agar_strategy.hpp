// Agar strategy (paper §V-A "Agar"): reads go through an AgarNode — the
// request monitor supplies hints, resident configured chunks come from the
// Agar cache, the rest from the backend; after the read the client
// populates the cache with the chunks the current configuration wants
// (asynchronously, off the latency path).
#pragma once

#include <memory>

#include "client/strategy.hpp"
#include "core/agar_node.hpp"

namespace agar::client {

class AgarStrategy final : public ReadStrategy {
 public:
  AgarStrategy(ClientContext ctx, core::AgarNodeParams node_params);

  [[nodiscard]] ReadResult read(const ObjectKey& key) override;
  [[nodiscard]] std::string name() const override { return "Agar"; }

  void warm_up() override;
  void attach_to_loop(sim::EventLoop& loop) override;

  /// One reconfiguration plus the a-priori population downloads for every
  /// configured-but-missing chunk (paper §IV-A; performed by the
  /// population thread pool, off the read path).
  void reconfigure();

  [[nodiscard]] core::AgarNode& node() { return *node_; }

 private:
  std::unique_ptr<core::AgarNode> node_;
};

}  // namespace agar::client
