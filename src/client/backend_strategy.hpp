// Backend strategy (paper §V-A "Backend"): no caching layer at all — every
// read fetches the k cheapest chunks straight from the regional buckets and
// decodes. The floor (or ceiling, latency-wise) every caching system is
// compared against.
#pragma once

#include "client/strategy.hpp"

namespace agar::client {

class BackendStrategy final : public ReadStrategy {
 public:
  explicit BackendStrategy(ClientContext ctx) : ReadStrategy(ctx) {}

  void start_read(const ObjectKey& key, ReadCallback done) override;
  [[nodiscard]] std::string name() const override { return "Backend"; }
};

/// Chunk candidates of `key` sorted by expected fetch latency, cheapest
/// first (deterministic tie-break on region then index). Shared by all
/// strategies.
[[nodiscard]] std::vector<std::pair<ChunkIndex, RegionId>>
chunks_by_expected_latency(const ClientContext& ctx, const ObjectKey& key);

}  // namespace agar::client
