// The paper's LFU-c baseline (§V-A): "reads content via a cache that stores
// a predefined number of erasure-coded chunks and supports the Least
// Frequently Used cache replacement policy. This client includes an
// additional proxy component that tracks request frequency for each
// object" — with the same 30-second reconfiguration period as Agar.
//
// Concretely: a request-frequency proxy (the same EWMA request monitor Agar
// uses) ranks objects each period; the cache is then statically configured
// to hold the c most-distant needed chunks of the most frequent objects, as
// many as fit. It is exactly Agar minus the knapsack: fixed per-object
// weight, popularity-ranked admission, identical planning/population
// machinery — which makes the Fig. 6 comparison isolate the contribution
// of the optimization itself.
//
// (An eviction-driven LFU cache engine — instant adaptation, cumulative
// frequencies — is available separately as the registered "lfu-eviction"
// system for the baseline-strength ablation.)
#pragma once

#include <map>
#include <memory>

#include "client/strategy.hpp"
#include "core/region_manager.hpp"
#include "core/request_monitor.hpp"

namespace agar::client {

struct LfuConfigParams {
  std::size_t chunks_per_object = 9;  ///< the "c" in LFU-c
  std::size_t cache_capacity_bytes = 10_MB;
  SimTimeMs reconfig_period_ms = 30'000.0;
  double ewma_alpha = 0.8;
  double proxy_overhead_ms = 0.5;  ///< the frequency proxy is on-path
};

class LfuConfigStrategy final : public ReadStrategy {
 public:
  LfuConfigStrategy(ClientContext ctx, LfuConfigParams params);

  void start_read(const ObjectKey& key, ReadCallback done) override;
  [[nodiscard]] std::string name() const override;

  void warm_up() override;
  void attach_to_loop(sim::EventLoop& loop) override;

  /// Recompute the configuration now: probe synchronously, then apply.
  /// (On the loop, the periodic pipeline probes asynchronously instead.)
  void reconfigure();

  [[nodiscard]] cache::StaticConfigCache& cache() { return cache_; }
  [[nodiscard]] const cache::CacheEngine* cache_engine() const override {
    return &cache_;
  }
  [[nodiscard]] core::RequestMonitor& monitor() { return monitor_; }
  [[nodiscard]] const LfuConfigParams& params() const { return params_; }

  /// Cancel handle of the periodic reconfiguration (0 until attached);
  /// pass to EventLoop::cancel to stop the control plane mid-run.
  [[nodiscard]] sim::EventLoop::TimerId reconfig_timer() const {
    return reconfig_timer_;
  }

 private:
  /// The c most-distant of the k needed chunks of `key` (most distant
  /// first), per the live latency estimates.
  [[nodiscard]] std::vector<ChunkIndex> designated_chunks(
      const ObjectKey& key) const;

  /// Rank by popularity, install the configuration, start populations.
  void apply_configuration();

  LfuConfigParams params_;
  sim::EventLoop::TimerId reconfig_timer_ = 0;
  cache::StaticConfigCache cache_;
  core::RegionManager region_manager_;
  core::RequestMonitor monitor_;
  /// Chunk sets installed at the last reconfiguration, per object.
  /// Key-ordered: the population loop iterates it, and fetch issue order
  /// becomes event sequence order.
  std::map<ObjectKey, std::vector<ChunkIndex>> configured_;
};

}  // namespace agar::client
