// Geographic topology: named regions plus a base latency matrix.
//
// aws_six_regions() reproduces the paper's Fig. 1 deployment: Frankfurt,
// Dublin, N. Virginia, Sao Paulo, Tokyo, Sydney. The base latencies are a
// synthetic symmetric matrix calibrated so that (a) the ordering seen from
// Frankfurt matches the paper's Table I (FRA < DUB < NVA < SAO < TYO < SYD)
// and (b) the latency-vs-cached-chunks curves have the paper's Fig. 2 shape
// for both Frankfurt (little gain until ~3 chunks are cached... large drop
// after) and Sydney (large gain already at 3 chunks). Absolute values are
// not the paper's measurements — see DESIGN.md §2 (substitutions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace agar::sim {

class Topology {
 public:
  Topology() = default;

  /// Build from names and a square base-latency matrix (ms per chunk fetch,
  /// including service overhead). Throws std::invalid_argument on shape
  /// mismatch or asymmetry.
  Topology(std::vector<std::string> names,
           std::vector<std::vector<double>> base_latency_ms);

  [[nodiscard]] std::size_t num_regions() const { return names_.size(); }
  [[nodiscard]] const std::string& name(RegionId r) const {
    return names_.at(r);
  }
  [[nodiscard]] RegionId id_of(const std::string& name) const;

  /// Base chunk-fetch latency between two regions in ms.
  [[nodiscard]] double base_latency_ms(RegionId from, RegionId to) const {
    return latency_.at(from).at(to);
  }

  /// Region ids sorted by base latency from `from`, nearest first.
  [[nodiscard]] std::vector<RegionId> regions_by_distance(RegionId from) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> latency_;
};

/// The paper's six-region deployment (Fig. 1).
[[nodiscard]] Topology aws_six_regions();

/// Region indices of aws_six_regions(), for readable test/bench code.
namespace region {
inline constexpr RegionId kFrankfurt = 0;
inline constexpr RegionId kDublin = 1;
inline constexpr RegionId kVirginia = 2;
inline constexpr RegionId kSaoPaulo = 3;
inline constexpr RegionId kTokyo = 4;
inline constexpr RegionId kSydney = 5;
}  // namespace region

}  // namespace agar::sim
