#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace agar::sim {

Topology::Topology(std::vector<std::string> names,
                   std::vector<std::vector<double>> base_latency_ms)
    : names_(std::move(names)), latency_(std::move(base_latency_ms)) {
  if (latency_.size() != names_.size()) {
    throw std::invalid_argument("Topology: matrix rows != region count");
  }
  for (std::size_t i = 0; i < latency_.size(); ++i) {
    if (latency_[i].size() != names_.size()) {
      throw std::invalid_argument("Topology: matrix not square");
    }
    for (std::size_t j = 0; j < latency_.size(); ++j) {
      if (latency_[i][j] < 0) {
        throw std::invalid_argument("Topology: negative latency");
      }
      if (std::abs(latency_[i][j] - latency_[j][i]) > 1e-9) {
        throw std::invalid_argument("Topology: matrix not symmetric");
      }
    }
  }
}

RegionId Topology::id_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::out_of_range("Topology: unknown region " + name);
  }
  return static_cast<RegionId>(it - names_.begin());
}

std::vector<RegionId> Topology::regions_by_distance(RegionId from) const {
  std::vector<RegionId> ids(num_regions());
  std::iota(ids.begin(), ids.end(), RegionId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](RegionId a, RegionId b) {
    return base_latency_ms(from, a) < base_latency_ms(from, b);
  });
  return ids;
}

Topology aws_six_regions() {
  // Order: Frankfurt, Dublin, N. Virginia, Sao Paulo, Tokyo, Sydney.
  //
  // Calibration: the Frankfurt row preserves the paper's Table I *ordering
  // and relative gaps* (80 / 200 / 600 / 1400 / 3400 / 4600 ms) scaled by
  // ~1/3 so that absolute end-to-end read latencies land where the paper's
  // *measured* figures do (Fig. 2: backend reads ~1.1 s; Table I's raw
  // values are from a different measurement epoch than the evaluation
  // runs). Two properties matter and are preserved:
  //   * the steeply increasing far tail — the latency gaps between the
  //     furthest regions are what give partial-caching options their value
  //     (caching one Tokyo chunk alone saves Tokyo - SaoPaulo, the paper's
  //     §IV worked example), so a compressed tail would flatten the
  //     knapsack's trade-off space;
  //   * the absolute scale sets the closed-loop request rate and thereby
  //     how many samples each 30 s popularity period sees.
  // Symmetric; diagonal 80 ms models an in-region S3-like chunk fetch.
  return Topology(
      {"frankfurt", "dublin", "virginia", "saopaulo", "tokyo", "sydney"},
      {
          {80, 100, 220, 470, 1130, 1530},
          {100, 80, 180, 500, 1200, 1600},
          {220, 180, 80, 300, 900, 530},
          {470, 500, 300, 80, 1370, 1430},
          {1130, 1200, 900, 1370, 80, 470},
          {1530, 1600, 530, 1430, 470, 80},
      });
}

}  // namespace agar::sim
