// Simulated wide-area network with failure injection.
//
// The network wraps the latency model, tracks region liveness, and — when
// bound to an event loop — serves chunk fetches asynchronously: a fetch is
// an event whose completion fires on the loop after the sampled latency.
// Each destination region admits a bounded number of outstanding requests
// (the paper's storage nodes have finite service capacity); excess fetches
// wait in a per-region FIFO, so contention shows up as queueing latency
// instead of being invisible to the virtual timeline.
//
// The legacy synchronous API (`backend_fetch` returning a latency number)
// is kept for latency probes and for the thin synchronous read wrapper that
// tests use; the strategy hot path goes through `begin_fetch`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "sim/event_loop.hpp"
#include "sim/latency_model.hpp"

namespace agar::sim {

class Network {
 public:
  /// Completion callback of one asynchronous fetch: the wire latency the
  /// transfer took (excluding any time spent queued), or nullopt if the
  /// destination region went down while the fetch waited in the queue.
  using FetchCallback = std::function<void(std::optional<SimTimeMs>)>;

  explicit Network(LatencyModel model) : model_(std::move(model)) {
    region_states_.resize(model_.topology().num_regions());
  }

  [[nodiscard]] const Topology& topology() const { return model_.topology(); }
  [[nodiscard]] LatencyModel& model() { return model_; }

  /// Bind the loop that completion events are scheduled on. Must be called
  /// before `begin_fetch`. Rebinding is allowed only while no fetches are
  /// outstanding (the synchronous read wrapper swaps in a private loop).
  void bind_loop(EventLoop* loop);
  [[nodiscard]] EventLoop* loop() const { return loop_; }

  /// Per-destination-region cap on concurrently served fetches. Excess
  /// fetches queue FIFO. 0 means unlimited.
  void set_max_outstanding_per_region(std::size_t limit) {
    max_outstanding_per_region_ = limit;
  }
  [[nodiscard]] std::size_t max_outstanding_per_region() const {
    return max_outstanding_per_region_;
  }

  /// Start one asynchronous backend fetch. Returns false (and never calls
  /// `cb`) if `to` is down right now — callers substitute a fallback
  /// immediately, mirroring the synchronous path's skip-down-regions
  /// semantics. Otherwise the fetch is served or queued and `cb` fires on
  /// the loop when the transfer completes.
  bool begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                   FetchCallback cb);

  /// Failure injection: a down region refuses new fetches until restored,
  /// transfers already on the wire are aborted (their observers hear
  /// nullopt now, not at the transfer's original completion time), and
  /// entries waiting in the region's FIFO fail immediately instead of
  /// stranding until an unrelated completion drains them.
  void fail_region(RegionId r);
  /// Bring a region back. A proper inverse of `fail_region`: idempotent,
  /// and it verifies the downed region held no stranded wire or FIFO state
  /// (anything left would never drain — a restored region only hands out
  /// slots on completions, and aborted transfers have none coming).
  /// Fetches aborted by `fail_region` stay failed — their completion
  /// events are already dead and cannot resurrect.
  void restore_region(RegionId r);
  [[nodiscard]] bool is_down(RegionId r) const { return down_.contains(r); }
  [[nodiscard]] std::size_t down_count() const { return down_.size(); }

  /// Latency for one backend chunk fetch, or nullopt if `to` is down.
  /// Synchronous path: latency probes and loop-less test reads.
  [[nodiscard]] std::optional<SimTimeMs> backend_fetch(RegionId from,
                                                       RegionId to,
                                                       std::size_t bytes);

  /// Latency of one region-local cache fetch (the cache co-resides with the
  /// client's region, so it never fails in this model).
  [[nodiscard]] SimTimeMs cache_fetch(std::size_t bytes);

  /// Completion time of a parallel batch: max of the elements, 0 if empty.
  /// Only the synchronous wrapper and tests use this now.
  [[nodiscard]] static SimTimeMs parallel_batch_ms(
      const std::vector<SimTimeMs>& latencies);

  // ------------------------------------------------------- observability
  [[nodiscard]] std::uint64_t wire_fetches() const { return wire_fetches_; }
  [[nodiscard]] std::uint64_t queued_fetches() const {
    return queued_fetches_;
  }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_queue_depth_;
  }
  [[nodiscard]] std::size_t max_in_flight() const { return max_in_flight_; }
  [[nodiscard]] std::size_t in_flight() const { return total_outstanding_; }
  [[nodiscard]] std::size_t outstanding(RegionId r) const {
    return region_states_[r].wire.size();
  }
  [[nodiscard]] std::size_t queue_depth(RegionId r) const {
    return region_states_[r].fifo.size();
  }
  /// Fetches that completed with nullopt, by failure mode: aborted on the
  /// wire by `fail_region`, failed while waiting in a region FIFO, or
  /// timed out on the wire (gray drop: the response was lost and the
  /// requester heard nothing until drop_latency_mult× the transfer time).
  [[nodiscard]] std::uint64_t aborted_on_wire() const {
    return aborted_on_wire_;
  }
  [[nodiscard]] std::uint64_t failed_in_queue() const {
    return failed_in_queue_;
  }
  [[nodiscard]] std::uint64_t timed_out() const { return timed_out_; }
  /// All failure modes combined (legacy aggregate).
  [[nodiscard]] std::uint64_t failed_fetches() const {
    return aborted_on_wire_ + failed_in_queue_ + timed_out_;
  }

 private:
  struct PendingFetch {
    RegionId from;
    std::size_t bytes;
    FetchCallback cb;
  };
  struct RegionState {
    /// In-flight wire transfers by issue id (ordered, so fail_region
    /// aborts them deterministically in issue order). A completion event
    /// whose id is gone was aborted and is a no-op.
    std::map<std::uint64_t, FetchCallback> wire;
    std::deque<PendingFetch> fifo;
  };

  void start_wire(RegionId to, PendingFetch pending);
  /// Hand freed slots to the FIFO head(s) after a completion.
  void drain_queue(RegionId to);
  /// Deliver one failure asynchronously (like a timeout), charging it to
  /// the given failure-mode counter.
  void deliver_failure(FetchCallback cb, std::uint64_t& counter);

  LatencyModel model_;
  EventLoop* loop_ = nullptr;  // non-owning
  std::unordered_set<RegionId> down_;
  std::vector<RegionState> region_states_;
  std::size_t max_outstanding_per_region_ = 64;
  std::size_t total_outstanding_ = 0;
  std::size_t max_in_flight_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t next_wire_id_ = 1;
  std::uint64_t wire_fetches_ = 0;
  std::uint64_t queued_fetches_ = 0;
  std::uint64_t aborted_on_wire_ = 0;
  std::uint64_t failed_in_queue_ = 0;
  std::uint64_t timed_out_ = 0;
};

}  // namespace agar::sim
