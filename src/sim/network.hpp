// Simulated wide-area network with failure injection.
//
// The network wraps the latency model and tracks region liveness. Clients
// issue chunk fetches in parallel (the paper's YCSB client uses a thread
// pool), so the completion time of a batch is the maximum of its per-fetch
// latencies; `parallel_batch_ms` encodes exactly that.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "sim/latency_model.hpp"

namespace agar::sim {

class Network {
 public:
  explicit Network(LatencyModel model) : model_(std::move(model)) {}

  [[nodiscard]] const Topology& topology() const { return model_.topology(); }
  [[nodiscard]] LatencyModel& model() { return model_; }

  /// Failure injection: a down region refuses fetches until restored.
  void fail_region(RegionId r) { down_.insert(r); }
  void restore_region(RegionId r) { down_.erase(r); }
  [[nodiscard]] bool is_down(RegionId r) const { return down_.contains(r); }
  [[nodiscard]] std::size_t down_count() const { return down_.size(); }

  /// Latency for one backend chunk fetch, or nullopt if `to` is down.
  [[nodiscard]] std::optional<SimTimeMs> backend_fetch(RegionId from,
                                                       RegionId to,
                                                       std::size_t bytes);

  /// Latency of one region-local cache fetch (the cache co-resides with the
  /// client's region, so it never fails in this model).
  [[nodiscard]] SimTimeMs cache_fetch(std::size_t bytes);

  /// Completion time of a parallel batch: max of the elements, 0 if empty.
  [[nodiscard]] static SimTimeMs parallel_batch_ms(
      const std::vector<SimTimeMs>& latencies);

 private:
  LatencyModel model_;
  std::unordered_set<RegionId> down_;
};

}  // namespace agar::sim
