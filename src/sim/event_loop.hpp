// Discrete-event simulation core.
//
// The reproduction replaces the paper's AWS deployment with a deterministic
// discrete-event simulation: clients, periodic reconfigurations and latency
// probes are all events on one virtual timeline. Events fire in timestamp
// order; ties break by insertion order so runs are fully reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace agar::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// Handle identifying one periodic timer. Never reused within a loop.
  using TimerId = std::uint64_t;

  /// Current virtual time (ms). Starts at 0.
  [[nodiscard]] SimTimeMs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now, clamped).
  void schedule_at(SimTimeMs when, Callback fn);

  /// Schedule `fn` to run `delay` ms from now.
  void schedule_in(SimTimeMs delay, Callback fn);

  /// Schedule `fn` every `period` ms, first firing at now + period.
  /// The callback returns true to keep the timer armed, false to cancel.
  /// The returned handle can cancel the timer from outside (or from within
  /// the callback itself); a firing already in the queue when the timer is
  /// cancelled becomes a no-op and does not re-arm.
  TimerId schedule_periodic(SimTimeMs period, std::function<bool()> fn);

  /// Cancel a periodic timer. Returns true if it was still armed. Safe to
  /// call from inside the timer's own callback and idempotent.
  bool cancel(TimerId id);

  /// Is the periodic timer still armed?
  [[nodiscard]] bool timer_active(TimerId id) const {
    return active_timers_.contains(id);
  }

  /// Number of armed periodic timers (leak detection in tests).
  [[nodiscard]] std::size_t active_timer_count() const {
    return active_timers_.size();
  }

  /// Run until the queue is empty or until the optional time horizon.
  void run();
  void run_until(SimTimeMs horizon);

  /// Execute exactly one event. Returns false if the queue was empty.
  /// Lets callers interleave with the loop (the synchronous read wrapper
  /// drives the shared loop one event at a time until its read completes).
  bool step();

  /// Number of events executed so far (observability for tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTimeMs when;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void arm_periodic(TimerId id, SimTimeMs period,
                    std::shared_ptr<std::function<bool()>> fn);
  void pop_and_run();

  SimTimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  TimerId next_timer_ = 1;
  std::unordered_set<TimerId> active_timers_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace agar::sim
