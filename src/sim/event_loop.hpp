// Discrete-event simulation core.
//
// The reproduction replaces the paper's AWS deployment with a deterministic
// discrete-event simulation: clients, periodic reconfigurations and latency
// probes are all events on one virtual timeline. Events fire in timestamp
// order; ties break by insertion order so runs are fully reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace agar::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (ms). Starts at 0.
  [[nodiscard]] SimTimeMs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now, clamped).
  void schedule_at(SimTimeMs when, Callback fn);

  /// Schedule `fn` to run `delay` ms from now.
  void schedule_in(SimTimeMs delay, Callback fn);

  /// Schedule `fn` every `period` ms, first firing at now + period.
  /// The callback returns true to keep the timer armed, false to cancel.
  void schedule_periodic(SimTimeMs period, std::function<bool()> fn);

  /// Run until the queue is empty or until the optional time horizon.
  void run();
  void run_until(SimTimeMs horizon);

  /// Number of events executed so far (observability for tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTimeMs when;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  SimTimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace agar::sim
