// Discrete-event simulation core.
//
// The reproduction replaces the paper's AWS deployment with a deterministic
// discrete-event simulation: clients, periodic reconfigurations and latency
// probes are all events on one virtual timeline. Events fire in
// (timestamp, lane, sequence) order, where a *lane* is the logical
// partition (client region) that scheduled the event and the sequence is a
// per-lane insertion counter. Lanes make the total order independent of
// how lanes are packed onto shards, so the sharded engine
// (sim/sharded_engine.hpp) produces byte-identical results for any shard
// count; a plain single-loop run is simply the one-lane special case.
//
// Hot-path design: one-shot events live in a 4-ary min-heap over a
// reserved contiguous vector — half the depth of a binary heap and
// hole-based sifting, so a push or pop moves each displaced event once
// instead of swapping it; events are moved in and out, never copied.
// Periodic timers live in a hierarchical timer wheel
// (sim/timer_wheel.hpp) so arming, firing and re-arming are O(1) and
// never re-wrap the callback. The loop drains all events sharing one
// timestamp in a tight batch, checking the timer wheel's cached minimum
// once per event instead of re-deriving it.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/timer_wheel.hpp"

namespace agar::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  /// Handle identifying one periodic timer. Never reused within a loop.
  using TimerId = std::uint64_t;
  /// Logical partition that owns an event's ordering key. Single-loop
  /// callers never touch lanes and everything lands on lane 0.
  using LaneId = std::uint32_t;

  EventLoop() { heap_.reserve(kDefaultReserve); }

  /// Current virtual time (ms). Starts at 0.
  [[nodiscard]] SimTimeMs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now, clamped).
  void schedule_at(SimTimeMs when, Callback fn);

  /// Schedule `fn` to run `delay` ms from now.
  void schedule_in(SimTimeMs delay, Callback fn);

  /// Schedule `fn` every `period` ms, first firing at now + period.
  /// The callback returns true to keep the timer armed, false to cancel.
  /// The returned handle can cancel the timer from outside (or from within
  /// the callback itself); a firing already armed when the timer is
  /// cancelled becomes a no-op and does not re-arm.
  /// Throws std::invalid_argument if `period` is not strictly positive.
  TimerId schedule_periodic(SimTimeMs period, std::function<bool()> fn);

  /// Cancel a periodic timer. Returns true if it was still armed. Safe to
  /// call from inside the timer's own callback and idempotent.
  bool cancel(TimerId id);

  /// Is the periodic timer still armed?
  [[nodiscard]] bool timer_active(TimerId id) const {
    return timers_.contains(id);
  }

  /// Number of armed periodic timers (leak detection in tests).
  [[nodiscard]] std::size_t active_timer_count() const {
    return timers_.size();
  }

  /// Run until the queue is empty or until the optional time horizon.
  void run();
  void run_until(SimTimeMs horizon);

  /// Execute exactly one event. Returns false if the queue was empty.
  /// Lets callers interleave with the loop (the synchronous read wrapper
  /// drives the shared loop one event at a time until its read completes).
  bool step();

  /// Number of events executed so far (observability for tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] bool empty() const { return heap_.empty() && wheel_.empty(); }

  /// Pre-size the event heap (the runner sizes it from the op budget).
  void reserve(std::size_t events) {
    if (events > heap_.capacity()) heap_.reserve(events);
  }

  // ---- Lane protocol (used by the sharded engine; see the file comment).

  /// Lane stamped on events scheduled right now. While an event executes
  /// this is the executing event's lane, so causally-derived events inherit
  /// it; the engine sets it explicitly around per-lane setup code.
  [[nodiscard]] LaneId scheduling_lane() const { return lane_; }
  void set_scheduling_lane(LaneId lane) { lane_ = lane; }

  /// Draw the next per-lane sequence number. The engine uses this to key
  /// cross-shard messages from the producing lane's counter so the total
  /// order matches what a single loop running all lanes would produce.
  [[nodiscard]] std::uint64_t allocate_seq(LaneId lane);

  /// Insert an event with an explicit, pre-allocated ordering key. Used
  /// when draining inter-shard rings; `when` is still clamped to >= now.
  void schedule_keyed(SimTimeMs when, LaneId lane, std::uint64_t seq,
                      Callback fn);

  /// Earliest pending fire time across the heap and the timer wheel, or
  /// +infinity when idle (window planning in the sharded engine).
  [[nodiscard]] SimTimeMs next_event_time();

 private:
  static constexpr std::size_t kDefaultReserve = 256;

  struct Event {
    SimTimeMs when;
    LaneId lane;
    std::uint64_t seq;  // per-lane insertion order; deterministic tie-break
    Callback fn;
  };
  /// Total event order: does `a` fire before `b`? (when, lane, seq).
  static bool earlier(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  }

  struct TimerRecord {
    std::function<bool()> fn;
    SimTimeMs period;
  };

  void push_event(Event event);
  /// Remove and return the earliest heap event (heap must be non-empty).
  Event pop_top();
  /// Execute the earliest event if it fires at or before `horizon`.
  bool advance_one(SimTimeMs horizon);
  void fire_timer(TimerWheel::Entry entry);

  SimTimeMs now_ = 0.0;
  LaneId lane_ = 0;
  std::uint64_t executed_ = 0;
  TimerId next_timer_ = 1;
  std::vector<std::uint64_t> seqs_ = {0};
  std::vector<Event> heap_;
  TimerWheel wheel_;
  std::unordered_map<TimerId, TimerRecord> timers_;
};

}  // namespace agar::sim
