#include "sim/timer_wheel.hpp"

#include <limits>

namespace agar::sim {

namespace {

[[nodiscard]] bool entry_less(const TimerWheel::Entry& a,
                              const TimerWheel::Entry& b) {
  return TimerWheel::key_less(a.when, a.lane, a.seq, b.when, b.lane, b.seq);
}

}  // namespace

void TimerWheel::insert(const Entry& entry) {
  place(entry);
  ++size_;
  if (min_valid_ && entry_less(entry, min_)) min_ = entry;
}

void TimerWheel::place(const Entry& entry) {
  // The loop clamps fire times to >= now and base_tick_ never passes the
  // earliest armed entry, so delta is non-negative.
  const std::uint64_t tick = tick_of(entry.when);
  const std::uint64_t delta = tick - base_tick_;
  if (delta < kSlots) {
    levels_[0][tick & (kSlots - 1)].push_back(entry);
    ++level_count_[0];
  } else if (delta < (1ull << (2 * kSlotBits))) {
    levels_[1][(tick >> kSlotBits) & (kSlots - 1)].push_back(entry);
    ++level_count_[1];
  } else if (delta < (1ull << (3 * kSlotBits))) {
    levels_[2][(tick >> (2 * kSlotBits)) & (kSlots - 1)].push_back(entry);
    ++level_count_[2];
  } else {
    overflow_.push_back(entry);
  }
}

void TimerWheel::cascade() {
  // Entries were bucketed by their delta at insert time, so after base has
  // advanced the earliest armed tick can live in any upper level (or the
  // overflow list). Find it, advance base to it, then pull everything that
  // now fits the level-0 window down. Upper levels hold at most a few
  // dozen armed timers, so the scan is cheap and runs only when level 0
  // drains.
  std::uint64_t min_tick = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t level = 1; level < kLevels; ++level) {
    if (level_count_[level] == 0) continue;
    for (const Slot& slot : levels_[level]) {
      for (const Entry& entry : slot) {
        min_tick = std::min(min_tick, tick_of(entry.when));
      }
    }
  }
  for (const Entry& entry : overflow_) {
    min_tick = std::min(min_tick, tick_of(entry.when));
  }
  base_tick_ = min_tick;

  const std::uint64_t window_end = base_tick_ + kSlots;
  for (std::size_t level = 1; level < kLevels; ++level) {
    if (level_count_[level] == 0) continue;
    for (Slot& slot : levels_[level]) {
      for (std::size_t i = 0; i < slot.size();) {
        if (tick_of(slot[i].when) < window_end) {
          levels_[0][tick_of(slot[i].when) & (kSlots - 1)].push_back(
              std::move(slot[i]));
          ++level_count_[0];
          --level_count_[level];
          slot[i] = slot.back();
          slot.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  for (std::size_t i = 0; i < overflow_.size();) {
    if (tick_of(overflow_[i].when) < window_end) {
      levels_[0][tick_of(overflow_[i].when) & (kSlots - 1)].push_back(
          std::move(overflow_[i]));
      ++level_count_[0];
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
    } else {
      ++i;
    }
  }
}

bool TimerWheel::find_min_level0(Entry& out) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& slot = levels_[0][(base_tick_ + i) & (kSlots - 1)];
    if (slot.empty()) continue;
    // All entries in a live level-0 slot share one tick; the earliest
    // non-empty slot from base therefore holds the global minimum.
    out = slot.front();
    for (const Entry& entry : slot) {
      if (entry_less(entry, out)) out = entry;
    }
    return true;
  }
  return false;
}

const TimerWheel::Entry* TimerWheel::peek_min() {
  if (size_ == 0) return nullptr;
  if (min_valid_) return &min_;
  if (level_count_[0] == 0) cascade();
  Entry best;
  const bool found = find_min_level0(best);
  (void)found;  // size_ > 0 and cascade() refills level 0, so always true
  min_ = best;
  min_valid_ = true;
  return &min_;
}

TimerWheel::Entry TimerWheel::pop_min() {
  const Entry result = *peek_min();
  Slot& slot = levels_[0][tick_of(result.when) & (kSlots - 1)];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].seq == result.seq && slot[i].lane == result.lane) {
      slot[i] = slot.back();
      slot.pop_back();
      break;
    }
  }
  --size_;
  --level_count_[0];
  base_tick_ = tick_of(result.when);
  min_valid_ = false;
  return result;
}

}  // namespace agar::sim
