#include "sim/timer_wheel.hpp"

#include <limits>

namespace agar::sim {

namespace {

[[nodiscard]] bool entry_less(const TimerWheel::Entry& a,
                              const TimerWheel::Entry& b) {
  return TimerWheel::key_less(a.when, a.lane, a.seq, b.when, b.lane, b.seq);
}

}  // namespace

void TimerWheel::insert(const Entry& entry) {
  place(entry);
  ++size_;
  // Invalidate rather than overwrite: the new minimum may have landed in
  // an upper level (ticks are integral, so an entry with an earlier
  // fractional time can share the cached minimum's tick yet live
  // upstairs), and pop_min may only ever pop what peek_min found in
  // level 0.
  if (min_valid_ && entry_less(entry, min_)) min_valid_ = false;
}

void TimerWheel::place(const Entry& entry) {
  // The loop clamps fire times to >= now and base_tick_ never passes the
  // earliest armed entry, so delta is non-negative.
  const std::uint64_t tick = tick_of(entry.when);
  const std::uint64_t delta = tick - base_tick_;
  if (delta < kSlots) {
    levels_[0][tick & (kSlots - 1)].push_back(entry);
    ++level_count_[0];
    return;
  }
  if (delta < (1ull << (2 * kSlotBits))) {
    levels_[1][(tick >> kSlotBits) & (kSlots - 1)].push_back(entry);
    ++level_count_[1];
  } else if (delta < (1ull << (3 * kSlotBits))) {
    levels_[2][(tick >> (2 * kSlotBits)) & (kSlots - 1)].push_back(entry);
    ++level_count_[2];
  } else {
    overflow_.push_back(entry);
  }
  upper_min_tick_ = std::min(upper_min_tick_, tick);
}

void TimerWheel::cascade() {
  // Entries were bucketed by their delta at insert time; once base has
  // advanced, the earliest armed tick can live anywhere. Rebucket the
  // whole wheel against a base at that tick: level 0 must cover exactly
  // [base, base + kSlots) — find_min_level0 relies on a live slot never
  // mixing ticks, which only holds inside a single window. The wheel
  // carries timers (periodic firings plus armed one-shots), not the bulk
  // event load, so the O(size) sweep is cheap and runs only when level 0
  // drains or an upper entry slips ahead of it.
  Slot all;
  all.reserve(size_);
  for (auto& level : levels_) {
    for (Slot& slot : level) {
      for (Entry& entry : slot) all.push_back(entry);
      slot.clear();
    }
  }
  for (Entry& entry : overflow_) all.push_back(entry);
  overflow_.clear();
  level_count_[0] = level_count_[1] = level_count_[2] = 0;

  std::uint64_t min_tick = std::numeric_limits<std::uint64_t>::max();
  for (const Entry& entry : all) {
    min_tick = std::min(min_tick, tick_of(entry.when));
  }
  base_tick_ = min_tick;
  upper_min_tick_ = kNoTick;
  for (const Entry& entry : all) place(entry);
}

bool TimerWheel::find_min_level0(Entry& out) {
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& slot = levels_[0][(base_tick_ + i) & (kSlots - 1)];
    if (slot.empty()) continue;
    // All entries in a live level-0 slot share one tick; the earliest
    // non-empty slot from base therefore holds the global minimum.
    out = slot.front();
    for (const Entry& entry : slot) {
      if (entry_less(entry, out)) out = entry;
    }
    return true;
  }
  return false;
}

const TimerWheel::Entry* TimerWheel::peek_min() {
  if (size_ == 0) return nullptr;
  if (min_valid_) return &min_;
  if (level_count_[0] == 0) cascade();
  Entry best;
  bool found = find_min_level0(best);
  // An upper-level entry can become the true minimum without level 0 ever
  // draining: base advances with every pop, and a short-delta insert can
  // then land in level 0 *after* (in tick order) a long-delta entry armed
  // earlier. Pull it down before answering, or it would fire late. The
  // comparison must be <=: ticks are integral, so an equal-tick upper
  // entry may still order first on its fractional time (or lane/seq).
  if (found && upper_min_tick_ <= tick_of(best.when)) {
    cascade();
    found = find_min_level0(best);
  }
  (void)found;  // size_ > 0 and cascade() refills level 0, so always true
  min_ = best;
  min_valid_ = true;
  return &min_;
}

TimerWheel::Entry TimerWheel::pop_min() {
  const Entry result = *peek_min();
  Slot& slot = levels_[0][tick_of(result.when) & (kSlots - 1)];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].seq == result.seq && slot[i].lane == result.lane) {
      slot[i] = slot.back();
      slot.pop_back();
      break;
    }
  }
  --size_;
  --level_count_[0];
  base_tick_ = tick_of(result.when);
  min_valid_ = false;
  return result;
}

}  // namespace agar::sim
