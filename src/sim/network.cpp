#include "sim/network.hpp"

#include <algorithm>

namespace agar::sim {

std::optional<SimTimeMs> Network::backend_fetch(RegionId from, RegionId to,
                                                std::size_t bytes) {
  if (is_down(to)) return std::nullopt;
  return model_.backend_fetch_ms(from, to, bytes);
}

SimTimeMs Network::cache_fetch(std::size_t bytes) {
  return model_.cache_fetch_ms(bytes);
}

SimTimeMs Network::parallel_batch_ms(const std::vector<SimTimeMs>& latencies) {
  if (latencies.empty()) return 0.0;
  return *std::max_element(latencies.begin(), latencies.end());
}

}  // namespace agar::sim
