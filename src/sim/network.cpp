#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace agar::sim {

void Network::bind_loop(EventLoop* loop) {
  if (loop != loop_ && total_outstanding_ > 0) {
    throw std::logic_error("Network: cannot rebind loop with fetches in flight");
  }
  loop_ = loop;
}

bool Network::begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                          FetchCallback cb) {
  if (is_down(to)) return false;
  if (loop_ == nullptr) {
    throw std::logic_error("Network: begin_fetch requires a bound loop");
  }
  RegionState& rs = region_states_[to];
  PendingFetch pending{from, bytes, std::move(cb)};
  if (max_outstanding_per_region_ != 0 &&
      rs.outstanding >= max_outstanding_per_region_) {
    rs.fifo.push_back(std::move(pending));
    ++queued_fetches_;
    max_queue_depth_ = std::max(max_queue_depth_, rs.fifo.size());
    return true;
  }
  start_wire(to, std::move(pending));
  return true;
}

void Network::start_wire(RegionId to, PendingFetch pending) {
  // Latency is sampled at wire time, not enqueue time: a fetch that waited
  // in the FIFO pays its queueing delay on top of a fresh transfer sample.
  const SimTimeMs latency =
      model_.backend_fetch_ms(pending.from, to, pending.bytes);
  RegionState& rs = region_states_[to];
  ++rs.outstanding;
  ++total_outstanding_;
  ++wire_fetches_;
  max_in_flight_ = std::max(max_in_flight_, total_outstanding_);
  loop_->schedule_in(latency, [this, to, latency,
                               cb = std::move(pending.cb)]() mutable {
    finish_wire(to);
    cb(latency);
  });
}

void Network::finish_wire(RegionId to) {
  RegionState& rs = region_states_[to];
  --rs.outstanding;
  --total_outstanding_;
  // Hand the freed slot to the queue head before the completion callback
  // runs, so a callback issuing a new fetch cannot jump the FIFO.
  while (!rs.fifo.empty() &&
         (max_outstanding_per_region_ == 0 ||
          rs.outstanding < max_outstanding_per_region_)) {
    PendingFetch next = std::move(rs.fifo.front());
    rs.fifo.pop_front();
    if (is_down(to)) {
      // Region failed while the fetch waited; deliver the failure on the
      // loop so callers observe it asynchronously, like a timeout.
      loop_->schedule_in(0.0, [cb = std::move(next.cb)]() mutable {
        cb(std::nullopt);
      });
      continue;
    }
    start_wire(to, std::move(next));
  }
}

std::optional<SimTimeMs> Network::backend_fetch(RegionId from, RegionId to,
                                                std::size_t bytes) {
  if (is_down(to)) return std::nullopt;
  return model_.backend_fetch_ms(from, to, bytes);
}

SimTimeMs Network::cache_fetch(std::size_t bytes) {
  return model_.cache_fetch_ms(bytes);
}

SimTimeMs Network::parallel_batch_ms(const std::vector<SimTimeMs>& latencies) {
  if (latencies.empty()) return 0.0;
  return *std::max_element(latencies.begin(), latencies.end());
}

}  // namespace agar::sim
