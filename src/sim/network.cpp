#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace agar::sim {

void Network::bind_loop(EventLoop* loop) {
  if (loop != loop_ && total_outstanding_ > 0) {
    throw std::logic_error("Network: cannot rebind loop with fetches in flight");
  }
  loop_ = loop;
}

bool Network::begin_fetch(RegionId from, RegionId to, std::size_t bytes,
                          FetchCallback cb) {
  if (is_down(to)) return false;
  if (loop_ == nullptr) {
    throw std::logic_error("Network: begin_fetch requires a bound loop");
  }
  RegionState& rs = region_states_[to];
  PendingFetch pending{from, bytes, std::move(cb)};
  if (max_outstanding_per_region_ != 0 &&
      rs.wire.size() >= max_outstanding_per_region_) {
    rs.fifo.push_back(std::move(pending));
    ++queued_fetches_;
    max_queue_depth_ = std::max(max_queue_depth_, rs.fifo.size());
    return true;
  }
  start_wire(to, std::move(pending));
  return true;
}

void Network::start_wire(RegionId to, PendingFetch pending) {
  // Latency is sampled at wire time, not enqueue time: a fetch that waited
  // in the FIFO pays its queueing delay on top of a fresh transfer sample.
  // Under gray drop injection the sample may be a loss: the slot is held
  // (a lost response still occupies the server) and the observer hears
  // nullopt only after the inflated discovery delay.
  const FetchSample sample =
      model_.sample_backend_fetch(pending.from, to, pending.bytes);
  RegionState& rs = region_states_[to];
  const std::uint64_t id = next_wire_id_++;
  rs.wire.emplace(id, std::move(pending.cb));
  ++total_outstanding_;
  ++wire_fetches_;
  max_in_flight_ = std::max(max_in_flight_, total_outstanding_);
  loop_->schedule_in(
      sample.latency_ms,
      [this, to, id, latency = sample.latency_ms, dropped = sample.dropped] {
        RegionState& state = region_states_[to];
        const auto it = state.wire.find(id);
        if (it == state.wire.end()) {
          return;  // aborted by fail_region mid-flight
        }
        FetchCallback cb = std::move(it->second);
        state.wire.erase(it);
        --total_outstanding_;
        // Hand the freed slot to the queue head before the completion
        // callback runs, so a callback issuing a new fetch cannot jump the
        // FIFO.
        drain_queue(to);
        if (dropped) {
          ++timed_out_;
          cb(std::nullopt);
        } else {
          cb(latency);
        }
      });
}

void Network::drain_queue(RegionId to) {
  // Queued entries only exist for up regions: fail_region clears the FIFO
  // and begin_fetch refuses down destinations, so no down-check is needed.
  RegionState& rs = region_states_[to];
  while (!rs.fifo.empty() &&
         (max_outstanding_per_region_ == 0 ||
          rs.wire.size() < max_outstanding_per_region_)) {
    PendingFetch next = std::move(rs.fifo.front());
    rs.fifo.pop_front();
    start_wire(to, std::move(next));
  }
}

void Network::deliver_failure(FetchCallback cb, std::uint64_t& counter) {
  // On the loop, so callers observe the failure asynchronously (like a
  // timeout), never re-entrantly from inside fail_region.
  ++counter;
  loop_->schedule_in(0.0,
                     [cb = std::move(cb)]() mutable { cb(std::nullopt); });
}

void Network::fail_region(RegionId r) {
  if (!down_.insert(r).second) return;  // already down
  RegionState& rs = region_states_[r];
  if (rs.wire.empty() && rs.fifo.empty()) return;
  // Transfers die with the region: every in-flight observer hears the
  // failure now. The already-scheduled completion events find their wire
  // ids gone and become no-ops — restoring the region cannot resurrect
  // them. Queued entries fail immediately too, instead of stranding until
  // an unrelated completion would have drained them.
  total_outstanding_ -= rs.wire.size();
  for (auto& [id, cb] : rs.wire) deliver_failure(std::move(cb), aborted_on_wire_);
  rs.wire.clear();
  for (auto& pending : rs.fifo) {
    deliver_failure(std::move(pending.cb), failed_in_queue_);
  }
  rs.fifo.clear();
}

void Network::restore_region(RegionId r) {
  if (down_.erase(r) == 0) return;  // already up: idempotent
  const RegionState& rs = region_states_[r];
  if (!rs.wire.empty() || !rs.fifo.empty()) {
    // fail_region's contract is that a downed region holds no wire or
    // queue state. Anything found here would strand forever — a restored
    // region only hands out slots on completions, and aborted transfers
    // have none coming — so a flapping region would leak a slot per cycle.
    throw std::logic_error(
        "Network: restore_region found stranded fetches for region " +
        std::to_string(r));
  }
}

std::optional<SimTimeMs> Network::backend_fetch(RegionId from, RegionId to,
                                                std::size_t bytes) {
  if (is_down(to)) return std::nullopt;
  // A synchronous caller that loses its response (gray drop) measures the
  // inflated discovery delay — probes against drop-sick regions come back
  // slow, not absent, so latency estimators see the sickness.
  return model_.sample_backend_fetch(from, to, bytes).latency_ms;
}

SimTimeMs Network::cache_fetch(std::size_t bytes) {
  return model_.cache_fetch_ms(bytes);
}

SimTimeMs Network::parallel_batch_ms(const std::vector<SimTimeMs>& latencies) {
  if (latencies.empty()) return 0.0;
  return *std::max_element(latencies.begin(), latencies.end());
}

}  // namespace agar::sim
