// Bounded lock-free single-producer/single-consumer ring.
//
// Cross-shard events travel over one of these per (producer shard,
// consumer shard) pair, following the classic real-time ring idiom (the
// ROADMAP's LinuxCNC `rtapi` exemplar): power-of-two capacity, a head
// index owned by the consumer, a tail index owned by the producer, and
// acquire/release ordering on the two atomics as the only synchronization.
// Slots are fixed-size value types; nothing is allocated on push or pop.
//
// The sharded engine drains rings only at window barriers, so the ring is
// sized for one window's worth of traffic; a full ring is not an error —
// the producer spills to a local overflow vector that the consumer adopts
// at the barrier (never blocking inside a window, which would deadlock the
// barrier protocol).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace agar::sim {

/// Destructive-interference stride for the ring indices. Pinned to 64
/// (the line size on every target this builds for) instead of
/// std::hardware_destructive_interference_size: the constant is part of
/// the layout, and GCC warns that the std value can differ between TUs
/// under different tuning flags.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename Slot>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024)
      : slots_(round_up_pow2(capacity_pow2)), mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full, leaving `slot`
  /// untouched so the caller can spill it.
  [[nodiscard]] bool try_push(Slot&& slot) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & mask_] = std::move(slot);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(Slot& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side convenience: drain everything currently visible.
  void drain_into(std::vector<Slot>& out) {
    Slot slot;
    while (try_pop(slot)) out.push_back(std::move(slot));
  }

  /// Approximate occupancy (exact on either owning thread).
  [[nodiscard]] std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
};

}  // namespace agar::sim
