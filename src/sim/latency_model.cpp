#include "sim/latency_model.hpp"

#include <stdexcept>

namespace agar::sim {

LatencyModel::LatencyModel(const Topology* topology, LatencyModelParams params,
                           std::uint64_t seed)
    : topology_(topology), params_(params), rng_(seed) {
  if (topology_ == nullptr) {
    throw std::invalid_argument("LatencyModel: null topology");
  }
  if (params_.jitter_fraction < 0 || params_.jitter_fraction >= 1) {
    throw std::invalid_argument("LatencyModel: jitter must be in [0, 1)");
  }
  slowdown_.assign(topology_->num_regions(), 1.0);
  gray_.assign(topology_->num_regions(), GrayParams{});
}

void LatencyModel::set_region_drop(RegionId r, double p, double latency_mult) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("LatencyModel: drop p must be in [0, 1)");
  }
  if (latency_mult <= 0.0) {
    throw std::invalid_argument("LatencyModel: drop latency mult must be > 0");
  }
  gray_.at(r).drop_p = p;
  gray_.at(r).drop_latency_mult = latency_mult;
}

void LatencyModel::set_region_straggle(RegionId r, double frac, double mult) {
  if (frac < 0.0 || frac > 1.0) {
    throw std::invalid_argument(
        "LatencyModel: straggle frac must be in [0, 1]");
  }
  if (mult <= 0.0) {
    throw std::invalid_argument("LatencyModel: straggle mult must be > 0");
  }
  gray_.at(r).straggle_frac = frac;
  gray_.at(r).straggle_mult = mult;
}

double LatencyModel::expected_gray_factor(RegionId r) const {
  const GrayParams& g = gray_[r];
  double factor = 1.0;
  if (g.straggle_frac > 0.0) {
    factor *= 1.0 + g.straggle_frac * (g.straggle_mult - 1.0);
  }
  if (g.drop_p > 0.0) {
    // Attempts until success are geometric: E[cost] = L·(1−p+p·mult)/(1−p)
    // — every lost attempt costs mult·L of discovery before the next try.
    factor *= (1.0 - g.drop_p + g.drop_p * g.drop_latency_mult) /
              (1.0 - g.drop_p);
  }
  return factor;
}

void LatencyModel::set_region_slowdown(RegionId r, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("LatencyModel: slowdown factor must be > 0");
  }
  slowdown_.at(r) = factor;
}

double LatencyModel::jitter() {
  const double j = params_.jitter_fraction;
  return rng_.uniform(1.0 - j, 1.0 + j);
}

double LatencyModel::transfer_ms(std::size_t bytes, double mbps) {
  // mbps is megabits/s; bytes * 8 bits / (mbps * 1e6 bits/s) * 1e3 ms.
  return static_cast<double>(bytes) * 8.0 / (mbps * 1000.0);
}

SimTimeMs LatencyModel::backend_fetch_ms(RegionId from, RegionId to,
                                         std::size_t bytes) {
  SimTimeMs latency = (topology_->base_latency_ms(from, to) * jitter() +
                       transfer_ms(bytes, params_.wan_bandwidth_mbps)) *
                      slowdown_[to];
  // Gray draws only while the knob is armed: an all-healthy run consumes
  // the exact jitter stream it always did (byte-identical results).
  const GrayParams& g = gray_[to];
  if (g.straggle_frac > 0.0 && rng_.next_double() < g.straggle_frac) {
    latency *= g.straggle_mult;
  }
  return latency;
}

FetchSample LatencyModel::sample_backend_fetch(RegionId from, RegionId to,
                                               std::size_t bytes) {
  FetchSample sample;
  sample.latency_ms = backend_fetch_ms(from, to, bytes);
  const GrayParams& g = gray_[to];
  if (g.drop_p > 0.0 && rng_.next_double() < g.drop_p) {
    sample.dropped = true;
    // The requester hears nothing until well past a healthy completion —
    // failure discovery is priced, unlike a clean outage's refusal.
    sample.latency_ms *= g.drop_latency_mult;
  }
  return sample;
}

SimTimeMs LatencyModel::expected_backend_fetch_ms(RegionId from, RegionId to,
                                                  std::size_t bytes) const {
  return (topology_->base_latency_ms(from, to) +
          transfer_ms(bytes, params_.wan_bandwidth_mbps)) *
         slowdown_[to] * expected_gray_factor(to);
}

SimTimeMs LatencyModel::cache_fetch_ms(std::size_t bytes) {
  return params_.cache_base_ms * jitter() +
         transfer_ms(bytes, params_.cache_bandwidth_mbps);
}

SimTimeMs LatencyModel::expected_cache_fetch_ms(std::size_t bytes) const {
  return params_.cache_base_ms +
         transfer_ms(bytes, params_.cache_bandwidth_mbps);
}

}  // namespace agar::sim
