#include "sim/latency_model.hpp"

#include <stdexcept>

namespace agar::sim {

LatencyModel::LatencyModel(const Topology* topology, LatencyModelParams params,
                           std::uint64_t seed)
    : topology_(topology), params_(params), rng_(seed) {
  if (topology_ == nullptr) {
    throw std::invalid_argument("LatencyModel: null topology");
  }
  if (params_.jitter_fraction < 0 || params_.jitter_fraction >= 1) {
    throw std::invalid_argument("LatencyModel: jitter must be in [0, 1)");
  }
  slowdown_.assign(topology_->num_regions(), 1.0);
}

void LatencyModel::set_region_slowdown(RegionId r, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("LatencyModel: slowdown factor must be > 0");
  }
  slowdown_.at(r) = factor;
}

double LatencyModel::jitter() {
  const double j = params_.jitter_fraction;
  return rng_.uniform(1.0 - j, 1.0 + j);
}

double LatencyModel::transfer_ms(std::size_t bytes, double mbps) {
  // mbps is megabits/s; bytes * 8 bits / (mbps * 1e6 bits/s) * 1e3 ms.
  return static_cast<double>(bytes) * 8.0 / (mbps * 1000.0);
}

SimTimeMs LatencyModel::backend_fetch_ms(RegionId from, RegionId to,
                                         std::size_t bytes) {
  return (topology_->base_latency_ms(from, to) * jitter() +
          transfer_ms(bytes, params_.wan_bandwidth_mbps)) *
         slowdown_[to];
}

SimTimeMs LatencyModel::expected_backend_fetch_ms(RegionId from, RegionId to,
                                                  std::size_t bytes) const {
  return (topology_->base_latency_ms(from, to) +
          transfer_ms(bytes, params_.wan_bandwidth_mbps)) *
         slowdown_[to];
}

SimTimeMs LatencyModel::cache_fetch_ms(std::size_t bytes) {
  return params_.cache_base_ms * jitter() +
         transfer_ms(bytes, params_.cache_bandwidth_mbps);
}

SimTimeMs LatencyModel::expected_cache_fetch_ms(std::size_t bytes) const {
  return params_.cache_base_ms +
         transfer_ms(bytes, params_.cache_bandwidth_mbps);
}

}  // namespace agar::sim
