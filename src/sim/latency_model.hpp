// Latency model: turns a (from, to, bytes) fetch into milliseconds.
//
// latency = base(from, to) * jitter + bytes / bandwidth
//
// * base comes from the Topology matrix and already includes the request
//   service overhead of an S3-like store;
// * jitter is multiplicative, uniform in [1-j, 1+j] (default ±10%), drawn
//   from a seeded RNG so runs are reproducible;
// * the bandwidth term makes larger transfers slower; chunk sizes in the
//   paper are ~114 KB so this term is small but non-zero.
//
// Cache fetches use a separate, much smaller constant (memcached on a LAN)
// with the same jitter treatment.
//
// A per-region multiplicative slowdown overlay models mid-run latency
// degradation (a congested or brown-out region): the scenario engine sets
// it on the fly, and both the sampled and the expected paths honour it —
// so planners that consult expectations (Agar's knapsack) see the
// degradation and can steer around it at the next reconfiguration.
//
// Gray failures extend the overlay idea beyond clean slowdowns: a region
// can *straggle* (a sampled fraction of its fetches takes mult× the
// nominal latency — the long-tail server) and *drop* (a response is lost
// with probability p; the loser discovers the loss only after
// drop_latency_mult× the sampled transfer time, modeling a timeout-priced
// failure instead of the free synchronous rejection of a down region).
// Gray RNG draws happen ONLY while a knob is active for the destination
// region, so runs without gray events consume the exact same jitter
// stream as before — byte-identical results are preserved. The expected
// path folds both knobs into a closed-form inflation factor so planners
// route around sick regions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/topology.hpp"

namespace agar::sim {

struct LatencyModelParams {
  double jitter_fraction = 0.10;        ///< ±10% multiplicative jitter
  double wan_bandwidth_mbps = 100.0;    ///< region-to-region throughput
  double cache_base_ms = 55.0;          ///< local memcached round-trip base
  double cache_bandwidth_mbps = 1000.0; ///< LAN throughput
};

/// Per-region gray-failure knobs (all off by default). `drop_p` is the
/// probability one backend fetch's response is lost; the requester learns
/// of the loss only after `drop_latency_mult` times the sampled transfer
/// latency. `straggle_frac` of fetches served by the region take
/// `straggle_mult` times their sampled latency (the slow-server tail).
struct GrayParams {
  double drop_p = 0.0;
  double drop_latency_mult = 3.0;
  double straggle_frac = 0.0;
  double straggle_mult = 1.0;

  [[nodiscard]] bool any() const {
    return drop_p > 0.0 || straggle_frac > 0.0;
  }
};

/// One sampled backend fetch under gray failures: how long until the
/// requester hears back, and whether what it hears is a loss.
struct FetchSample {
  SimTimeMs latency_ms = 0.0;
  bool dropped = false;
};

class LatencyModel {
 public:
  LatencyModel(const Topology* topology, LatencyModelParams params,
               std::uint64_t seed);

  /// Latency of fetching `bytes` from `to` as seen by a client in `from`.
  /// Straggler inflation applies here (probes measure it too); response
  /// drops do not — use `sample_backend_fetch` for the wire path.
  [[nodiscard]] SimTimeMs backend_fetch_ms(RegionId from, RegionId to,
                                           std::size_t bytes);

  /// Full gray-failure sample for one wire fetch: the straggle-inflated
  /// latency plus the drop decision (a dropped fetch resolves — as a
  /// failure — after latency_ms × drop_latency_mult).
  [[nodiscard]] FetchSample sample_backend_fetch(RegionId from, RegionId to,
                                                 std::size_t bytes);

  /// Same, but without jitter — used by planners that need expectations.
  [[nodiscard]] SimTimeMs expected_backend_fetch_ms(RegionId from, RegionId to,
                                                    std::size_t bytes) const;

  /// Latency of fetching `bytes` from the region-local cache.
  [[nodiscard]] SimTimeMs cache_fetch_ms(std::size_t bytes);

  [[nodiscard]] SimTimeMs expected_cache_fetch_ms(std::size_t bytes) const;

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const LatencyModelParams& params() const { return params_; }

  /// Multiplicative slowdown overlay on fetches *served by* region `r`
  /// (scenario latency degradation). 1.0 is nominal; must be > 0. Applies
  /// to sampled and expected backend fetches alike.
  void set_region_slowdown(RegionId r, double factor);
  [[nodiscard]] double region_slowdown(RegionId r) const {
    return slowdown_.at(r);
  }

  /// Gray-failure injection on fetches *served by* region `r`. p = 0
  /// clears the drop knob, frac = 0 (or mult = 1) clears the straggler
  /// knob. Both expectations and samples honour the knobs.
  void set_region_drop(RegionId r, double p, double latency_mult);
  void set_region_straggle(RegionId r, double frac, double mult);
  [[nodiscard]] const GrayParams& gray(RegionId r) const {
    return gray_.at(r);
  }

  /// Multiplier the gray knobs add to region `r`'s *expected* fetch cost:
  /// stragglers raise the mean by frac·(mult−1); drops turn one fetch
  /// into a geometric number of attempts, each failure costing
  /// drop_latency_mult× before the requester can try again.
  [[nodiscard]] double expected_gray_factor(RegionId r) const;

 private:
  [[nodiscard]] double jitter();
  [[nodiscard]] static double transfer_ms(std::size_t bytes, double mbps);

  const Topology* topology_;  // non-owning; outlives the model
  LatencyModelParams params_;
  Rng rng_;
  std::vector<double> slowdown_;  // per destination region, 1.0 = nominal
  std::vector<GrayParams> gray_;  // per destination region, all-off default
};

}  // namespace agar::sim
