// Latency model: turns a (from, to, bytes) fetch into milliseconds.
//
// latency = base(from, to) * jitter + bytes / bandwidth
//
// * base comes from the Topology matrix and already includes the request
//   service overhead of an S3-like store;
// * jitter is multiplicative, uniform in [1-j, 1+j] (default ±10%), drawn
//   from a seeded RNG so runs are reproducible;
// * the bandwidth term makes larger transfers slower; chunk sizes in the
//   paper are ~114 KB so this term is small but non-zero.
//
// Cache fetches use a separate, much smaller constant (memcached on a LAN)
// with the same jitter treatment.
//
// A per-region multiplicative slowdown overlay models mid-run latency
// degradation (a congested or brown-out region): the scenario engine sets
// it on the fly, and both the sampled and the expected paths honour it —
// so planners that consult expectations (Agar's knapsack) see the
// degradation and can steer around it at the next reconfiguration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/topology.hpp"

namespace agar::sim {

struct LatencyModelParams {
  double jitter_fraction = 0.10;        ///< ±10% multiplicative jitter
  double wan_bandwidth_mbps = 100.0;    ///< region-to-region throughput
  double cache_base_ms = 55.0;          ///< local memcached round-trip base
  double cache_bandwidth_mbps = 1000.0; ///< LAN throughput
};

class LatencyModel {
 public:
  LatencyModel(const Topology* topology, LatencyModelParams params,
               std::uint64_t seed);

  /// Latency of fetching `bytes` from `to` as seen by a client in `from`.
  [[nodiscard]] SimTimeMs backend_fetch_ms(RegionId from, RegionId to,
                                           std::size_t bytes);

  /// Same, but without jitter — used by planners that need expectations.
  [[nodiscard]] SimTimeMs expected_backend_fetch_ms(RegionId from, RegionId to,
                                                    std::size_t bytes) const;

  /// Latency of fetching `bytes` from the region-local cache.
  [[nodiscard]] SimTimeMs cache_fetch_ms(std::size_t bytes);

  [[nodiscard]] SimTimeMs expected_cache_fetch_ms(std::size_t bytes) const;

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] const LatencyModelParams& params() const { return params_; }

  /// Multiplicative slowdown overlay on fetches *served by* region `r`
  /// (scenario latency degradation). 1.0 is nominal; must be > 0. Applies
  /// to sampled and expected backend fetches alike.
  void set_region_slowdown(RegionId r, double factor);
  [[nodiscard]] double region_slowdown(RegionId r) const {
    return slowdown_.at(r);
  }

 private:
  [[nodiscard]] double jitter();
  [[nodiscard]] static double transfer_ms(std::size_t bytes, double mbps);

  const Topology* topology_;  // non-owning; outlives the model
  LatencyModelParams params_;
  Rng rng_;
  std::vector<double> slowdown_;  // per destination region, 1.0 = nominal
};

}  // namespace agar::sim
