#include "sim/event_loop.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace agar::sim {

namespace {
constexpr SimTimeMs kForever = std::numeric_limits<SimTimeMs>::infinity();
/// Heap fan-out. 4 children halve the depth of a binary heap; the extra
/// sibling compares are cheap next to moving 48-byte events an extra level.
constexpr std::size_t kHeapArity = 4;
}  // namespace

std::uint64_t EventLoop::allocate_seq(LaneId lane) {
  if (lane >= seqs_.size()) seqs_.resize(lane + 1, 0);
  return seqs_[lane]++;
}

void EventLoop::push_event(Event event) {
  // Hole-based sift-up: displaced parents move down once each; the new
  // event lands in its final slot in one move.
  heap_.emplace_back();
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!earlier(event, heap_[parent])) break;
    heap_[hole] = std::move(heap_[parent]);
    hole = parent;
  }
  heap_[hole] = std::move(event);
}

EventLoop::Event EventLoop::pop_top() {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Sift the hole left at the root down to where `last` belongs.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = hole * kHeapArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + kHeapArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[hole] = std::move(heap_[best]);
      hole = best;
    }
    heap_[hole] = std::move(last);
  }
  return top;
}

void EventLoop::schedule_at(SimTimeMs when, Callback fn) {
  push_event(Event{std::max(when, now_), lane_, allocate_seq(lane_),
                   std::move(fn)});
}

void EventLoop::schedule_in(SimTimeMs delay, Callback fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void EventLoop::schedule_keyed(SimTimeMs when, LaneId lane, std::uint64_t seq,
                               Callback fn) {
  push_event(Event{std::max(when, now_), lane, seq, std::move(fn)});
}

EventLoop::TimerId EventLoop::schedule_periodic(SimTimeMs period,
                                                std::function<bool()> fn) {
  if (!(period > 0.0)) {
    throw std::invalid_argument("EventLoop: periodic timer period must be > 0");
  }
  const TimerId id = next_timer_++;
  timers_.emplace(id, TimerRecord{std::move(fn), period});
  wheel_.insert({now_ + period, lane_, allocate_seq(lane_), id});
  return id;
}

bool EventLoop::cancel(TimerId id) { return timers_.erase(id) > 0; }

void EventLoop::fire_timer(TimerWheel::Entry entry) {
  now_ = entry.when;
  ++executed_;
  const auto it = timers_.find(entry.timer);
  if (it == timers_.end()) return;  // cancelled while armed: no-op firing
  const LaneId prev_lane = lane_;
  lane_ = entry.lane;
  // unordered_map references survive inserts from inside the callback; the
  // record is re-looked-up afterwards because cancel() may have erased it.
  const bool keep = it->second.fn();
  lane_ = prev_lane;
  const auto again = timers_.find(entry.timer);
  if (again == timers_.end()) return;  // cancelled itself: no re-arm
  if (!keep) {
    timers_.erase(again);
    return;
  }
  // Re-arm in place: same timer record, one fresh per-lane sequence number
  // — no callback re-wrap, no allocation.
  wheel_.insert(
      {now_ + again->second.period, entry.lane, allocate_seq(entry.lane),
       entry.timer});
}

bool EventLoop::advance_one(SimTimeMs horizon) {
  const Event* top = heap_.empty() ? nullptr : heap_.data();
  const TimerWheel::Entry* timer = wheel_.peek_min();
  if (top == nullptr && timer == nullptr) return false;
  const bool from_wheel =
      top == nullptr ||
      (timer != nullptr &&
       TimerWheel::key_less(timer->when, timer->lane, timer->seq, top->when,
                            top->lane, top->seq));
  if (from_wheel) {
    if (timer->when > horizon) return false;
    fire_timer(wheel_.pop_min());
    return true;
  }
  if (top->when > horizon) return false;
  Event event = pop_top();
  now_ = event.when;
  ++executed_;
  const LaneId prev_lane = lane_;
  lane_ = event.lane;
  event.fn();
  lane_ = prev_lane;
  return true;
}

bool EventLoop::step() { return advance_one(kForever); }

void EventLoop::run() {
  while (advance_one(kForever)) {
  }
}

void EventLoop::run_until(SimTimeMs horizon) {
  while (advance_one(horizon)) {
  }
  now_ = std::max(now_, horizon);
}

SimTimeMs EventLoop::next_event_time() {
  const Event* top = heap_.empty() ? nullptr : heap_.data();
  const TimerWheel::Entry* timer = wheel_.peek_min();
  SimTimeMs next = kForever;
  if (top != nullptr) next = top->when;
  if (timer != nullptr) next = std::min(next, timer->when);
  return next;
}

}  // namespace agar::sim
