#include "sim/event_loop.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace agar::sim {

void EventLoop::schedule_at(SimTimeMs when, Callback fn) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
}

void EventLoop::schedule_in(SimTimeMs delay, Callback fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

EventLoop::TimerId EventLoop::schedule_periodic(SimTimeMs period,
                                                std::function<bool()> fn) {
  const TimerId id = next_timer_++;
  active_timers_.insert(id);
  arm_periodic(id, period,
               std::make_shared<std::function<bool()>>(std::move(fn)));
  return id;
}

void EventLoop::arm_periodic(TimerId id, SimTimeMs period,
                             std::shared_ptr<std::function<bool()>> fn) {
  // Capturing `this` is safe because callbacks never outlive the loop. The
  // activity check runs both before AND after the callback: before, so a
  // firing already queued when cancel() was called becomes a no-op; after,
  // so a callback that cancels itself and still returns true cannot leak a
  // re-armed timer.
  schedule_in(period, [this, id, period, fn = std::move(fn)]() mutable {
    if (!active_timers_.contains(id)) return;  // cancelled while queued
    const bool keep = (*fn)();
    if (!keep || !active_timers_.contains(id)) {
      active_timers_.erase(id);
      return;
    }
    arm_periodic(id, period, std::move(fn));
  });
}

bool EventLoop::cancel(TimerId id) { return active_timers_.erase(id) > 0; }

void EventLoop::pop_and_run() {
  // Copy out before pop so the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  pop_and_run();
  return true;
}

void EventLoop::run() {
  while (!queue_.empty()) pop_and_run();
}

void EventLoop::run_until(SimTimeMs horizon) {
  while (!queue_.empty() && queue_.top().when <= horizon) pop_and_run();
  now_ = std::max(now_, horizon);
}

}  // namespace agar::sim
