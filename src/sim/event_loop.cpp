#include "sim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace agar::sim {

void EventLoop::schedule_at(SimTimeMs when, Callback fn) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(fn)});
}

void EventLoop::schedule_in(SimTimeMs delay, Callback fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void EventLoop::schedule_periodic(SimTimeMs period, std::function<bool()> fn) {
  // Each firing re-arms itself; capturing `this` is safe because callbacks
  // never outlive the loop.
  schedule_in(period, [this, period, fn = std::move(fn)]() mutable {
    if (fn()) schedule_periodic(period, std::move(fn));
  });
}

void EventLoop::pop_and_run() {
  // Copy out before pop so the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
}

void EventLoop::run() {
  while (!queue_.empty()) pop_and_run();
}

void EventLoop::run_until(SimTimeMs horizon) {
  while (!queue_.empty() && queue_.top().when <= horizon) pop_and_run();
  now_ = std::max(now_, horizon);
}

}  // namespace agar::sim
