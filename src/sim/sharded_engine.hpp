// Deterministic parallel discrete-event engine.
//
// The engine partitions the simulation's *lanes* (logical partitions — the
// runner uses one lane per client region) across N *shards*, each shard
// owning one EventLoop and one worker thread. Shards advance in
// conservative time windows: every shard executes its local events up to
// the window boundary, all shards meet at a barrier, cross-shard messages
// are drained, and only then does the next window start — so no shard can
// ever receive an event from its own past (the classic Chandy–Misra
// conservative synchronization, with the window playing the lookahead
// role).
//
// Cross-shard messages travel over one bounded lock-free SPSC ring per
// (producer, consumer) shard pair (sim/spsc_ring.hpp), with fixed-size
// slots keyed (when, origin lane, origin seq). Because the key is drawn
// from the *lane's* counter — not the shard's — the merged execution order
// every loop produces is exactly the order a single loop running all lanes
// would produce: byte-identical results for any shard count. A one-shard
// engine runs inline on the calling thread with no threads, barriers or
// rings, and is the reference the N-shard runs must match.
//
// Window protocol per window k over [k·W, (k+1)·W]:
//   1. execute: each shard runs its loop up to the boundary (k+1)·W
//   2. barrier — every producer has finished pushing this window's messages
//   3. drain: each shard pops its incoming rings (and adopts overflow
//      spills) and inserts the messages into its own loop
//   4. barrier — one thread evaluates the stop predicate; all shards
//      either continue to window k+1 or stop together
//
// A full ring never blocks the producer (blocking inside a window would
// deadlock step 2); the producer spills to a plain vector that the
// consumer adopts in step 3, after the barrier has made it safe to read.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/event_loop.hpp"
#include "sim/spsc_ring.hpp"

namespace agar::sim {

class ShardedEngine {
 public:
  using LaneId = EventLoop::LaneId;

  /// Fixed-size ring slot: the deterministic ordering key plus the event
  /// body. `lane`/`seq` always come from the *producing* lane's counter.
  struct Message {
    SimTimeMs when = 0.0;
    LaneId lane = 0;
    std::uint64_t seq = 0;
    EventLoop::Callback fn;
  };

  /// `num_shards` is clamped to [1, num_lanes] — a shard without lanes
  /// would only burn a thread on empty windows.
  ShardedEngine(std::size_t num_shards, std::size_t num_lanes,
                std::size_t ring_capacity = 1024);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t num_lanes() const { return num_lanes_; }

  /// Lanes are packed round-robin so consecutive lanes land on distinct
  /// shards. The mapping must never influence results — only which thread
  /// happens to execute a lane's events.
  [[nodiscard]] std::size_t shard_of_lane(LaneId lane) const {
    return lane % shards_.size();
  }
  [[nodiscard]] EventLoop& loop_of_lane(LaneId lane) {
    return shards_[shard_of_lane(lane)]->loop;
  }
  [[nodiscard]] EventLoop& loop_of_shard(std::size_t shard) {
    return shards_[shard]->loop;
  }

  /// Virtual time of the last completed window boundary.
  [[nodiscard]] SimTimeMs now() const { return shards_[0]->loop.now(); }

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Messages that crossed a shard boundary (ring + spill), observability.
  [[nodiscard]] std::uint64_t cross_shard_messages() const {
    return cross_messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ring_spills() const {
    return spill_messages_.load(std::memory_order_relaxed);
  }

  /// Post an event to `to_lane`. Must be called from inside an event
  /// executing on this engine (the producing lane is the executing
  /// event's lane). The fire time is clamped to the end of the current
  /// window — the conservative lookahead bound — so the result cannot
  /// depend on whether the destination lane shares the producer's shard.
  void post(LaneId to_lane, SimTimeMs when, EventLoop::Callback fn);

  /// Run whole windows of `window_ms` until `stop()` is true at a window
  /// boundary or every shard is idle with no messages in flight. `stop`
  /// runs on one thread while all shards are quiescent at the barrier; it
  /// may read any lane state. The predicate is evaluated at time 0 too,
  /// mirroring the serial driver's check-before-every-window loop.
  void run_windows(SimTimeMs window_ms, const std::function<bool()>& stop);

 private:
  struct alignas(kCacheLineSize) Shard {
    EventLoop loop;
    SimTimeMs window_end = 0.0;
    std::vector<Message> inbox;  // drain staging, reused across windows
  };
  /// Producer-side channel to one consumer shard: the lock-free ring plus
  /// the overflow spill (written by producer inside the window, adopted by
  /// the consumer after the barrier).
  struct Channel {
    explicit Channel(std::size_t capacity) : ring(capacity) {}
    SpscRing<Message> ring;
    std::vector<Message> spill;
  };

  [[nodiscard]] Channel& channel(std::size_t from, std::size_t to) {
    return *channels_[from * shards_.size() + to];
  }
  [[nodiscard]] bool all_idle() const;
  void drain_into(std::size_t shard);
  void run_inline(SimTimeMs window_ms, const std::function<bool()>& stop);
  void worker(std::size_t shard, SimTimeMs window_ms);

  std::size_t num_lanes_;
  SimTimeMs window_ms_ = 1.0;  ///< set by run_windows; post()'s clamp grid
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [from * N + to]
  std::atomic<std::uint64_t> cross_messages_{0};
  std::atomic<std::uint64_t> spill_messages_{0};

  // Per-run coordination (workers + the barrier completion step).
  std::function<bool()> stop_;
  bool stop_flag_ = false;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::unique_ptr<std::barrier<>> window_done_;
  struct DrainCompletion {
    ShardedEngine* engine;
    void operator()() noexcept { engine->on_window_complete(); }
  };
  std::unique_ptr<std::barrier<DrainCompletion>> drain_done_;
  void on_window_complete() noexcept;
};

}  // namespace agar::sim
