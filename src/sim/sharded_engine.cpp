#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>
#include <utility>

namespace agar::sim {

namespace {

/// Index of the shard whose events the current thread is executing, or -1
/// outside of engine-driven execution. Lets post() identify the producing
/// loop without threading an explicit context through every callback.
// agar-lint: global-ok(per-thread shard index for post() provenance; set and
// cleared by ShardScope, never part of simulation state)
thread_local std::ptrdiff_t tl_shard = -1;

struct ShardScope {
  explicit ShardScope(std::size_t shard) { tl_shard = shard; }
  ~ShardScope() { tl_shard = -1; }
};

}  // namespace

ShardedEngine::ShardedEngine(std::size_t num_shards, std::size_t num_lanes,
                             std::size_t ring_capacity)
    : num_lanes_(std::max<std::size_t>(num_lanes, 1)) {
  const std::size_t n =
      std::clamp<std::size_t>(num_shards, 1, num_lanes_);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  channels_.resize(n * n);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      channels_[from * n + to] = std::make_unique<Channel>(ring_capacity);
    }
  }
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->loop.events_executed();
  return total;
}

bool ShardedEngine::all_idle() const {
  for (const auto& shard : shards_) {
    if (!shard->loop.empty()) return false;
  }
  return true;
}

void ShardedEngine::post(LaneId to_lane, SimTimeMs when,
                         EventLoop::Callback fn) {
  assert(tl_shard >= 0 && "post() must run inside an engine-driven event");
  assert(to_lane < num_lanes_);
  Shard& from = *shards_[static_cast<std::size_t>(tl_shard)];
  const LaneId from_lane = from.loop.scheduling_lane();
  // Conservative lookahead: never target a time the destination shard may
  // already have passed. The bound must be a pure function of the sending
  // event's virtual time — NOT of the window the event happened to execute
  // in: an event firing exactly at a boundary runs in window k when local
  // but in window k+1 when it arrived over a ring, and using the executing
  // window's end would leak that difference into the fire time.
  const SimTimeMs now = from.loop.now();
  const SimTimeMs bound = (std::floor(now / window_ms_) + 1.0) * window_ms_;
  const SimTimeMs fire = std::max(when, bound);
  const std::uint64_t seq = from.loop.allocate_seq(from_lane);
  const std::size_t to_shard = shard_of_lane(to_lane);
  if (to_shard == static_cast<std::size_t>(tl_shard)) {
    from.loop.schedule_keyed(fire, from_lane, seq, std::move(fn));
    return;
  }
  cross_messages_.fetch_add(1, std::memory_order_relaxed);
  Channel& ch = channel(static_cast<std::size_t>(tl_shard), to_shard);
  Message msg{fire, from_lane, seq, std::move(fn)};
  if (!ch.ring.try_push(std::move(msg))) {
    spill_messages_.fetch_add(1, std::memory_order_relaxed);
    ch.spill.push_back(std::move(msg));
  }
}

void ShardedEngine::drain_into(std::size_t shard) {
  Shard& s = *shards_[shard];
  for (std::size_t from = 0; from < shards_.size(); ++from) {
    if (from == shard) continue;
    Channel& ch = channel(from, shard);
    s.inbox.clear();
    ch.ring.drain_into(s.inbox);
    for (Message& msg : ch.spill) s.inbox.push_back(std::move(msg));
    ch.spill.clear();
    // Insertion order is irrelevant: the loop orders by (when, lane, seq)
    // and every key is unique, so the heap state is deterministic.
    for (Message& msg : s.inbox) {
      s.loop.schedule_keyed(msg.when, msg.lane, msg.seq, std::move(msg.fn));
    }
  }
}

void ShardedEngine::on_window_complete() noexcept {
  try {
    stop_flag_ = failed_.load(std::memory_order_relaxed) ||
                 (stop_ && stop_()) || all_idle();
  } catch (...) {
    if (!failed_.exchange(true)) error_ = std::current_exception();
    stop_flag_ = true;
  }
}

void ShardedEngine::worker(std::size_t shard, SimTimeMs window_ms) {
  ShardScope scope(shard);
  Shard& s = *shards_[shard];
  while (true) {
    s.window_end += window_ms;
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        s.loop.run_until(s.window_end);
      } catch (...) {
        if (!failed_.exchange(true)) error_ = std::current_exception();
      }
    }
    window_done_->arrive_and_wait();  // all producers done with this window
    drain_into(shard);
    drain_done_->arrive_and_wait();   // completion step sets stop_flag_
    if (stop_flag_) break;
  }
}

void ShardedEngine::run_inline(SimTimeMs window_ms,
                               const std::function<bool()>& stop) {
  ShardScope scope(0);
  Shard& s = *shards_[0];
  while (true) {
    s.window_end += window_ms;
    s.loop.run_until(s.window_end);
    if ((stop && stop()) || all_idle()) break;
  }
}

void ShardedEngine::run_windows(SimTimeMs window_ms,
                                const std::function<bool()>& stop) {
  assert(window_ms > 0.0);
  window_ms_ = window_ms;
  // Boundary-0 check, mirroring the serial driver's check-before-window.
  if ((stop && stop()) || all_idle()) return;

  if (shards_.size() == 1) {
    run_inline(window_ms, stop);
    return;
  }

  stop_ = stop;
  stop_flag_ = false;
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  const auto n = static_cast<std::ptrdiff_t>(shards_.size());
  window_done_ = std::make_unique<std::barrier<>>(n);
  drain_done_ =
      std::make_unique<std::barrier<DrainCompletion>>(n, DrainCompletion{this});

  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, window_ms] { worker(i, window_ms); });
  }
  for (std::thread& t : threads) t.join();

  stop_ = nullptr;
  window_done_.reset();
  drain_done_.reset();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace agar::sim
