// Hierarchical timer wheel — O(1) arm/fire/cancel for periodic timers.
//
// The event loop used to keep every pending periodic firing in the same
// binary heap as one-shot events, re-wrapping the callback in a fresh
// heap-allocated closure (and a shared_ptr rebind) on every re-arm. The
// wheel replaces that: an armed firing is a 24-byte slot entry hashed into
// a bucket by its integral tick, so arming costs one vector push, firing
// pops the bucket, and cancelling is an O(1) map erase in the loop (the
// stale wheel entry fires as a no-op, exactly like the old queued-event
// semantics).
//
// Three 256-slot levels at 1 ms per tick cover ~4.6 virtual hours; later
// entries go to a small overflow list that cascades down as time advances.
// Entries keep their exact (possibly fractional) fire time and their
// deterministic (when, lane, seq) key, so the loop can interleave wheel
// firings with heap events in the exact total order the serial simulator
// has always used.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace agar::sim {

class TimerWheel {
 public:
  /// One armed firing. `lane`/`seq` make the deterministic ordering key;
  /// `timer` identifies the periodic-timer record in the event loop.
  struct Entry {
    SimTimeMs when = 0.0;
    std::uint32_t lane = 0;
    std::uint64_t seq = 0;
    std::uint64_t timer = 0;
  };

  /// Total-order key shared with the event queue: (when, lane, seq).
  [[nodiscard]] static bool key_less(SimTimeMs aw, std::uint32_t al,
                                     std::uint64_t as, SimTimeMs bw,
                                     std::uint32_t bl, std::uint64_t bs) {
    if (aw != bw) return aw < bw;
    if (al != bl) return al < bl;
    return as < bs;
  }

  void insert(const Entry& entry);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Earliest entry by (when, lane, seq), or nullptr if empty. Cached;
  /// recomputed lazily after inserts/pops (the scan is bounded by the slot
  /// count, and slots hold at most a handful of timers each).
  [[nodiscard]] const Entry* peek_min();

  /// Remove and return the earliest entry. Precondition: !empty().
  Entry pop_min();

 private:
  static constexpr std::size_t kSlotBits = 8;              // 256 slots/level
  static constexpr std::size_t kSlots = 1u << kSlotBits;
  static constexpr std::size_t kLevels = 3;                // ~4.6 h horizon

  using Slot = std::vector<Entry>;

  /// Tick (integral ms) of an entry.
  [[nodiscard]] static std::uint64_t tick_of(SimTimeMs when) {
    return when <= 0.0 ? 0 : static_cast<std::uint64_t>(when);
  }

  /// Place an entry relative to the current base tick.
  void place(const Entry& entry);
  /// Rebucket every armed entry against a base at the earliest armed
  /// tick, so level 0 covers exactly [base, base + kSlots). Precondition:
  /// size_ > 0.
  void cascade();
  /// Earliest non-empty level-0 slot index, scanning from base_tick_.
  [[nodiscard]] bool find_min_level0(Entry& out);

  std::vector<Slot> levels_[kLevels];
  Slot overflow_;
  std::uint64_t base_tick_ = 0;   ///< no armed entry fires before this tick
  /// Earliest tick armed above level 0 (levels 1+, overflow). Lets
  /// peek_min detect when base has advanced past an upper entry's
  /// insert-time window and a cascade is due even though level 0 is
  /// non-empty — without it such an entry would fire late (or never),
  /// breaking the total order against the heap.
  std::uint64_t upper_min_tick_ = kNoTick;
  static constexpr std::uint64_t kNoTick = ~0ull;
  std::size_t size_ = 0;
  std::size_t level_count_[kLevels] = {0, 0, 0};
  bool min_valid_ = false;
  Entry min_;

 public:
  TimerWheel() {
    for (auto& level : levels_) level.resize(kSlots);
  }
};

}  // namespace agar::sim
