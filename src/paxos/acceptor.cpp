#include "paxos/acceptor.hpp"

namespace agar::paxos {

Promise Acceptor::handle_prepare(Ballot ballot) {
  Promise p;
  if (ballot <= promised_) {
    p.ok = false;
    p.promised = promised_;
    return p;
  }
  promised_ = ballot;
  p.ok = true;
  p.promised = promised_;
  p.accepted_ballot = accepted_ballot_;
  p.accepted_value = accepted_value_;
  return p;
}

Accepted Acceptor::handle_accept(Ballot ballot, const std::string& value) {
  Accepted a;
  if (ballot < promised_) {
    a.ok = false;
    a.promised = promised_;
    return a;
  }
  promised_ = ballot;
  accepted_ballot_ = ballot;
  accepted_value_ = value;
  a.ok = true;
  a.promised = promised_;
  return a;
}

}  // namespace agar::paxos
