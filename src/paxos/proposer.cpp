#include "paxos/proposer.hpp"

#include <algorithm>
#include <stdexcept>

namespace agar::paxos {

Proposer::Proposer(std::vector<Acceptor*> acceptors, sim::Network* network,
                   ProposerParams params)
    : acceptors_(std::move(acceptors)), network_(network), params_(params) {
  if (network_ == nullptr) {
    throw std::invalid_argument("Proposer: null network");
  }
  std::size_t live = 0;
  for (const auto* a : acceptors_) live += (a != nullptr);
  if (live == 0) throw std::invalid_argument("Proposer: no acceptors");
}

std::optional<SimTimeMs> Proposer::rtt(RegionId region) {
  // Small control message: scale the chunk-fetch latency down; zero bytes
  // so the bandwidth term vanishes.
  const auto fetch = network_->backend_fetch(params_.region, region, 0);
  if (!fetch.has_value()) return std::nullopt;
  return *fetch * params_.message_rtt_factor;
}

ProposeOutcome Proposer::propose(const std::string& value) {
  ProposeOutcome outcome;

  for (std::uint32_t attempt = 0; attempt < params_.max_rounds; ++attempt) {
    ++outcome.rounds;
    const Ballot ballot = make_ballot(next_round_++, params_.proposer_id);

    // Phase 1: prepare. Collect promises with their arrival times.
    std::vector<SimTimeMs> promise_rtts;
    Ballot highest_accepted = 0;
    std::optional<std::string> adopted;
    std::size_t promises = 0;
    for (RegionId r = 0; r < acceptors_.size(); ++r) {
      Acceptor* acceptor = acceptors_[r];
      if (acceptor == nullptr) continue;
      const auto roundtrip = rtt(r);
      if (!roundtrip.has_value()) continue;  // region down
      const Promise p = acceptor->handle_prepare(ballot);
      promise_rtts.push_back(*roundtrip);
      if (!p.ok) continue;
      ++promises;
      if (p.accepted_ballot.has_value() &&
          *p.accepted_ballot >= highest_accepted) {
        highest_accepted = *p.accepted_ballot;
        adopted = p.accepted_value;
      }
    }
    // The phase costs the quorum-th fastest round-trip even on failure.
    if (promise_rtts.size() >= quorum()) {
      std::nth_element(promise_rtts.begin(),
                       promise_rtts.begin() +
                           static_cast<std::ptrdiff_t>(quorum()) - 1,
                       promise_rtts.end());
      outcome.latency_ms += promise_rtts[quorum() - 1];
    } else if (!promise_rtts.empty()) {
      outcome.latency_ms +=
          *std::max_element(promise_rtts.begin(), promise_rtts.end());
    }
    if (promises < quorum()) continue;  // retry with a higher ballot

    // Paxos safety: adopt the highest already-accepted value if any.
    const std::string proposal = adopted.value_or(value);

    // Phase 2: accept.
    std::vector<SimTimeMs> accept_rtts;
    std::size_t accepts = 0;
    for (RegionId r = 0; r < acceptors_.size(); ++r) {
      Acceptor* acceptor = acceptors_[r];
      if (acceptor == nullptr) continue;
      const auto roundtrip = rtt(r);
      if (!roundtrip.has_value()) continue;
      const Accepted a = acceptor->handle_accept(ballot, proposal);
      accept_rtts.push_back(*roundtrip);
      if (a.ok) ++accepts;
    }
    if (accept_rtts.size() >= quorum()) {
      std::nth_element(accept_rtts.begin(),
                       accept_rtts.begin() +
                           static_cast<std::ptrdiff_t>(quorum()) - 1,
                       accept_rtts.end());
      outcome.latency_ms += accept_rtts[quorum() - 1];
    } else if (!accept_rtts.empty()) {
      outcome.latency_ms +=
          *std::max_element(accept_rtts.begin(), accept_rtts.end());
    }
    if (accepts >= quorum()) {
      outcome.chosen = true;
      outcome.value = proposal;
      return outcome;
    }
  }
  return outcome;  // not chosen within max_rounds
}

}  // namespace agar::paxos
