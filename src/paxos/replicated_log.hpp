// A replicated log built from single-decree Paxos instances, one per slot
// (multi-Paxos without a distinguished leader: every append runs both
// phases; concurrent appends to the same slot are resolved by Paxos itself
// and the loser moves to the next slot).
//
// The log is the ordering service behind write coherence: every object
// write appends an invalidation record; caches consume the log in slot
// order, so all regions see the same write order.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "paxos/proposer.hpp"

namespace agar::paxos {

struct AppendOutcome {
  bool ok = false;
  std::size_t slot = 0;      ///< where the record landed
  SimTimeMs latency_ms = 0.0;
  std::uint32_t slots_tried = 0;
};

class ReplicatedLog {
 public:
  /// One acceptor per region (the log is replicated everywhere Agar runs).
  ReplicatedLog(std::size_t num_regions, sim::Network* network,
                double message_rtt_factor = 0.3);

  /// Append `record` from a proposer in `region`. Walks forward from the
  /// first locally unknown slot until the record is chosen in some slot.
  [[nodiscard]] AppendOutcome append(RegionId region,
                                     const std::string& record);

  /// Decided record in `slot`, if this node has learned it.
  [[nodiscard]] std::optional<std::string> learned(std::size_t slot) const;

  /// Number of contiguous decided slots from 0.
  [[nodiscard]] std::size_t decided_prefix() const;

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::vector<Acceptor> acceptors;
    std::optional<std::string> chosen;
  };

  Slot& slot_at(std::size_t index);

  std::size_t num_regions_;
  sim::Network* network_;  // non-owning
  double message_rtt_factor_;
  std::uint32_t next_proposer_id_ = 1;
  std::vector<Slot> slots_;
};

}  // namespace agar::paxos
