#include "paxos/replicated_log.hpp"

#include <stdexcept>

namespace agar::paxos {

ReplicatedLog::ReplicatedLog(std::size_t num_regions, sim::Network* network,
                             double message_rtt_factor)
    : num_regions_(num_regions),
      network_(network),
      message_rtt_factor_(message_rtt_factor) {
  if (num_regions_ == 0) {
    throw std::invalid_argument("ReplicatedLog: no regions");
  }
  if (network_ == nullptr) {
    throw std::invalid_argument("ReplicatedLog: null network");
  }
}

ReplicatedLog::Slot& ReplicatedLog::slot_at(std::size_t index) {
  while (slots_.size() <= index) {
    Slot s;
    s.acceptors.resize(num_regions_);
    slots_.push_back(std::move(s));
  }
  return slots_[index];
}

AppendOutcome ReplicatedLog::append(RegionId region,
                                    const std::string& record) {
  AppendOutcome out;
  // Start at the first slot not known (locally) to be decided.
  std::size_t slot_index = decided_prefix();

  // Bounded walk: each iteration either decides this slot with our record,
  // or learns someone else's record occupied it and moves on.
  for (int guard = 0; guard < 1024; ++guard) {
    Slot& slot = slot_at(slot_index);
    ++out.slots_tried;

    std::vector<Acceptor*> acceptors;
    acceptors.reserve(num_regions_);
    for (auto& a : slot.acceptors) acceptors.push_back(&a);

    ProposerParams params;
    params.region = region;
    params.proposer_id = next_proposer_id_++;
    params.message_rtt_factor = message_rtt_factor_;
    Proposer proposer(acceptors, network_, params);

    const ProposeOutcome result = proposer.propose(record);
    out.latency_ms += result.latency_ms;
    if (!result.chosen) return out;  // quorum unavailable

    slot.chosen = result.value;
    if (result.value == record) {
      out.ok = true;
      out.slot = slot_index;
      return out;
    }
    // Someone else's record was already bound to this slot; ours goes in a
    // later one.
    ++slot_index;
  }
  return out;
}

std::optional<std::string> ReplicatedLog::learned(std::size_t slot) const {
  if (slot >= slots_.size()) return std::nullopt;
  return slots_[slot].chosen;
}

std::size_t ReplicatedLog::decided_prefix() const {
  std::size_t n = 0;
  while (n < slots_.size() && slots_[n].chosen.has_value()) ++n;
  return n;
}

}  // namespace agar::paxos
