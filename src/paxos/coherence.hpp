// Write coherence for Agar caches — the §VI extension: "Agar would need to
// implement a cache coherence algorithm, similar to CPUs. Protocols such as
// Paxos could provide the necessary synchronization primitives."
//
// Design (write-invalidate):
//   * every object carries a version;
//   * a write appends an invalidation record (key, version) to the
//     Paxos-replicated log — this serializes concurrent writers globally;
//   * each region's cache registers as a listener; applying the log in slot
//     order erases the object's chunks from the cache, so subsequent reads
//     miss and repopulate with fresh data;
//   * readers in the writer's region observe their own writes immediately
//     (the append completes before the write acknowledges).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "paxos/replicated_log.hpp"

namespace agar::paxos {

/// One committed write.
struct WriteRecord {
  ObjectKey key;
  std::uint64_t version = 0;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static WriteRecord decode(const std::string& s);
};

class CoherenceCoordinator {
 public:
  CoherenceCoordinator(std::size_t num_regions, sim::Network* network,
                       double message_rtt_factor = 0.3);

  /// Register a region's cache; its entries for a written object's chunks
  /// (keys "<object>#<i>") are erased when the write commits.
  /// `total_chunks` bounds the chunk indices to invalidate.
  void attach_cache(RegionId region, cache::CacheEngine* cache,
                    std::size_t total_chunks);

  /// Commit a write of `key` from `region`: serializes through the log,
  /// bumps the version, applies invalidations everywhere. Returns the
  /// consensus commit latency (the data-path chunk uploads are the
  /// caller's business) or nullopt if no quorum was reachable.
  [[nodiscard]] std::optional<SimTimeMs> commit_write(RegionId region,
                                                      const ObjectKey& key);

  /// Current committed version of `key` (0 = never written through us).
  [[nodiscard]] std::uint64_t version(const ObjectKey& key) const;

  [[nodiscard]] const ReplicatedLog& log() const { return log_; }
  [[nodiscard]] std::uint64_t invalidations_applied() const {
    return invalidations_;
  }

 private:
  void apply_decided_records();

  struct AttachedCache {
    RegionId region = kInvalidRegion;
    cache::CacheEngine* cache = nullptr;  // non-owning
    std::size_t total_chunks = 0;
  };

  ReplicatedLog log_;
  std::vector<AttachedCache> caches_;
  std::unordered_map<ObjectKey, std::uint64_t> versions_;
  std::size_t applied_prefix_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace agar::paxos
