// Single-decree Paxos proposer running against a quorum of simulated
// acceptors.
//
// The proposer is synchronous over the simulation: it "sends" prepare and
// accept messages to every acceptor, collects the responses that arrive
// (down regions never answer), and reports both the consensus outcome and
// the wall-clock (simulated) latency of the two phases. Message latency is
// modelled as a fraction of the inter-region chunk-fetch base latency
// (consensus messages are tiny compared to ~114 KB chunks); a phase
// completes when the quorum-forming response arrives, i.e. its latency is
// the quorum-th smallest round-trip.
#pragma once

#include <optional>
#include <vector>

#include "paxos/acceptor.hpp"
#include "sim/network.hpp"

namespace agar::paxos {

struct ProposerParams {
  RegionId region = 0;         ///< where the proposer runs
  std::uint32_t proposer_id = 0;
  /// Consensus message RTT = base chunk latency x this factor.
  double message_rtt_factor = 0.3;
  /// Give up after this many ballot rounds (contention backoff).
  std::uint32_t max_rounds = 16;
};

struct ProposeOutcome {
  bool chosen = false;
  std::string value;      ///< the value actually chosen (may differ!)
  SimTimeMs latency_ms = 0.0;
  std::uint32_t rounds = 0;
};

class Proposer {
 public:
  /// `acceptors[i]` lives in region i; a null entry means the region hosts
  /// no acceptor.
  Proposer(std::vector<Acceptor*> acceptors, sim::Network* network,
           ProposerParams params);

  /// Try to get `value` chosen. Per Paxos, if a previous proposal was
  /// already (partially) accepted, the proposer adopts and drives THAT
  /// value to completion — the outcome reports the chosen value.
  [[nodiscard]] ProposeOutcome propose(const std::string& value);

  [[nodiscard]] std::size_t quorum() const { return acceptors_.size() / 2 + 1; }

 private:
  /// Round-trip latency to the acceptor in `region`, or nullopt if down.
  [[nodiscard]] std::optional<SimTimeMs> rtt(RegionId region);

  std::vector<Acceptor*> acceptors_;  // non-owning
  sim::Network* network_;             // non-owning
  ProposerParams params_;
  std::uint32_t next_round_ = 1;
};

}  // namespace agar::paxos
