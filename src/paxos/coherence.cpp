#include "paxos/coherence.hpp"

#include <stdexcept>

#include "common/types.hpp"

namespace agar::paxos {

std::string WriteRecord::encode() const {
  return key + "@" + std::to_string(version);
}

WriteRecord WriteRecord::decode(const std::string& s) {
  const auto at = s.rfind('@');
  if (at == std::string::npos) {
    throw std::invalid_argument("WriteRecord: malformed record " + s);
  }
  WriteRecord r;
  r.key = s.substr(0, at);
  r.version = std::stoull(s.substr(at + 1));
  return r;
}

CoherenceCoordinator::CoherenceCoordinator(std::size_t num_regions,
                                           sim::Network* network,
                                           double message_rtt_factor)
    : log_(num_regions, network, message_rtt_factor) {}

void CoherenceCoordinator::attach_cache(RegionId region,
                                        cache::CacheEngine* cache,
                                        std::size_t total_chunks) {
  if (cache == nullptr) {
    throw std::invalid_argument("CoherenceCoordinator: null cache");
  }
  caches_.push_back(AttachedCache{region, cache, total_chunks});
}

std::optional<SimTimeMs> CoherenceCoordinator::commit_write(
    RegionId region, const ObjectKey& key) {
  WriteRecord record;
  record.key = key;
  record.version = version(key) + 1;

  const AppendOutcome outcome = log_.append(region, record.encode());
  if (!outcome.ok) return std::nullopt;

  // Apply everything decided so far, in slot order, everywhere. In the
  // prototype this would be learners pushing to caches; the simulation
  // applies synchronously (the commit already paid the consensus latency).
  apply_decided_records();
  return outcome.latency_ms;
}

void CoherenceCoordinator::apply_decided_records() {
  const std::size_t prefix = log_.decided_prefix();
  for (; applied_prefix_ < prefix; ++applied_prefix_) {
    const auto decided = log_.learned(applied_prefix_);
    const WriteRecord record = WriteRecord::decode(*decided);
    // Versions apply in log order; re-writes of the same key may commit a
    // lower-than-proposed version number, so take the max.
    auto& v = versions_[record.key];
    v = std::max(v, record.version);
    for (const auto& attached : caches_) {
      for (ChunkIndex i = 0; i < attached.total_chunks; ++i) {
        if (attached.cache->erase(ChunkId{record.key, i}.cache_key())) {
          ++invalidations_;
        }
      }
    }
  }
}

std::uint64_t CoherenceCoordinator::version(const ObjectKey& key) const {
  const auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

}  // namespace agar::paxos
