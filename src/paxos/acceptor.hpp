// Single-decree Paxos acceptor (Lamport, "Paxos Made Simple" — the paper's
// §VI points at Paxos as the synchronization primitive a write-capable Agar
// would need for cache coherence).
//
// The acceptor is a pure state machine: callers (the simulated network /
// proposer) deliver prepare and accept requests and route the responses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace agar::paxos {

/// Ballot numbers must be totally ordered and proposer-unique: the high
/// bits carry a round counter, the low bits the proposer id.
using Ballot = std::uint64_t;

[[nodiscard]] constexpr Ballot make_ballot(std::uint32_t round,
                                           std::uint32_t proposer) {
  return (static_cast<Ballot>(round) << 32) | proposer;
}
[[nodiscard]] constexpr std::uint32_t ballot_round(Ballot b) {
  return static_cast<std::uint32_t>(b >> 32);
}
[[nodiscard]] constexpr std::uint32_t ballot_proposer(Ballot b) {
  return static_cast<std::uint32_t>(b & 0xffffffffu);
}

struct Promise {
  bool ok = false;           ///< false: ballot too old (nack)
  Ballot promised = 0;       ///< acceptor's current promise
  /// Highest-ballot value the acceptor already accepted, if any; the
  /// proposer MUST adopt the value of the highest such ballot.
  std::optional<Ballot> accepted_ballot;
  std::optional<std::string> accepted_value;
};

struct Accepted {
  bool ok = false;      ///< false: a higher prepare intervened
  Ballot promised = 0;  ///< acceptor's current promise (for backoff)
};

class Acceptor {
 public:
  /// Phase 1: promise not to accept ballots below `ballot`.
  [[nodiscard]] Promise handle_prepare(Ballot ballot);

  /// Phase 2: accept `value` at `ballot` unless a higher promise exists.
  [[nodiscard]] Accepted handle_accept(Ballot ballot,
                                       const std::string& value);

  [[nodiscard]] Ballot promised() const { return promised_; }
  [[nodiscard]] const std::optional<std::string>& accepted_value() const {
    return accepted_value_;
  }
  [[nodiscard]] std::optional<Ballot> accepted_ballot() const {
    return accepted_ballot_;
  }

 private:
  Ballot promised_ = 0;
  std::optional<Ballot> accepted_ballot_;
  std::optional<std::string> accepted_value_;
};

}  // namespace agar::paxos
