// Per-period access frequency tracking with EWMA smoothing — the state
// behind Agar's request monitor (paper §III-b / §IV-A).
//
// record() counts accesses within the current period; roll_period() folds
// the period's counts into each key's EWMA popularity and resets the
// counters. Keys whose popularity decays below a floor are dropped so the
// tracker's footprint follows the working set, not the full key space.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "stats/ewma.hpp"

namespace agar::stats {

class FreqTracker {
 public:
  explicit FreqTracker(double alpha = 0.8, double drop_below = 1e-3)
      : alpha_(alpha), drop_below_(drop_below) {}

  /// Count one access to `key` in the current period.
  void record(const ObjectKey& key);

  /// Close the current period: popularity <- alpha*freq + (1-alpha)*pop.
  /// Returns the number of keys still tracked.
  std::size_t roll_period();

  /// Smoothed popularity of a key (0 if never seen / decayed away).
  [[nodiscard]] double popularity(const ObjectKey& key) const;

  /// Raw in-period count (for tests).
  [[nodiscard]] std::uint64_t current_count(const ObjectKey& key) const;

  /// All (key, popularity) pairs, unspecified order.
  [[nodiscard]] std::vector<std::pair<ObjectKey, double>> snapshot() const;

  [[nodiscard]] std::size_t tracked_keys() const { return state_.size(); }
  [[nodiscard]] std::uint64_t periods() const { return periods_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  struct KeyState {
    double popularity = 0.0;
    std::uint64_t count = 0;  // accesses in the current period
  };

  double alpha_;
  double drop_below_;
  std::uint64_t periods_ = 0;
  std::unordered_map<ObjectKey, KeyState> state_;
};

}  // namespace agar::stats
