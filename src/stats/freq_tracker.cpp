#include "stats/freq_tracker.hpp"

namespace agar::stats {

void FreqTracker::record(const ObjectKey& key) {
  ++state_[key].count;
}

std::size_t FreqTracker::roll_period() {
  ++periods_;
  for (auto it = state_.begin(); it != state_.end();) {
    KeyState& s = it->second;
    s.popularity = alpha_ * static_cast<double>(s.count) +
                   (1.0 - alpha_) * s.popularity;
    s.count = 0;
    if (s.popularity < drop_below_) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
  return state_.size();
}

double FreqTracker::popularity(const ObjectKey& key) const {
  const auto it = state_.find(key);
  return it == state_.end() ? 0.0 : it->second.popularity;
}

std::uint64_t FreqTracker::current_count(const ObjectKey& key) const {
  const auto it = state_.find(key);
  return it == state_.end() ? 0 : it->second.count;
}

std::vector<std::pair<ObjectKey, double>> FreqTracker::snapshot() const {
  std::vector<std::pair<ObjectKey, double>> out;
  out.reserve(state_.size());
  for (const auto& [key, s] : state_) out.emplace_back(key, s.popularity);
  return out;
}

}  // namespace agar::stats
