#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agar::stats {

void Histogram::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void Histogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) throw std::logic_error("Histogram: empty");
  sort_if_needed();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) throw std::logic_error("Histogram: empty");
  sort_if_needed();
  return samples_.back();
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("Histogram: empty");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("Histogram: percentile out of range");
  }
  sort_if_needed();
  // Nearest-rank: ceil(q/100 * N), 1-based.
  const auto n = static_cast<double>(samples_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
  sum_ += other.sum_;
}

}  // namespace agar::stats
