// Per-region latency estimation — the state behind Agar's region manager.
//
// The region manager "periodically measures how much it takes to read a data
// chunk from each region" (paper §III-a). Samples are folded into an EWMA
// per region so estimates track network drift without being whipsawed by
// single slow fetches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "stats/ewma.hpp"

namespace agar::stats {

class LatencyEstimator {
 public:
  explicit LatencyEstimator(std::size_t num_regions, double alpha = 0.5);

  /// Fold one measured chunk-fetch latency for `region`.
  void record(RegionId region, double latency_ms);

  /// Current estimate; returns +inf for regions never sampled so planners
  /// deprioritize them until probed.
  [[nodiscard]] double estimate_ms(RegionId region) const;

  [[nodiscard]] bool has_sample(RegionId region) const;
  [[nodiscard]] std::size_t num_regions() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t samples(RegionId region) const;

  /// Regions sorted by estimated latency, nearest first. Unsampled regions
  /// sort last.
  [[nodiscard]] std::vector<RegionId> regions_by_estimate() const;

 private:
  struct Entry {
    Ewma ewma;
    std::uint64_t samples = 0;
  };
  double alpha_;
  std::vector<Entry> entries_;
};

}  // namespace agar::stats
