// Streaming latency statistics: mean, min/max, and percentiles.
//
// Experiments report average read latency (as the paper does) plus
// percentiles for the extended analysis. Samples are kept exactly — runs
// are thousands of operations, so memory is not a concern — which makes
// percentile math trivial and exact.
#pragma once

#include <cstdint>
#include <vector>

namespace agar::stats {

class Histogram {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by nearest-rank; q in [0, 100].
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double stddev() const;

  void clear();

  /// Merge another histogram's samples into this one.
  void merge(const Histogram& other);

  /// All recorded samples, sorted ascending — lets determinism tests check
  /// two runs produced byte-identical latency sets, not just equal means.
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    sort_if_needed();
    return samples_;
  }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace agar::stats
