#include "stats/count_min.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace agar::stats {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t aging_window)
    : width_(width), aging_window_(aging_window) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMinSketch: width/depth must be > 0");
  }
  rows_.assign(depth, std::vector<std::uint32_t>(width, 0));
  SplitMix64 sm(0x5eedc0de12345678ULL);
  seeds_.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) seeds_.push_back(sm.next());
}

std::size_t CountMinSketch::cell(std::size_t row,
                                 const std::string& key) const {
  // Mix the key hash with the per-row seed; splitmix-style finalizer.
  std::uint64_t h = fnv1a(key) ^ seeds_[row];
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % width_);
}

void CountMinSketch::add(const std::string& key) {
  ++adds_;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    auto& counter = rows_[r][cell(r, key)];
    if (counter < std::numeric_limits<std::uint32_t>::max()) ++counter;
  }
  if (aging_window_ > 0 && ++adds_since_halve_ >= aging_window_) {
    halve();
    adds_since_halve_ = 0;
  }
}

std::uint64_t CountMinSketch::estimate(const std::string& key) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    best = std::min<std::uint64_t>(best, rows_[r][cell(r, key)]);
  }
  return best;
}

void CountMinSketch::halve() {
  for (auto& row : rows_) {
    for (auto& c : row) c >>= 1;
  }
}

void CountMinSketch::reset() {
  for (auto& row : rows_) {
    std::fill(row.begin(), row.end(), 0);
  }
  adds_since_halve_ = 0;
}

}  // namespace agar::stats
