#include "stats/latency_estimator.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace agar::stats {

LatencyEstimator::LatencyEstimator(std::size_t num_regions, double alpha)
    : alpha_(alpha) {
  if (num_regions == 0) {
    throw std::invalid_argument("LatencyEstimator: no regions");
  }
  entries_.reserve(num_regions);
  for (std::size_t i = 0; i < num_regions; ++i) {
    entries_.push_back(Entry{Ewma(alpha_), 0});
  }
}

void LatencyEstimator::record(RegionId region, double latency_ms) {
  Entry& e = entries_.at(region);
  if (e.samples == 0) {
    // Seed with the first observation instead of decaying from zero.
    e.ewma = Ewma(alpha_, latency_ms);
  } else {
    e.ewma.update(latency_ms);
  }
  ++e.samples;
}

double LatencyEstimator::estimate_ms(RegionId region) const {
  const Entry& e = entries_.at(region);
  if (e.samples == 0) return std::numeric_limits<double>::infinity();
  return e.ewma.value();
}

bool LatencyEstimator::has_sample(RegionId region) const {
  return entries_.at(region).samples > 0;
}

std::uint64_t LatencyEstimator::samples(RegionId region) const {
  return entries_.at(region).samples;
}

std::vector<RegionId> LatencyEstimator::regions_by_estimate() const {
  std::vector<RegionId> ids(entries_.size());
  std::iota(ids.begin(), ids.end(), RegionId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](RegionId a, RegionId b) {
    return estimate_ms(a) < estimate_ms(b);
  });
  return ids;
}

}  // namespace agar::stats
