// Windowed latency statistics: one exact Histogram per fixed-width time
// window, indexed by virtual time.
//
// The scenario engine makes workloads non-stationary (popularity shifts,
// outages, rate surges), so a single whole-run histogram averages away the
// very transient the experiment exists to show. A WindowedHistogram slices
// the run into fixed windows so adaptation — the latency spike at the shift
// and its decay over the following reconfiguration periods — is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"

namespace agar::stats {

class WindowedHistogram {
 public:
  /// `window_ms` must be > 0.
  explicit WindowedHistogram(double window_ms);

  /// Record `value` at time `t` (ms); windows extend on demand, so gaps
  /// with no samples still occupy an (empty) window.
  void add(double t, double value);

  /// Window index covering time `t`.
  [[nodiscard]] std::size_t index_of(double t) const;

  /// Extend to cover `index` (inclusive) with empty windows.
  void ensure(std::size_t index);

  [[nodiscard]] std::size_t size() const { return windows_.size(); }
  [[nodiscard]] const Histogram& window(std::size_t i) const {
    return windows_.at(i);
  }
  [[nodiscard]] double window_ms() const { return window_ms_; }
  [[nodiscard]] double start_of(std::size_t i) const {
    return static_cast<double>(i) * window_ms_;
  }

 private:
  double window_ms_;
  std::vector<Histogram> windows_;
};

}  // namespace agar::stats
