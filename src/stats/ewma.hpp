// Exponentially weighted moving average — the paper's popularity estimator:
//
//   popularity_i = alpha * freq_i + (1 - alpha) * popularity_{i-1}
//
// with alpha = 0.8 in the paper's experiments (§IV-A).
#pragma once

#include <stdexcept>

namespace agar::stats {

class Ewma {
 public:
  explicit Ewma(double alpha = 0.8, double initial = 0.0)
      : alpha_(alpha), value_(initial) {
    if (alpha < 0.0 || alpha > 1.0) {
      throw std::invalid_argument("Ewma: alpha must be in [0, 1]");
    }
  }

  /// Fold in the observation for one period and return the new average.
  double update(double observation) {
    value_ = alpha_ * observation + (1.0 - alpha_) * value_;
    return value_;
  }

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_;
};

}  // namespace agar::stats
