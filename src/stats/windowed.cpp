#include "stats/windowed.hpp"

#include <cmath>
#include <stdexcept>

namespace agar::stats {

WindowedHistogram::WindowedHistogram(double window_ms)
    : window_ms_(window_ms) {
  if (!(window_ms > 0.0)) {
    throw std::invalid_argument("WindowedHistogram: window_ms must be > 0");
  }
}

std::size_t WindowedHistogram::index_of(double t) const {
  if (t <= 0.0) return 0;
  return static_cast<std::size_t>(std::floor(t / window_ms_));
}

void WindowedHistogram::ensure(std::size_t index) {
  if (index >= windows_.size()) windows_.resize(index + 1);
}

void WindowedHistogram::add(double t, double value) {
  const std::size_t i = index_of(t);
  ensure(i);
  windows_[i].add(value);
}

}  // namespace agar::stats
