// Count-min sketch with periodic halving ("aging"), the frequency estimator
// behind the TinyLFU admission extension (paper §VII discusses TinyLFU as a
// scalability avenue for the request monitor).
//
// The sketch over-estimates but never under-estimates frequencies; halving
// every `aging_window` increments keeps estimates fresh under drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agar::stats {

class CountMinSketch {
 public:
  /// width: counters per row (power of two recommended); depth: hash rows.
  CountMinSketch(std::size_t width, std::size_t depth,
                 std::uint64_t aging_window = 0);

  /// Increment the estimated count for `key`.
  void add(const std::string& key);

  /// Estimated count (upper bound with high probability).
  [[nodiscard]] std::uint64_t estimate(const std::string& key) const;

  /// Total increments folded in since construction (monotonic, not halved).
  [[nodiscard]] std::uint64_t total_adds() const { return adds_; }

  /// Halve all counters (aging). Called automatically per aging_window.
  void halve();

  /// Zero all counters (a fresh period for per-period users like the
  /// count-min popularity estimator). `total_adds` stays monotonic.
  void reset();

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return rows_.size(); }

 private:
  [[nodiscard]] std::size_t cell(std::size_t row,
                                 const std::string& key) const;

  std::size_t width_;
  std::uint64_t aging_window_;
  std::uint64_t adds_ = 0;
  std::uint64_t adds_since_halve_ = 0;
  std::vector<std::vector<std::uint32_t>> rows_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace agar::stats
