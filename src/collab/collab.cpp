#include "collab/collab.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "client/strategy.hpp"
#include "core/cache_manager.hpp"

namespace agar::collab {

namespace {

/// Nearest-rank percentile over a copy (the append-latency vectors are
/// tiny — a handful of reconfigurations per run).
double percentile_ms(std::vector<SimTimeMs> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = (q / 100.0) * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(pos)];
}

}  // namespace

CollabRuntime::CollabRuntime(CollabSettings settings,
                             sim::ShardedEngine* engine,
                             const sim::Topology* topology,
                             std::vector<RegionId> lane_regions,
                             std::vector<sim::Network*> lane_networks)
    : settings_(settings),
      engine_(engine),
      topology_(topology),
      lane_regions_(std::move(lane_regions)),
      lane_networks_(std::move(lane_networks)),
      log_(topology->num_regions(), lane_networks_.at(0)),
      lanes_(lane_regions_.size()) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("CollabRuntime: null engine");
  }
  if (lane_regions_.empty() ||
      lane_regions_.size() != lane_networks_.size()) {
    throw std::invalid_argument("CollabRuntime: lane shape mismatch");
  }
  lane_of_region_.assign(topology_->num_regions(),
                         static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < lane_regions_.size(); ++i) {
    lane_of_region_[lane_regions_[i]] = i;
    lanes_[i].directory.resize(lane_regions_.size());
  }
}

bool CollabRuntime::connected(std::size_t lane, RegionId a, RegionId b) const {
  const auto& group = lanes_[lane].partition;
  if (group.empty()) return true;
  return group.contains(a) == group.contains(b);
}

SimTimeMs CollabRuntime::message_delay_ms(RegionId from, RegionId to) const {
  return topology_->base_latency_ms(from, to) * kMessageFactor;
}

void CollabRuntime::attach(std::size_t lane, client::ReadStrategy& strategy) {
  strategy.enable_collab(
      [this, lane](const ChunkId& chunk, RegionId home, std::size_t bytes) {
        return route(lane, chunk, home, bytes);
      },
      [this, lane](RegionId target, RegionId home, std::size_t bytes,
                   bool ok) { fetch_done(lane, target, home, bytes, ok); });
  strategy.set_reconfigure_observer([this, lane] { on_reconfigure(lane); });

  core::CollabPlannerHooks hooks;
  hooks.merge_popularity =
      [this, lane](std::vector<std::pair<ObjectKey, double>> local) {
        return merge_popularity(lane, std::move(local));
      };
  hooks.adjust_chunk_costs = [this, lane](std::vector<core::ChunkCost> costs,
                                          const ObjectKey& key) {
    return adjust_costs(lane, std::move(costs), key);
  };
  strategy.set_collab_hooks(hooks);

  engine_->loop_of_lane(lane).schedule_periodic(
      settings_.broadcast_period_ms, [this, lane, &strategy] {
        broadcast(lane, strategy);
        return true;
      });
}

RegionId CollabRuntime::route(std::size_t lane, const ChunkId& chunk,
                              RegionId home, std::size_t bytes) {
  LaneState& st = lanes_[lane];
  const RegionId self = lane_regions_[lane];
  sim::Network& net = *lane_networks_[lane];
  const std::string chunk_key = chunk.cache_key();
  const SimTimeMs home_ms =
      net.model().expected_backend_fetch_ms(self, home, bytes);

  // Nearest-first over the topology: peers are sorted by base latency from
  // this region, so the first eligible holder is the cheapest candidate
  // and the threshold lets us stop early. Deterministic by construction.
  for (const RegionId peer : topology_->regions_by_distance(self)) {
    if (peer == self) continue;
    if (topology_->base_latency_ms(self, peer) > settings_.peer_threshold_ms) {
      break;
    }
    if (peer == home) continue;  // redirect would be the identity
    const std::size_t peer_lane = lane_of_region_[peer];
    if (peer_lane == static_cast<std::size_t>(-1)) continue;  // no cache there
    const core::PeerInfo& info = st.directory[peer_lane];
    if (info.region == kInvalidRegion) continue;        // nothing heard yet
    if (!connected(lane, self, peer)) continue;         // across the cut
    if (net.is_down(peer)) continue;                    // outage: fail fast
    if (!info.configured_chunks.contains(chunk_key)) continue;
    if (net.model().expected_backend_fetch_ms(self, peer, bytes) >= home_ms) {
      continue;  // peer no cheaper than the home region
    }
    return peer;
  }
  ++st.stats.peer_misses;
  return home;
}

void CollabRuntime::fetch_done(std::size_t lane, RegionId target,
                               RegionId home, std::size_t bytes, bool ok) {
  LaneStats& stats = lanes_[lane].stats;
  if (!ok) return;  // failures are visible in the network/policy counters
  if (target != home) {
    ++stats.peer_hits;
    ++stats.window_peer_hits;
    stats.bytes_from_peers += bytes;
  } else {
    stats.bytes_from_backend += bytes;
  }
}

void CollabRuntime::broadcast(std::size_t lane,
                              client::ReadStrategy& strategy) {
  core::PeerInfo info = strategy.collab_info();
  info.region = lane_regions_[lane];
  const SimTimeMs now = engine_->loop_of_lane(lane).now();
  for (std::size_t j = 0; j < lane_regions_.size(); ++j) {
    if (j == lane) continue;
    const SimTimeMs delay =
        topology_->base_latency_ms(lane_regions_[lane], lane_regions_[j]);
    engine_->post(j, now + delay, [this, j, lane, info] {
      deliver(j, lane, info);
    });
  }
}

void CollabRuntime::deliver(std::size_t to_lane, std::size_t from_lane,
                            core::PeerInfo info) {
  LaneState& st = lanes_[to_lane];
  // Partition check at delivery time: a broadcast in flight when the cut
  // happens is lost like any other cross-partition message.
  if (!connected(to_lane, lane_regions_[to_lane], info.region)) return;
  st.directory[from_lane] = std::move(info);
}

void CollabRuntime::on_reconfigure(std::size_t lane) {
  LaneState& st = lanes_[lane];
  const RegionId self = lane_regions_[lane];
  const RegionId leader = lane_regions_[0];
  ++st.reconfig_seq;
  const std::string record =
      topology_->name(self) + "/cfg" + std::to_string(st.reconfig_seq);
  if (!connected(lane, self, leader)) {
    // The log's region is across the cut: the append request cannot even
    // be sent. Counted as a failed append with no latency sample.
    ++st.stats.appends;
    ++st.stats.append_failures;
    return;
  }
  const SimTimeMs now = engine_->loop_of_lane(lane).now();
  engine_->post(0, now + message_delay_ms(self, leader),
                [this, lane, record] { serve_append(lane, record); });
}

void CollabRuntime::serve_append(std::size_t lane, const std::string& record) {
  // Lane 0 owns the log: appends from every region serialize here in
  // posted-event order, and the acceptor RTT samples are drawn from lane
  // 0's network — so fail_region outages starve the Paxos quorum exactly
  // like they starve lane 0's reads.
  const RegionId requester = lane_regions_[lane];
  const paxos::AppendOutcome outcome = log_.append(requester, record);
  const SimTimeMs now = engine_->loop_of_lane(0).now();
  engine_->post(lane, now + message_delay_ms(lane_regions_[0], requester),
                [this, lane, outcome] { record_append(lane, outcome); });
  if (!outcome.ok) return;
  const auto epoch = static_cast<std::uint64_t>(log_.decided_prefix());
  for (std::size_t j = 0; j < lane_regions_.size(); ++j) {
    // Decided-epoch notifications ride the learner channel of the storage
    // network, which the control-plane partition does not cut — so a
    // healed region converges without a catch-up protocol.
    engine_->post(j,
                  now + message_delay_ms(lane_regions_[0], lane_regions_[j]),
                  [this, j, epoch] { learn(j, epoch); });
  }
}

void CollabRuntime::record_append(std::size_t lane,
                                  const paxos::AppendOutcome& outcome) {
  LaneStats& stats = lanes_[lane].stats;
  ++stats.appends;
  if (outcome.ok) {
    stats.append_latencies.push_back(outcome.latency_ms);
  } else {
    ++stats.append_failures;
  }
}

void CollabRuntime::learn(std::size_t lane, std::uint64_t epoch) {
  LaneState& st = lanes_[lane];
  if (epoch <= st.learned_epoch) return;
  st.learned_epoch = epoch;
  // Apply after the configured delay on the lane's OWN loop (schedule_in,
  // not post-to-self: post clamps to the window boundary, which would
  // inflate apply_ms to the window size).
  engine_->loop_of_lane(lane).schedule_in(
      settings_.apply_delay_ms, [this, lane, epoch] {
        LaneState& s = lanes_[lane];
        if (epoch > s.applied_epoch) s.applied_epoch = epoch;
      });
}

void CollabRuntime::note_read(std::size_t lane) {
  LaneState& st = lanes_[lane];
  if (st.learned_epoch > st.applied_epoch) {
    ++st.stats.stale_reads;
    ++st.stats.window_stale_reads;
  }
}

std::uint64_t CollabRuntime::take_window_peer_hits(std::size_t lane) {
  return std::exchange(lanes_[lane].stats.window_peer_hits, 0);
}

std::uint64_t CollabRuntime::take_window_stale_reads(std::size_t lane) {
  return std::exchange(lanes_[lane].stats.window_stale_reads, 0);
}

std::vector<core::PeerInfo> CollabRuntime::visible_peers(
    std::size_t lane) const {
  std::vector<core::PeerInfo> peers;
  const RegionId self = lane_regions_[lane];
  for (std::size_t j = 0; j < lanes_[lane].directory.size(); ++j) {
    if (j == lane) continue;
    const core::PeerInfo& info = lanes_[lane].directory[j];
    if (info.region == kInvalidRegion) continue;
    if (!connected(lane, self, info.region)) continue;
    peers.push_back(info);
  }
  return peers;
}

std::vector<std::pair<ObjectKey, double>> CollabRuntime::merge_popularity(
    std::size_t lane, std::vector<std::pair<ObjectKey, double>> local) {
  // Called once per reconfiguration, before the per-key cost hook: rebuild
  // the planning peer set here so adjust_costs() reuses it per key instead
  // of re-copying the directory for every object.
  lanes_[lane].planning_peers = visible_peers(lane);
  // Key-sorted merge preserving the monitor snapshot's determinism
  // contract; peer weights are summed in lane order.
  std::map<ObjectKey, double> merged(local.begin(), local.end());
  for (const core::PeerInfo& peer : lanes_[lane].planning_peers) {
    for (const auto& [key, weight] : peer.popularity) merged[key] += weight;
  }
  return {merged.begin(), merged.end()};
}

std::vector<core::ChunkCost> CollabRuntime::adjust_costs(
    std::size_t lane, std::vector<core::ChunkCost> costs,
    const ObjectKey& key) const {
  return core::peer_aware_costs(std::move(costs), key,
                                lanes_[lane].planning_peers, *topology_,
                                lane_regions_[lane], 0.75,
                                settings_.peer_threshold_ms);
}

void CollabRuntime::set_partition(std::size_t lane,
                                  const std::vector<RegionId>& group) {
  lanes_[lane].partition =
      std::unordered_set<RegionId>(group.begin(), group.end());
}

void CollabRuntime::heal_partition(std::size_t lane) {
  lanes_[lane].partition.clear();
}

CollabRuntime::Summary CollabRuntime::summarize(
    const std::vector<client::ReadStrategy*>& strategies) {
  Summary out;
  std::vector<SimTimeMs> latencies;
  for (const LaneState& lane : lanes_) {
    out.peer_hits += lane.stats.peer_hits;
    out.peer_misses += lane.stats.peer_misses;
    out.bytes_from_peers += lane.stats.bytes_from_peers;
    out.bytes_from_backend += lane.stats.bytes_from_backend;
    out.stale_config_reads += lane.stats.stale_reads;
    out.paxos_appends += lane.stats.appends;
    out.paxos_append_failures += lane.stats.append_failures;
    latencies.insert(latencies.end(), lane.stats.append_latencies.begin(),
                     lane.stats.append_latencies.end());
  }
  out.paxos_append_p50_ms = percentile_ms(latencies, 50.0);
  out.paxos_append_p99_ms = percentile_ms(latencies, 99.0);
  out.config_epochs = static_cast<std::uint64_t>(log_.decided_prefix());

  // Overlap over the lanes' FINAL snapshots (not the possibly-stale
  // directories): how much capacity nearby caches spend on the same chunks
  // — the paper's Frankfurt/Dublin redundancy example.
  std::vector<core::PeerInfo> final_infos;
  final_infos.reserve(strategies.size());
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    core::PeerInfo info = strategies[i]->collab_info();
    info.region = lane_regions_[i];
    final_infos.push_back(std::move(info));
  }
  double overlap_sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < final_infos.size(); ++a) {
    for (std::size_t b = a + 1; b < final_infos.size(); ++b) {
      overlap_sum +=
          core::overlap_of(final_infos[a], final_infos[b]).shared_fraction();
      ++pairs;
    }
  }
  out.config_overlap = pairs == 0 ? 0.0
                                  : overlap_sum / static_cast<double>(pairs);
  return out;
}

namespace {

const api::CollabRegistration kNone{{
    "none",
    "none",
    "no cooperation: every region's cache works alone (the historical "
    "single-node behavior; all outputs byte-identical to before the knob)",
    api::ParamSchema{},
    [](const api::CollabContext&, const api::ParamMap&) {
      return std::make_unique<CollabSettings>();
    },
    {}}};

const api::CollabRegistration kBroadcast{{
    "broadcast",
    "collab",
    "cooperative cache tier: periodic peer broadcasts build a chunk "
    "directory, reads peer-fetch from cheaper nearby caches, and "
    "reconfigurations append config epochs to a Paxos-replicated log",
    api::ParamSchema{{
        {"period_s", api::ParamType::kDouble, "5",
         "peer broadcast period in seconds"},
        {"peer_threshold_ms", api::ParamType::kDouble, "400",
         "max base latency (ms) to a peer cache worth consulting"},
        {"apply_ms", api::ParamType::kDouble, "10",
         "delay between learning a decided config epoch and applying it "
         "(reads completing in between count as stale-config reads)"},
    }},
    [](const api::CollabContext&, const api::ParamMap& params) {
      auto settings = std::make_unique<CollabSettings>();
      settings->enabled = true;
      settings->broadcast_period_ms =
          params.get_double("period_s", 5.0) * 1000.0;
      settings->peer_threshold_ms =
          params.get_double("peer_threshold_ms", 400.0);
      settings->apply_delay_ms = params.get_double("apply_ms", 10.0);
      return settings;
    },
    {}}};

}  // namespace

}  // namespace agar::collab
