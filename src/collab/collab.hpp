// Cooperative geo-distributed cache tier — the paper's §VI discussion made
// concrete: nearby Agar caches periodically broadcast their configured
// chunks and popularity statistics, reads fetch a non-resident chunk from a
// nearby peer cache when the latency model says it beats the chunk's home
// region, and reconfigurations append the installed configuration to a
// Paxos-replicated log so every region agrees on the current config epoch.
//
// The tier is a pure overlay on the lane-partitioned runner: every lane
// (client region) owns a LaneState that is only ever touched from events
// executing on that lane, and ALL cross-lane traffic — broadcasts, Paxos
// append requests/replies, decided-epoch notifications — rides the sharded
// engine's post()/SPSC rings with (when, lane, seq) keying, so shards=1 and
// shards=N stay byte-identical (the PR 6 determinism contract).
//
// Pieces:
//  * peer directory — each lane's view of what every other lane last
//    broadcast (core::PeerInfo). Broadcasts are periodic events on the
//    owning lane's loop, delivered to each peer after the inter-region base
//    latency; a recipient inside a network partition drops broadcasts from
//    the other side. Directory staleness is bounded by the period: the
//    simulation serves a redirected transfer regardless of whether the peer
//    still holds the chunk (a real peer would serve-through), so staleness
//    costs accuracy of the latency win, never correctness.
//  * peer-fetch — installed under the FetchCoordinator's coalescing table
//    and *around* the PR 7 FetchPolicy (ReadStrategy::enable_collab), so a
//    redirected transfer still gets retries/hedges/timeouts and a failed
//    peer arm falls back through the strategies' degraded-read machinery.
//  * config log — lane 0 owns the paxos::ReplicatedLog (acceptor RTTs are
//    sampled on lane 0's network partition, so fail_region outages starve
//    the quorum exactly like they starve reads). Other lanes request
//    appends via post(); the outcome is posted back and recorded by the
//    requesting lane. Decided epochs are broadcast to every lane; a lane
//    applies a learned epoch only after `apply_ms`, and every read that
//    completes in between counts as a stale-config read.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "core/collaboration.hpp"
#include "paxos/replicated_log.hpp"
#include "sim/network.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/topology.hpp"

namespace agar::client {
class ReadStrategy;
}

namespace agar::collab {

/// Parsed `collab=` settings — the api::CollabRegistry product. The
/// registry validates/parses the namespaced `collab.*` params; the runner
/// turns an enabled settings object into one CollabRuntime per run.
struct CollabSettings {
  bool enabled = false;               ///< false: tier fully inert ("none")
  SimTimeMs broadcast_period_ms = 5000.0;
  /// Peers farther than this base latency are never worth consulting
  /// (also the max_peer_ms bound fed to core::peer_aware_costs).
  double peer_threshold_ms = 400.0;
  /// Delay between learning a decided config epoch and applying it; reads
  /// completing in between are counted as stale-config reads.
  SimTimeMs apply_delay_ms = 10.0;
};

/// One run's cooperative tier. Constructed by the runner after lanes are
/// bound, attached to each lane's strategy during per-lane setup, and
/// summarized single-threaded after the engine stops.
class CollabRuntime {
 public:
  /// Consensus/control messages are tiny next to ~114 KB chunks; their
  /// one-way delay is the inter-region base latency scaled by this factor
  /// (matching the ReplicatedLog's message_rtt_factor default).
  static constexpr double kMessageFactor = 0.3;

  /// Per-lane counters. Mutated only from events executing on the owning
  /// lane; merged in lane order by summarize().
  struct LaneStats {
    std::uint64_t peer_hits = 0;    ///< wire fetches served by a peer cache
    std::uint64_t peer_misses = 0;  ///< directory consulted, no eligible peer
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_from_backend = 0;
    std::uint64_t stale_reads = 0;  ///< completions with learned > applied
    std::uint64_t appends = 0;      ///< config-log appends attempted
    std::uint64_t append_failures = 0;  ///< quorum loss or leader unreachable
    std::vector<SimTimeMs> append_latencies;
    // Windowed slices, drained by the runner at each window close.
    std::uint64_t window_peer_hits = 0;
    std::uint64_t window_stale_reads = 0;
  };

  /// Lane-order merge of every lane's counters plus the log/overlap state
  /// that only exists once per run.
  struct Summary {
    std::uint64_t peer_hits = 0;
    std::uint64_t peer_misses = 0;
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_from_backend = 0;
    std::uint64_t stale_config_reads = 0;
    std::uint64_t paxos_appends = 0;
    std::uint64_t paxos_append_failures = 0;
    double paxos_append_p50_ms = 0.0;
    double paxos_append_p99_ms = 0.0;
    std::uint64_t config_epochs = 0;  ///< decided prefix of the config log
    /// Mean pairwise shared_fraction of the lanes' final broadcast
    /// snapshots — the dormant OverlapReport, finally wired to output.
    double config_overlap = 0.0;
  };

  /// `lane_networks[i]` serves lane i (the runner's partitions); lane 0's
  /// network also backs the replicated log's acceptor RTTs. All pointers
  /// are non-owning and must outlive the runtime.
  CollabRuntime(CollabSettings settings, sim::ShardedEngine* engine,
                const sim::Topology* topology,
                std::vector<RegionId> lane_regions,
                std::vector<sim::Network*> lane_networks);

  CollabRuntime(const CollabRuntime&) = delete;
  CollabRuntime& operator=(const CollabRuntime&) = delete;

  [[nodiscard]] const CollabSettings& settings() const { return settings_; }

  /// Install the tier on one lane's strategy: the peer-fetch transport
  /// (ReadStrategy::enable_collab), the reconfigure observer feeding the
  /// config log, the global-scope planner hooks, and the periodic
  /// broadcast timer. Must run during the lane's setup phase (the lane's
  /// scheduling lane set, engine not yet running); `strategy` must outlive
  /// the run.
  void attach(std::size_t lane, client::ReadStrategy& strategy);

  // ---- scenario hooks (fire as events on the owning lane's loop) ----
  /// `group` and its complement lose sight of each other: broadcasts are
  /// dropped at delivery, peers across the cut are ineligible, and append
  /// requests to an unreachable lane 0 fail locally. The backend data
  /// path is untouched (partition != outage).
  void set_partition(std::size_t lane, const std::vector<RegionId>& group);
  void heal_partition(std::size_t lane);

  /// Read-completion hook: counts the completion as a stale-config read if
  /// the lane has learned a config epoch it has not applied yet.
  void note_read(std::size_t lane);

  /// Drain one lane's per-window counters (runner, at window close).
  [[nodiscard]] std::uint64_t take_window_peer_hits(std::size_t lane);
  [[nodiscard]] std::uint64_t take_window_stale_reads(std::size_t lane);

  [[nodiscard]] const LaneStats& lane_stats(std::size_t lane) const {
    return lanes_[lane].stats;
  }

  /// End-of-run (single-threaded, engine stopped): merge lane counters in
  /// lane order and compute the configuration-overlap ratio from each
  /// strategy's final broadcast snapshot.
  [[nodiscard]] Summary summarize(
      const std::vector<client::ReadStrategy*>& strategies);

 private:
  struct LaneState {
    /// Last broadcast received from each lane (region == kInvalidRegion
    /// until the first delivery).
    std::vector<core::PeerInfo> directory;
    /// Current partition group; empty = fully connected.
    std::unordered_set<RegionId> partition;
    /// Peers visible at the last reconfiguration (rebuilt by the
    /// merge-popularity hook, reused by the per-key cost hook).
    std::vector<core::PeerInfo> planning_peers;
    std::uint64_t reconfig_seq = 0;
    std::uint64_t learned_epoch = 0;
    std::uint64_t applied_epoch = 0;
    LaneStats stats;
  };

  [[nodiscard]] bool connected(std::size_t lane, RegionId a, RegionId b) const;
  [[nodiscard]] SimTimeMs message_delay_ms(RegionId from, RegionId to) const;
  /// Nearest eligible peer cache for a chunk bound for `home`, or `home`
  /// itself when no peer is cheaper (the routing decision of peer-fetch).
  [[nodiscard]] RegionId route(std::size_t lane, const ChunkId& chunk,
                               RegionId home, std::size_t bytes);
  void fetch_done(std::size_t lane, RegionId target, RegionId home,
                  std::size_t bytes, bool ok);
  void broadcast(std::size_t lane, client::ReadStrategy& strategy);
  void deliver(std::size_t to_lane, std::size_t from_lane,
               core::PeerInfo info);
  void on_reconfigure(std::size_t lane);
  /// Lane 0 only: run the append against the replicated log and post the
  /// outcome (and, on success, the decided epoch) back out.
  void serve_append(std::size_t lane, const std::string& record);
  void record_append(std::size_t lane, const paxos::AppendOutcome& outcome);
  void learn(std::size_t lane, std::uint64_t epoch);
  [[nodiscard]] std::vector<core::PeerInfo> visible_peers(
      std::size_t lane) const;
  std::vector<std::pair<ObjectKey, double>> merge_popularity(
      std::size_t lane, std::vector<std::pair<ObjectKey, double>> local);
  std::vector<core::ChunkCost> adjust_costs(std::size_t lane,
                                            std::vector<core::ChunkCost> costs,
                                            const ObjectKey& key) const;

  CollabSettings settings_;
  sim::ShardedEngine* engine_;      // non-owning
  const sim::Topology* topology_;   // non-owning
  std::vector<RegionId> lane_regions_;
  std::vector<sim::Network*> lane_networks_;  // non-owning
  std::vector<std::size_t> lane_of_region_;   // region -> lane, or npos
  paxos::ReplicatedLog log_;        ///< lane 0 access only while running
  std::vector<LaneState> lanes_;
};

}  // namespace agar::collab
