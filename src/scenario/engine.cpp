#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace agar::scenario {

ScenarioEngine::ScenarioEngine(Scenario scenario, sim::Network* network,
                               PopularityHook popularity)
    : scenario_(std::move(scenario)),
      network_(network),
      popularity_(std::move(popularity)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("ScenarioEngine: null network");
  }
  scenario_.validate();
  if (!popularity_) {
    for (const auto& e : scenario_.events) {
      if (is_popularity_event(e.event)) {
        throw std::invalid_argument(
            "ScenarioEngine: scenario contains popularity event '" +
            e.event + "' but no popularity hook was registered");
      }
    }
  }
}

void ScenarioEngine::schedule(sim::EventLoop& loop) {
  for (const ScenarioEvent& e : scenario_.sorted()) {
    loop.schedule_at(e.at_ms, [this, e, &loop] { apply(e, loop.now()); });
  }
}

void ScenarioEngine::apply(const ScenarioEvent& e, SimTimeMs now) {
  ++fired_;
  if (e.event == "fail_region") {
    network_->fail_region(resolve_region(e.params.get_string("region", "")));
  } else if (e.event == "restore_region") {
    network_->restore_region(
        resolve_region(e.params.get_string("region", "")));
  } else if (e.event == "slow_region") {
    network_->model().set_region_slowdown(
        resolve_region(e.params.get_string("region", "")),
        e.params.get_double("factor", 1.0));
  } else if (e.event == "arrival_factor") {
    step_factor_ = e.params.get_double("factor", 1.0);
  } else if (e.event == "arrival_sine") {
    sine_amplitude_ = e.params.get_double("amplitude", 0.5);
    sine_period_ms_ = e.params.get_double("period_s", 60.0) * 1000.0;
    sine_start_ms_ = now;
  } else {
    // Validated vocabulary: anything else is a popularity shift, and the
    // constructor guaranteed the hook exists for those.
    popularity_(popularity_shift_of(e));
  }
}

double ScenarioEngine::arrival_multiplier(SimTimeMs now) const {
  double m = step_factor_;
  if (sine_amplitude_ > 0.0 && sine_period_ms_ > 0.0) {
    const double phase = 2.0 * std::numbers::pi * (now - sine_start_ms_) /
                         sine_period_ms_;
    m *= 1.0 + sine_amplitude_ * std::sin(phase);
  }
  // An arrival gap of rate*multiplier must stay drawable.
  return std::max(m, 0.05);
}

}  // namespace agar::scenario
