#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace agar::scenario {

ScenarioEngine::ScenarioEngine(Scenario scenario, sim::Network* network,
                               PopularityHook popularity)
    : scenario_(std::move(scenario)),
      network_(network),
      popularity_(std::move(popularity)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("ScenarioEngine: null network");
  }
  scenario_.validate();
  if (!popularity_) {
    for (const auto& e : scenario_.events) {
      if (is_popularity_event(e.event)) {
        throw std::invalid_argument(
            "ScenarioEngine: scenario contains popularity event '" +
            e.event + "' but no popularity hook was registered");
      }
    }
  }
}

void ScenarioEngine::schedule(sim::EventLoop& loop) {
  for (const ScenarioEvent& e : scenario_.sorted()) {
    loop.schedule_at(e.at_ms, [this, e, &loop] { apply(e, loop); });
  }
}

void ScenarioEngine::flap_cycle(sim::EventLoop& loop, RegionId region,
                                SimTimeMs period_ms, SimTimeMs down_ms,
                                SimTimeMs until_ms) {
  network_->fail_region(region);
  loop.schedule_in(down_ms,
                   [this, region] { network_->restore_region(region); });
  const SimTimeMs next = loop.now() + period_ms;
  if (until_ms > 0.0 && next >= until_ms) return;
  loop.schedule_in(period_ms, [this, &loop, region, period_ms, down_ms,
                               until_ms] {
    flap_cycle(loop, region, period_ms, down_ms, until_ms);
  });
}

void ScenarioEngine::apply(const ScenarioEvent& e, sim::EventLoop& loop) {
  const SimTimeMs now = loop.now();
  ++fired_;
  if (e.event == "fail_region") {
    network_->fail_region(resolve_region(e.params.get_string("region", "")));
  } else if (e.event == "restore_region") {
    network_->restore_region(
        resolve_region(e.params.get_string("region", "")));
  } else if (e.event == "slow_region") {
    network_->model().set_region_slowdown(
        resolve_region(e.params.get_string("region", "")),
        e.params.get_double("factor", 1.0));
  } else if (e.event == "drop_region") {
    network_->model().set_region_drop(
        resolve_region(e.params.get_string("region", "")),
        e.params.get_double("p", 0.0), e.params.get_double("mult", 3.0));
  } else if (e.event == "straggle_region") {
    network_->model().set_region_straggle(
        resolve_region(e.params.get_string("region", "")),
        e.params.get_double("frac", 0.0), e.params.get_double("mult", 10.0));
  } else if (e.event == "flap_region") {
    const SimTimeMs period = e.params.get_double("period_ms", 10'000.0);
    flap_cycle(loop, resolve_region(e.params.get_string("region", "")),
               period, e.params.get_double("down_ms", period / 2.0),
               e.params.get_double("until_ms", 0.0));
  } else if (e.event == "partition_regions") {
    if (partition_) {
      partition_(resolve_region_list(e.params.get_string("regions", "")));
    }
  } else if (e.event == "heal_partition") {
    if (partition_) partition_({});
  } else if (e.event == "arrival_factor") {
    step_factor_ = e.params.get_double("factor", 1.0);
  } else if (e.event == "arrival_sine") {
    sine_amplitude_ = e.params.get_double("amplitude", 0.5);
    sine_period_ms_ = e.params.get_double("period_s", 60.0) * 1000.0;
    sine_start_ms_ = now;
  } else {
    // Validated vocabulary: anything else is a popularity shift, and the
    // constructor guaranteed the hook exists for those.
    popularity_(popularity_shift_of(e));
  }
}

double ScenarioEngine::arrival_multiplier(SimTimeMs now) const {
  double m = step_factor_;
  if (sine_amplitude_ > 0.0 && sine_period_ms_ > 0.0) {
    const double phase = 2.0 * std::numbers::pi * (now - sine_start_ms_) /
                         sine_period_ms_;
    m *= 1.0 + sine_amplitude_ * std::sin(phase);
  }
  // An arrival gap of rate*multiplier must stay drawable.
  return std::max(m, 0.05);
}

}  // namespace agar::scenario
