// ScenarioEngine — executes a Scenario on the simulation's event loop.
//
// Network-facing events (outages, restores, latency slowdowns) are applied
// straight to the bound Network / LatencyModel. Popularity shifts are
// delivered through a typed hook the runner registers (it owns the
// workloads). Arrival-rate modulation is kept as engine state — a
// piecewise-constant step factor times an optional diurnal sine — which the
// runner's open-loop arrival process samples via `arrival_multiplier(now)`
// each time it schedules the next arrival.
#pragma once

#include <functional>

#include "scenario/scenario.hpp"
#include "sim/event_loop.hpp"
#include "sim/network.hpp"

namespace agar::scenario {

class ScenarioEngine {
 public:
  using PopularityHook = std::function<void(const PopularityShift&)>;
  /// Partition hook: the listed regions form one side, everyone else the
  /// other (an empty list heals). Registered by the runner when a collab
  /// tier exists; partitions only cut collab traffic, so with no hook the
  /// events are legal no-ops (collab=none runs partition specs unchanged).
  using PartitionHook = std::function<void(const std::vector<RegionId>&)>;

  /// `network` is required; `popularity` may be empty only when the
  /// scenario contains no popularity events (checked at construction, so
  /// a missing hook fails fast instead of throwing mid-run).
  ScenarioEngine(Scenario scenario, sim::Network* network,
                 PopularityHook popularity);

  /// Register the partition hook (optional; see PartitionHook).
  void set_partition_hook(PartitionHook hook) {
    partition_ = std::move(hook);
  }

  /// Schedule every event at its absolute `at_ms`; same-instant events fire
  /// in script order. Call once, before driving the loop.
  void schedule(sim::EventLoop& loop);

  /// Current arrival-rate multiplier (step factor x sine), clamped away
  /// from zero so an inter-arrival gap can always be drawn.
  [[nodiscard]] double arrival_multiplier(SimTimeMs now) const;

  /// Events applied so far (observability for tests).
  [[nodiscard]] std::size_t fired() const { return fired_; }

 private:
  void apply(const ScenarioEvent& e, sim::EventLoop& loop);
  /// One flap cycle: fail now, restore after `down_ms`, and re-arm the
  /// next cycle `period_ms` from now unless it would start at/after
  /// `until_ms` (a non-positive `until_ms` means flap forever). Cycle
  /// continuations are internal events — `fired()` counts only the
  /// scripted flap_region entry itself.
  void flap_cycle(sim::EventLoop& loop, RegionId region, SimTimeMs period_ms,
                  SimTimeMs down_ms, SimTimeMs until_ms);

  Scenario scenario_;
  sim::Network* network_;  // non-owning
  PopularityHook popularity_;
  PartitionHook partition_;
  std::size_t fired_ = 0;
  // Arrival modulation state.
  double step_factor_ = 1.0;
  double sine_amplitude_ = 0.0;
  SimTimeMs sine_period_ms_ = 0.0;
  SimTimeMs sine_start_ms_ = 0.0;
};

}  // namespace agar::scenario
