#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "api/json.hpp"
#include "sim/topology.hpp"

namespace agar::scenario {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

api::ParamInfo region_param() {
  return {"region", api::ParamType::kString, "",
          "target region (name like 'tokyo', or numeric id)"};
}

/// Parse an event time: a finite, fully-consumed number. "nan"/"inf" and
/// trailing garbage ("10abc") are rejected here, not at schedule time
/// where a NaN would silently corrupt the event-queue ordering.
SimTimeMs parse_at_ms(const std::string& text) {
  double value = 0.0;
  try {
    std::size_t pos = 0;
    value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("");
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: '" + text +
                                "' is not a time in ms");
  }
  if (!std::isfinite(value)) {
    throw std::invalid_argument("scenario: at_ms '" + text +
                                "' must be finite");
  }
  return value;
}

}  // namespace

const std::vector<EventKind>& event_kinds() {
  static const std::vector<EventKind> kinds = {
      {"fail_region", api::ParamSchema{{region_param()}},
       "region outage: refuse new fetches, abort in-flight and queued ones"},
      {"restore_region", api::ParamSchema{{region_param()}},
       "bring a failed region back (aborted fetches stay failed)"},
      {"slow_region",
       api::ParamSchema{{region_param(),
                         {"factor", api::ParamType::kDouble, "1",
                          "multiplicative latency slowdown (1 clears)"}}},
       "latency degradation: scale fetches served by a region"},
      {"drop_region",
       api::ParamSchema{{region_param(),
                         {"p", api::ParamType::kDouble, "0",
                          "response-loss probability in [0, 1) (0 clears)"},
                         {"mult", api::ParamType::kDouble, "3",
                          "failure-discovery delay as a multiple of the "
                          "sampled transfer latency"}}},
       "gray failure: lose responses; the loss surfaces only after mult x "
       "the transfer time"},
      {"straggle_region",
       api::ParamSchema{{region_param(),
                         {"frac", api::ParamType::kDouble, "0",
                          "fraction of fetches hitting the slow tail "
                          "(0 clears)"},
                         {"mult", api::ParamType::kDouble, "10",
                          "latency multiplier for straggling fetches"}}},
       "gray failure: a sampled fraction of a region's fetches straggles"},
      {"flap_region",
       api::ParamSchema{{region_param(),
                         {"period_ms", api::ParamType::kDouble, "10000",
                          "full up/down cycle length in ms"},
                         {"down_ms", api::ParamType::kDouble, "",
                          "down time per cycle (default: period_ms / 2)"},
                         {"until_ms", api::ParamType::kDouble, "",
                          "no new cycle starts at/after this time "
                          "(default: flap forever)"}}},
       "gray failure: the region fails and recovers periodically"},
      {"partition_regions",
       api::ParamSchema{{{"regions", api::ParamType::kString, "",
                          "comma-separated region names/ids forming one "
                          "side of the partition"}}},
       "network partition: the listed regions and the rest can no longer "
       "exchange collab traffic (peer fetches, broadcasts, config appends); "
       "backend fetches keep flowing"},
      {"heal_partition", api::ParamSchema{},
       "heal the network partition: collab traffic flows everywhere again"},
      {"popularity_rotate",
       api::ParamSchema{{{"by", api::ParamType::kSize, "0",
                          "ranks to rotate the rank->object mapping by"}}},
       "popularity shift: rotate which objects are hot"},
      {"popularity_reseed",
       api::ParamSchema{{{"seed", api::ParamType::kSize, "1",
                          "shuffle seed for the rank->object mapping"}}},
       "popularity shift: reshuffle the rank->object mapping"},
      {"flash_crowd",
       api::ParamSchema{
           {{"count", api::ParamType::kSize, "1",
             "number of keys promoted to the most popular ranks"},
            {"from_rank", api::ParamType::kSize, "",
             "rank the promoted block starts at (default: coldest tail)"}}},
       "popularity shift: a key subset jumps to the top ranks"},
      {"arrival_factor",
       api::ParamSchema{{{"factor", api::ParamType::kDouble, "1",
                          "step multiplier on open-loop arrival rate"}}},
       "arrival modulation: step the Poisson rate up or down"},
      {"arrival_sine",
       api::ParamSchema{
           {{"period_s", api::ParamType::kDouble, "60",
             "sine period in seconds"},
            {"amplitude", api::ParamType::kDouble, "0.5",
             "relative amplitude in [0, 1) (0 turns the sine off)"}}},
       "arrival modulation: diurnal-sine rate multiplier from now on"},
  };
  return kinds;
}

const EventKind* find_event_kind(const std::string& name) {
  for (const auto& kind : event_kinds()) {
    if (kind.name == name) return &kind;
  }
  return nullptr;
}

bool is_popularity_event(const std::string& name) {
  return name == "popularity_rotate" || name == "popularity_reseed" ||
         name == "flash_crowd";
}

RegionId resolve_region(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("scenario: event needs a 'region' param");
  }
  if (std::all_of(text.begin(), text.end(),
                  [](char c) { return c >= '0' && c <= '9'; })) {
    std::size_t id = 0;
    try {
      id = std::stoul(text);
    } catch (const std::out_of_range&) {
      id = std::numeric_limits<std::size_t>::max();  // fails the range check
    }
    if (id >= sim::aws_six_regions().num_regions()) {
      throw std::invalid_argument("scenario: region id '" + text +
                                  "' out of range");
    }
    return static_cast<RegionId>(id);
  }
  const auto topology = sim::aws_six_regions();
  try {
    return topology.id_of(text);
  } catch (const std::exception&) {
    std::string known;
    for (RegionId r = 0; r < topology.num_regions(); ++r) {
      known += (known.empty() ? "" : " ") + topology.name(r);
    }
    throw std::invalid_argument("scenario: unknown region '" + text +
                                "' (known: " + known + ")");
  }
}

std::vector<RegionId> resolve_region_list(const std::string& text) {
  std::vector<RegionId> out;
  std::stringstream parts(text);
  std::string part;
  while (std::getline(parts, part, ',')) {
    // Trim surrounding whitespace so "dublin, tokyo" works.
    const auto begin = part.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = part.find_last_not_of(" \t");
    const RegionId r = resolve_region(part.substr(begin, end - begin + 1));
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
  return out;
}

PopularityShift popularity_shift_of(const ScenarioEvent& e) {
  PopularityShift shift;
  if (e.event == "popularity_rotate") {
    shift.kind = PopularityShift::Kind::kRotate;
    shift.rotate_by = e.params.get_size("by", 0);
  } else if (e.event == "popularity_reseed") {
    shift.kind = PopularityShift::Kind::kReseed;
    shift.seed = e.params.get_size("seed", 1);
  } else if (e.event == "flash_crowd") {
    shift.kind = PopularityShift::Kind::kFlashCrowd;
    shift.crowd_count = e.params.get_size("count", 1);
    if (e.params.has("from_rank")) {
      shift.crowd_from = e.params.get_size("from_rank", 0);
    }
  } else {
    throw std::logic_error("popularity_shift_of: '" + e.event +
                           "' is not a popularity event");
  }
  return shift;
}

void Scenario::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    const std::string context =
        "scenario event " + std::to_string(i) + " ('" + e.event + "')";
    const EventKind* kind = find_event_kind(e.event);
    if (kind == nullptr) {
      std::string known;
      for (const auto& k : event_kinds()) {
        known += (known.empty() ? "" : " ") + k.name;
      }
      throw std::invalid_argument(context + ": unknown event (known: " +
                                  known + ")");
    }
    // NaN compares false against everything, so reject non-finite
    // explicitly: directly-constructed scenarios bypass parse_at_ms.
    if (!std::isfinite(e.at_ms) || e.at_ms < 0.0) {
      throw std::invalid_argument(context +
                                  ": at_ms must be finite and >= 0");
    }
    e.params.validate(kind->schema, context);
    if (kind->schema.has("region")) {
      (void)resolve_region(e.params.get_string("region", ""));
    }
    if (e.event == "partition_regions") {
      const auto group =
          resolve_region_list(e.params.get_string("regions", ""));
      if (group.empty()) {
        throw std::invalid_argument(context +
                                    ": 'regions' must list >= 1 region");
      }
      if (group.size() >= sim::aws_six_regions().num_regions()) {
        throw std::invalid_argument(
            context + ": 'regions' must leave at least one region on the "
                      "other side");
      }
    }
    if (e.event == "arrival_factor" &&
        e.params.get_double("factor", 1.0) <= 0.0) {
      throw std::invalid_argument(context + ": factor must be > 0");
    }
    if (e.event == "arrival_sine") {
      const double amp = e.params.get_double("amplitude", 0.5);
      if (amp < 0.0 || amp >= 1.0) {
        throw std::invalid_argument(context + ": amplitude must be in [0, 1)");
      }
      if (e.params.get_double("period_s", 60.0) <= 0.0) {
        throw std::invalid_argument(context + ": period_s must be > 0");
      }
    }
    if (e.event == "slow_region" &&
        e.params.get_double("factor", 1.0) <= 0.0) {
      throw std::invalid_argument(context + ": factor must be > 0");
    }
    if (e.event == "drop_region") {
      const double p = e.params.get_double("p", 0.0);
      if (p < 0.0 || p >= 1.0) {
        throw std::invalid_argument(context + ": p must be in [0, 1)");
      }
      if (e.params.get_double("mult", 3.0) <= 0.0) {
        throw std::invalid_argument(context + ": mult must be > 0");
      }
    }
    if (e.event == "straggle_region") {
      const double frac = e.params.get_double("frac", 0.0);
      if (frac < 0.0 || frac > 1.0) {
        throw std::invalid_argument(context + ": frac must be in [0, 1]");
      }
      if (e.params.get_double("mult", 10.0) <= 0.0) {
        throw std::invalid_argument(context + ": mult must be > 0");
      }
    }
    if (e.event == "flap_region") {
      const double period = e.params.get_double("period_ms", 10'000.0);
      if (period <= 0.0) {
        throw std::invalid_argument(context + ": period_ms must be > 0");
      }
      const double down = e.params.get_double("down_ms", period / 2.0);
      if (down <= 0.0 || down >= period) {
        throw std::invalid_argument(context +
                                    ": down_ms must be in (0, period_ms)");
      }
      if (e.params.has("until_ms") &&
          e.params.get_double("until_ms", 0.0) < 0.0) {
        throw std::invalid_argument(context + ": until_ms must be >= 0");
      }
    }
  }
}

std::vector<ScenarioEvent> Scenario::sorted() const {
  std::vector<ScenarioEvent> out = events;
  std::stable_sort(out.begin(), out.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return out;
}

std::string Scenario::to_text() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += "; ";
    out += fmt_double(e.at_ms) + " " + e.event;
    for (const auto& [k, v] : e.params.entries()) out += " " + k + "=" + v;
  }
  return out;
}

std::string Scenario::to_json(const std::string& indent) const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    out << (i > 0 ? "," : "") << "\n" << indent << "  {\"at_ms\": "
        << fmt_double(e.at_ms) << ", \"event\": \""
        << api::json_escape(e.event) << "\"";
    for (const auto& [k, v] : e.params.entries()) {
      out << ", \"" << api::json_escape(k) << "\": \"" << api::json_escape(v)
          << "\"";
    }
    out << "}";
  }
  out << "\n" << indent << "]";
  return out.str();
}

Scenario parse_scenario_text(const std::string& text) {
  Scenario scenario;
  std::stringstream entries(text);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    std::stringstream words(entry);
    std::string word;
    ScenarioEvent e;
    bool have_time = false;
    while (words >> word) {
      if (!have_time) {
        e.at_ms = parse_at_ms(word);
        have_time = true;
      } else if (e.event.empty()) {
        e.event = word;
      } else {
        e.params.set_pair(word);
      }
    }
    if (!have_time) continue;  // empty segment (trailing ';')
    if (e.event.empty()) {
      throw std::invalid_argument("scenario: entry '" + entry +
                                  "' names no event");
    }
    scenario.events.push_back(std::move(e));
  }
  return scenario;
}

Scenario scenario_from_json(const api::JsonValue& value) {
  if (!value.is_array()) {
    throw std::invalid_argument("scenario: must be an array of event objects");
  }
  Scenario scenario;
  for (const auto& item : value.array) {
    if (!item.is_object()) {
      throw std::invalid_argument(
          "scenario: each entry must be an object with at_ms and event");
    }
    ScenarioEvent e;
    bool have_time = false;
    for (const auto& [key, member] : item.object) {
      if (key == "at_ms") {
        e.at_ms = parse_at_ms(member.as_param_text());
        have_time = true;
      } else if (key == "event") {
        e.event = member.as_param_text();
      } else {
        e.params.set(key, member.as_param_text());
      }
    }
    if (!have_time || e.event.empty()) {
      throw std::invalid_argument(
          "scenario: each entry needs both 'at_ms' and 'event'");
    }
    scenario.events.push_back(std::move(e));
  }
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read scenario file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const api::JsonValue doc = api::parse_json(text.str());
    const api::JsonValue* events =
        doc.is_object() ? doc.find("scenario") : &doc;
    if (events == nullptr) {
      throw std::invalid_argument(
          "scenario file: expected an array or an object with a "
          "'scenario' member");
    }
    Scenario scenario = scenario_from_json(*events);
    scenario.validate();
    return scenario;
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace agar::scenario
