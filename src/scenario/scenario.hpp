// Scenario scripts — a declarative timeline of mid-run events that make a
// workload non-stationary: popularity shifts, arrival-rate modulation,
// region outages/restores, and latency degradation.
//
// The paper's headline claim (§IV–V) is that periodic knapsack
// reconfiguration *adapts*; a stationary Zipfian run against a healthy
// network never exercises that. A scenario is a sorted list of
// `{at_ms, event, params}` entries parsed from the spec layer (JSON array,
// or the compact one-line text form "at_ms event k=v ...; ...") and
// executed by the ScenarioEngine on the simulation's event loop.
//
// Layering: scenario sits on api (ParamMap/json) and sim (topology names);
// it knows nothing about clients. The runner applies popularity shifts to
// its workloads through a typed hook, so workload internals stay in
// client/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/param_map.hpp"
#include "common/types.hpp"

namespace agar::api {
class JsonValue;
}

namespace agar::scenario {

/// One scripted event: what fires, when, with which parameters.
struct ScenarioEvent {
  SimTimeMs at_ms = 0.0;
  std::string event;      ///< kind name, see `event_kinds()`
  api::ParamMap params;   ///< validated against the kind's schema
};

/// A popularity shift, pre-parsed for the runner's workload hook.
struct PopularityShift {
  enum class Kind { kRotate, kReseed, kFlashCrowd };
  Kind kind = Kind::kRotate;
  std::size_t rotate_by = 0;   ///< kRotate: ranks to rotate the mapping by
  std::uint64_t seed = 0;      ///< kReseed: permutation shuffle seed
  std::size_t crowd_count = 0; ///< kFlashCrowd: keys promoted to the top
  /// kFlashCrowd: rank the promoted block starts at (default: the least
  /// popular tail, the classic "cold content goes viral" shape).
  std::optional<std::size_t> crowd_from;
};

/// Self-describing event vocabulary (name, parameter schema, doc line) —
/// powers validation diagnostics and `agar_cli --list`.
struct EventKind {
  std::string name;
  api::ParamSchema schema;
  std::string description;
};

[[nodiscard]] const std::vector<EventKind>& event_kinds();
[[nodiscard]] const EventKind* find_event_kind(const std::string& name);
/// Does this event kind shift popularity (and thus need a workload hook)?
[[nodiscard]] bool is_popularity_event(const std::string& name);

struct Scenario {
  std::vector<ScenarioEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }

  /// Every event must name a known kind, carry only that kind's declared
  /// params (each parsing as its declared type), resolve any region name,
  /// and fire at a non-negative time. Throws std::invalid_argument with
  /// the offending entry.
  void validate() const;

  /// Events sorted by (at_ms, original position) — the engine schedules in
  /// this order so same-instant events fire in script order.
  [[nodiscard]] std::vector<ScenarioEvent> sorted() const;

  /// Compact one-line form: "at_ms event k=v k=v; at_ms event ...".
  [[nodiscard]] std::string to_text() const;
  /// JSON array of {"at_ms": .., "event": "..", <params>} objects,
  /// indented for embedding in ExperimentSpec::to_json.
  [[nodiscard]] std::string to_json(const std::string& indent) const;
};

/// Parse the compact text form. Empty/whitespace text is an empty scenario.
[[nodiscard]] Scenario parse_scenario_text(const std::string& text);

/// Parse a JSON array of event objects (the "scenario" spec member).
[[nodiscard]] Scenario scenario_from_json(const api::JsonValue& value);

/// Load a scenario file: either a top-level JSON array of events or an
/// object with a "scenario" member. Throws naming the path on failure.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// Resolve a scenario "region" parameter: a region name ("tokyo") or a
/// numeric id, checked against the paper's six-region topology.
[[nodiscard]] RegionId resolve_region(const std::string& text);

/// Resolve a comma-separated "regions" list (partition_regions), trimmed
/// and de-duplicated in listed order. Empty text is an empty list.
[[nodiscard]] std::vector<RegionId> resolve_region_list(
    const std::string& text);

/// Parse one event's popularity shift (kind must be popularity_rotate,
/// popularity_reseed or flash_crowd).
[[nodiscard]] PopularityShift popularity_shift_of(const ScenarioEvent& e);

}  // namespace agar::scenario
