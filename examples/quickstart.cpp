// Quickstart: stand up the paper's six-region erasure-coded store, read an
// object three ways (backend, LRU cache, Agar), and print what happened.
//
//   $ ./quickstart
//
// Walks through the public API end to end with real payload verification.
#include <iostream>

#include "client/agar_strategy.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/runner.hpp"

using namespace agar;

int main() {
  std::cout << "Agar quickstart: RS(9,3) over six regions, client in "
               "Frankfurt\n\n";

  // 1. Deploy the storage system: 20 objects of 90 KB, RS(9, 3), chunks
  //    spread round-robin over the six AWS-like regions.
  client::DeploymentConfig dep;
  dep.num_objects = 20;
  dep.object_size_bytes = 90_KB;
  dep.seed = 1;
  client::Deployment deployment(dep);

  client::ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.region = sim::region::kFrankfurt;
  ctx.verify_data = true;  // move and decode real bytes

  // 2. Read straight from the backend: latency is dominated by the most
  //    distant of the k = 9 chunks the client must fetch.
  client::BackendStrategy backend(ctx);
  const auto cold = backend.read("object0");
  std::cout << "backend read        : " << cold.latency_ms << " ms (decoded "
            << (cold.verified ? "OK" : "FAIL") << ")\n";

  // 3. An LRU cache holding full replicas: second read is a local hit.
  client::FixedChunksParams lru_params;
  lru_params.policy = client::Policy::kLru;
  lru_params.chunks_per_object = 9;
  lru_params.cache_capacity_bytes = 10_MB;
  client::FixedChunksStrategy lru(ctx, lru_params);
  (void)lru.read("object0");
  const auto lru_hit = lru.read("object0");
  std::cout << "LRU-9 second read   : " << lru_hit.latency_ms
            << " ms (full hit: " << (lru_hit.full_hit ? "yes" : "no")
            << ")\n";

  // 4. Agar: accesses train the request monitor; a reconfiguration installs
  //    the knapsack-optimal mix of chunks; later reads hit the cache.
  core::AgarNodeParams agar_params;
  agar_params.region = sim::region::kFrankfurt;
  agar_params.cache_capacity_bytes = 10_MB;
  agar_params.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
  client::AgarStrategy agar(ctx, agar_params);
  agar.warm_up();

  for (int i = 0; i < 30; ++i) (void)agar.read("object0");
  agar.node().reconfigure();
  (void)agar.read("object0");  // populates the configured chunks
  const auto agar_hit = agar.read("object0");
  std::cout << "Agar after reconfig : " << agar_hit.latency_ms
            << " ms (chunks from cache: " << agar_hit.cache_chunks
            << "/9, decoded " << (agar_hit.verified ? "OK" : "FAIL")
            << ")\n\n";

  // 5. Peek at the configuration the knapsack solver chose.
  const auto& config = agar.node().cache_manager().current();
  std::cout << "installed configuration: " << config.entries.size()
            << " object(s), " << config.total_chunks << " chunks, "
            << format_bytes(config.total_bytes) << "\n";
  for (const auto& [key, opt] : config.entries) {
    std::cout << "  " << key << ": " << opt.weight
              << " chunk(s), expected latency " << opt.expected_latency_ms
              << " ms\n";
  }
  return 0;
}
