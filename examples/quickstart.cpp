// Quickstart: stand up the paper's six-region erasure-coded store, read an
// object three ways (backend, LRU cache, Agar), and print what happened.
//
//   $ ./quickstart
//
// Walks the declarative api end to end with real payload verification:
// every client system is created from the string-keyed registry, exactly
// like `agar_cli --system <name>` would.
#include <iostream>

#include "api/api.hpp"
#include "client/agar_strategy.hpp"

using namespace agar;

int main() {
  std::cout << "Agar quickstart: RS(9,3) over six regions, client in "
               "Frankfurt\n\n";

  // 1. One spec describes the deployment every system below shares: 20
  //    objects of 90 KB, RS(9, 3), chunks spread round-robin over the six
  //    AWS-like regions, real bytes moved and decoded on every read.
  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=20", "object_bytes=90KB", "seed=1", "verify=true",
       "region=frankfurt"});
  client::Deployment deployment(base.experiment.deployment);
  const RegionId region = base.experiment.client_region;

  // 2. Read straight from the backend: latency is dominated by the most
  //    distant of the k = 9 chunks the client must fetch.
  const auto backend =
      api::make_strategy(base.with({"system=backend"}), deployment, region);
  const auto cold = backend->read("object0");
  std::cout << "backend read        : " << cold.latency_ms << " ms (decoded "
            << (cold.verified ? "OK" : "FAIL") << ")\n";

  // 3. An LRU cache holding full replicas: second read is a local hit.
  //    ("lru" is a registered cache engine run through the fixed-chunks
  //    adapter — swap the name for "arc" or "tinylfu" and nothing else
  //    changes.)
  const auto lru = api::make_strategy(
      base.with({"system=lru", "chunks=9", "cache_bytes=10MB"}), deployment,
      region);
  (void)lru->read("object0");
  const auto lru_hit = lru->read("object0");
  std::cout << "LRU-9 second read   : " << lru_hit.latency_ms
            << " ms (full hit: " << (lru_hit.full_hit ? "yes" : "no")
            << ")\n";

  // 4. Agar: accesses train the request monitor; a reconfiguration installs
  //    the knapsack-optimal mix of chunks; later reads hit the cache.
  const auto strategy = api::make_strategy(
      base.with({"system=agar", "cache_bytes=10MB"}), deployment, region);
  auto* agar_strategy = dynamic_cast<client::AgarStrategy*>(strategy.get());
  strategy->warm_up();

  for (int i = 0; i < 30; ++i) (void)strategy->read("object0");
  agar_strategy->node().reconfigure();
  (void)strategy->read("object0");  // populates the configured chunks
  const auto agar_hit = strategy->read("object0");
  std::cout << "Agar after reconfig : " << agar_hit.latency_ms
            << " ms (chunks from cache: " << agar_hit.cache_chunks
            << "/9, decoded " << (agar_hit.verified ? "OK" : "FAIL")
            << ")\n\n";

  // 5. Peek at the configuration the knapsack solver chose.
  const auto& config = agar_strategy->node().cache_manager().current();
  std::cout << "installed configuration: " << config.entries.size()
            << " object(s), " << config.total_chunks << " chunks, "
            << format_bytes(config.total_bytes) << "\n";
  for (const auto& [key, opt] : config.entries) {
    std::cout << "  " << key << ": " << opt.weight
              << " chunk(s), expected latency " << opt.expected_latency_ms
              << " ms\n";
  }
  return 0;
}
