// Geo-distributed comparison: run the paper's §V-B experiment shape from
// two vantage points (Frankfurt and Sydney) and print a side-by-side table
// of Agar vs LRU/LFU vs Backend — everything declared through the api
// spec layer.
//
//   $ ./geo_deployment
#include <iostream>

#include "api/api.hpp"
#include "client/report.hpp"

using namespace agar;

int main() {
  // Cache sized at ~10% of the working set (100 x 256 KB objects).
  const std::size_t cache = 100 * 256_KB / 10;
  const auto base = api::ExperimentSpec::from_pairs(
      {"objects=100", "object_bytes=256KB", "seed=11", "workload=zipf:1.1",
       "ops=600", "runs=2", "period_s=15",
       "cache_bytes=" + std::to_string(cache)});

  const std::vector<api::ExperimentSpec> specs = {
      base.with({"system=agar"}),
      base.with({"system=lru", "chunks=5"}),
      base.with({"system=lru", "chunks=9"}),
      base.with({"system=lfu", "chunks=5"}),
      base.with({"system=lfu", "chunks=9"}),
      base.with({"system=backend", "cache_bytes="}),
  };

  for (const std::string region : {"frankfurt", "sydney"}) {
    std::cout << "\n--- clients in " << region << " ---\n";
    std::vector<api::ExperimentSpec> here;
    for (const auto& spec : specs) here.push_back(spec.with({"region=" + region}));
    const auto reports = api::run_all(here);
    client::print_results_table(api::results_of(reports));

    // Who won?
    const api::RunReport* best = &reports[0];
    for (const auto& r : reports) {
      if (r.result.mean_latency_ms() < best->result.mean_latency_ms()) {
        best = &r;
      }
    }
    std::cout << "fastest: " << best->label() << " at "
              << client::fmt_ms(best->result.mean_latency_ms()) << " ms\n";
  }
  return 0;
}
