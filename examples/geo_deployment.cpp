// Geo-distributed comparison: run the paper's §V-B experiment shape from
// two vantage points (Frankfurt and Sydney) and print a side-by-side table
// of Agar vs LRU/LFU vs Backend.
//
//   $ ./geo_deployment
#include <iostream>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

int main() {
  client::ExperimentConfig config;
  config.deployment.num_objects = 100;
  config.deployment.object_size_bytes = 256_KB;
  config.deployment.seed = 11;
  config.workload = client::WorkloadSpec::zipfian(1.1);
  config.ops_per_run = 600;
  config.runs = 2;
  config.reconfig_period_ms = 15'000.0;

  // Cache sized at ~10% of the working set.
  const std::size_t cache = 100 * 256_KB / 10;

  const std::vector<StrategySpec> specs = {
      StrategySpec::agar(cache),     StrategySpec::lru(5, cache),
      StrategySpec::lru(9, cache),   StrategySpec::lfu(5, cache),
      StrategySpec::lfu(9, cache),   StrategySpec::backend(),
  };

  for (const RegionId region :
       {sim::region::kFrankfurt, sim::region::kSydney}) {
    config.client_region = region;
    const auto topology = sim::aws_six_regions();
    std::cout << "\n--- clients in " << topology.name(region) << " ---\n";
    const auto results = client::run_comparison(config, specs);
    client::print_results_table(results);

    // Who won?
    const client::ExperimentResult* best = &results[0];
    for (const auto& r : results) {
      if (r.mean_latency_ms() < best->mean_latency_ms()) best = &r;
    }
    std::cout << "fastest: " << best->spec.label() << " at "
              << client::fmt_ms(best->mean_latency_ms()) << " ms\n";
  }
  return 0;
}
