// Cache collaboration (§VI): Frankfurt and Dublin are 100 ms apart — close
// enough that each can serve the other's cached chunks cheaper than a
// trans-continental backend fetch. This example shows the broadcast /
// overlap machinery and how peer-aware chunk costs change the options
// Agar's planner sees.
//
//   $ ./cache_collaboration
#include <iostream>

#include "core/collaboration.hpp"
#include "client/runner.hpp"

using namespace agar;

int main() {
  std::cout << "Cache collaboration between Frankfurt and Dublin (§VI)\n\n";

  client::DeploymentConfig dep;
  dep.num_objects = 30;
  dep.object_size_bytes = 128_KB;
  dep.seed = 9;
  dep.store_payloads = false;
  client::Deployment deployment(dep);

  auto make_node = [&](RegionId region) {
    core::AgarNodeParams p;
    p.region = region;
    p.cache_capacity_bytes = 2_MB;
    p.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
    auto node = std::make_unique<core::AgarNode>(&deployment.backend(),
                                                 &deployment.network(), p);
    node->warm_up();
    return node;
  };
  auto fra = make_node(sim::region::kFrankfurt);
  auto dub = make_node(sim::region::kDublin);

  // Both regions hammer the same hot objects (European working set).
  for (int i = 0; i < 60; ++i) {
    for (const auto* key : {"object0", "object1", "object2"}) {
      (void)fra->plan_read(key);
      (void)dub->plan_read(key);
    }
  }
  fra->reconfigure();
  dub->reconfigure();

  core::CollaborationGroup group;
  group.add_node(fra.get());
  group.add_node(dub.get());
  group.exchange();

  const auto overlap =
      group.overlap(sim::region::kFrankfurt, sim::region::kDublin);
  std::cout << "configured chunks: frankfurt=" << overlap.chunks_a
            << " dublin=" << overlap.chunks_b << " shared=" << overlap.shared
            << " (" << static_cast<int>(overlap.shared_fraction() * 100)
            << "% redundancy)\n\n";

  // Peer-aware costs: Frankfurt's planner re-prices chunks Dublin caches.
  const auto plain = fra->region_manager().chunk_costs("object0");
  const auto peered = core::peer_aware_costs(
      plain, "object0", group.peers_of(sim::region::kFrankfurt),
      deployment.topology(), sim::region::kFrankfurt);
  std::cout << "chunk costs for object0 seen from Frankfurt "
               "(plain -> with Dublin's cache):\n";
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (plain[i].latency_ms == peered[i].latency_ms) continue;
    std::cout << "  chunk " << plain[i].index << " (region "
              << deployment.topology().name(plain[i].region)
              << "): " << plain[i].latency_ms << " -> "
              << peered[i].latency_ms << " ms\n";
  }

  std::cout << "\nWith peer-aware costs the knapsack would stop caching "
               "chunks Dublin already holds and spend the space on chunks "
               "neither cache has -- the 'better use of shared storage' "
               "the paper sketches.\n";
  return 0;
}
