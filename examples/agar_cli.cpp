// agar_cli — run a custom experiment from the command line.
//
//   $ ./agar_cli --system agar --region sydney --cache-mb 20 --ops 2000
//   $ ./agar_cli --system lfu --chunks 7 --workload uniform
//   $ ./agar_cli --list
//
// Every knob of the paper's evaluation is exposed: system (backend, lru,
// lfu, lfu-eviction, tinylfu, agar), chunks-per-object for the static
// policies, cache size, client region, workload (uniform or zipf skew),
// op/run counts, reconfiguration period and seed.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "client/report.hpp"
#include "client/runner.hpp"

using namespace agar;
using client::StrategySpec;

namespace {

void usage() {
  std::cout <<
      "agar_cli -- run one experiment against the simulated deployment\n"
      "\n"
      "  --system <name>     backend | lru | lfu | lfu-eviction | tinylfu |\n"
      "                      agar (default: agar)\n"
      "  --chunks <1..9>     chunks per object for lru/lfu/tinylfu "
      "(default 5)\n"
      "  --cache-mb <n>      cache capacity in MB (default 10)\n"
      "  --region <name>     frankfurt dublin virginia saopaulo tokyo "
      "sydney\n"
      "  --client-regions <a,b,..>  client populations in several regions\n"
      "                      (one cache node per region; overrides --region)\n"
      "  --arrival-rate <r>  open-loop mode: Poisson arrivals at r reads/s\n"
      "                      per region (0 = closed-loop clients, default)\n"
      "  --workload <w>      'uniform' or a zipf skew like '1.1'\n"
      "  --objects <n>       working-set size (default 300)\n"
      "  --object-kb <n>     object size in KB (default 1024)\n"
      "  --ops <n>           reads per run (default 1000)\n"
      "  --runs <n>          independent runs (default 5)\n"
      "  --period-s <n>      reconfiguration period seconds (default 30)\n"
      "  --seed <n>          RNG seed (default 42)\n"
      "  --max-outstanding <n>  per-region concurrent-fetch cap (0 = off)\n"
      "  --verify            move real bytes and RS-decode every read\n"
      "  --json              emit results as JSON (bench harnesses)\n"
      "  --list              print available systems and regions\n";
}

int fail(const std::string& message) {
  std::cerr << "agar_cli: " << message << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  client::ExperimentConfig config;
  std::string system = "agar";
  std::string region = "frankfurt";
  std::string client_regions;
  std::size_t chunks = 5;
  std::size_t cache_mb = 10;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "agar_cli: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--list") {
        std::cout << "systems: backend lru lfu lfu-eviction tinylfu agar\n"
                  << "regions:";
        const auto topology = sim::aws_six_regions();
        for (RegionId r = 0; r < topology.num_regions(); ++r) {
          std::cout << " " << topology.name(r);
        }
        std::cout << "\n";
        return 0;
      } else if (arg == "--system") {
        system = next("--system");
      } else if (arg == "--chunks") {
        chunks = std::stoul(next("--chunks"));
      } else if (arg == "--cache-mb") {
        cache_mb = std::stoul(next("--cache-mb"));
      } else if (arg == "--region") {
        region = next("--region");
      } else if (arg == "--client-regions") {
        client_regions = next("--client-regions");
      } else if (arg == "--arrival-rate") {
        config.arrival_rate_per_s = std::stod(next("--arrival-rate"));
      } else if (arg == "--max-outstanding") {
        config.max_outstanding_per_region =
            std::stoul(next("--max-outstanding"));
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--workload") {
        const std::string w = next("--workload");
        config.workload = w == "uniform"
                              ? client::WorkloadSpec::uniform()
                              : client::WorkloadSpec::zipfian(std::stod(w));
      } else if (arg == "--objects") {
        config.deployment.num_objects = std::stoul(next("--objects"));
      } else if (arg == "--object-kb") {
        config.deployment.object_size_bytes =
            std::stoul(next("--object-kb")) * 1_KB;
      } else if (arg == "--ops") {
        config.ops_per_run = std::stoul(next("--ops"));
      } else if (arg == "--runs") {
        config.runs = std::stoul(next("--runs"));
      } else if (arg == "--period-s") {
        config.reconfig_period_ms = std::stod(next("--period-s")) * 1000.0;
      } else if (arg == "--seed") {
        config.deployment.seed = std::stoull(next("--seed"));
      } else if (arg == "--verify") {
        config.verify_data = true;
      } else {
        usage();
        return fail("unknown flag " + arg);
      }
    } catch (const std::exception& e) {
      return fail("bad value for " + arg + ": " + e.what());
    }
  }

  StrategySpec spec;
  const std::size_t cache_bytes = cache_mb * 1_MB;
  if (system == "backend") {
    spec = StrategySpec::backend();
  } else if (system == "lru") {
    spec = StrategySpec::lru(chunks, cache_bytes);
  } else if (system == "lfu") {
    spec = StrategySpec::lfu(chunks, cache_bytes);
  } else if (system == "lfu-eviction") {
    spec = StrategySpec::lfu_eviction(chunks, cache_bytes);
  } else if (system == "tinylfu") {
    spec = StrategySpec::tinylfu(chunks, cache_bytes);
  } else if (system == "agar") {
    spec = StrategySpec::agar(cache_bytes);
  } else {
    return fail("unknown system '" + system + "' (try --list)");
  }

  const auto topology = sim::aws_six_regions();
  try {
    config.client_region = topology.id_of(region);
  } catch (const std::exception&) {
    return fail("unknown region '" + region + "' (try --list)");
  }
  if (!client_regions.empty()) {
    std::stringstream names(client_regions);
    std::string name;
    while (std::getline(names, name, ',')) {
      if (name.empty()) continue;
      try {
        config.client_regions.push_back(topology.id_of(name));
      } catch (const std::exception&) {
        return fail("unknown region '" + name + "' (try --list)");
      }
    }
    if (config.client_regions.empty()) {
      return fail("--client-regions needs at least one region");
    }
    config.client_region = config.client_regions.front();
  }

  if (!json) {
    std::cout << "system=" << spec.label() << " regions=";
    for (std::size_t i = 0;
         i < config.effective_client_regions().size(); ++i) {
      if (i > 0) std::cout << ",";
      std::cout << topology.name(config.effective_client_regions()[i]);
    }
    std::cout << " cache=" << cache_mb << "MB workload="
              << config.workload.label() << " objects="
              << config.deployment.num_objects << " ops="
              << config.ops_per_run << " x" << config.runs << " runs";
    if (config.arrival_rate_per_s > 0.0) {
      std::cout << " open-loop@" << config.arrival_rate_per_s << "/s";
    }
    std::cout << "\n\n";
  }

  const auto result = run_experiment(config, spec);
  if (json) {
    std::cout << client::results_json({result});
    return 0;
  }
  client::print_results_table({result});
  if (config.verify_data) {
    std::uint64_t verified = 0;
    for (const auto& run : result.runs) verified += run.verified;
    std::cout << "verified reads: " << verified << "/" << result.total_ops()
              << "\n";
  }
  return 0;
}
