// agar_cli — run experiments against the simulated deployment, driven by
// the declarative api layer.
//
//   $ ./agar_cli --system agar --region sydney --cache-mb 20 --ops 2000
//   $ ./agar_cli --system arc --chunks 5            # any registered engine
//   $ ./agar_cli --spec examples/specs/agar_vs_lfu.json --json
//   $ ./agar_cli --set workload=zipf:1.4 --set cache_bytes=20MB
//   $ ./agar_cli --list
//
// Systems, their parameters and their labels all come from the api
// registries — registering a new cache engine or strategy makes it
// runnable and listable here with no CLI changes.
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "client/report.hpp"
#include "scenario/scenario.hpp"

using namespace agar;

namespace {

void usage() {
  std::cout <<
      "agar_cli -- run experiments against the simulated deployment\n"
      "\n"
      "spec-driven interface:\n"
      "  --spec <file.json>  load experiment spec(s); 'systems' arrays and\n"
      "                      'sweep' grids expand into comparisons\n"
      "  --set key=value     set any spec key (repeatable; applies to all\n"
      "                      loaded specs). Keys: see --list\n"
      "  --scenario <file>   scripted mid-run events (outages, popularity\n"
      "                      shifts, rate surges) applied to all specs;\n"
      "                      JSON array of {at_ms, event, ...} objects\n"
      "  --window-ms <n>     windowed time-series metrics of this width\n"
      "  --shards <n>        simulation worker threads (results identical\n"
      "                      for any value; 1 = serial)\n"
      "  --json              emit results as JSON (bench harnesses)\n"
      "  --list              registered systems, engines, parameters,\n"
      "                      scenario events, regions and spec keys\n"
      "\n"
      "shorthand flags (sugar over --set):\n"
      "  --system <name>     system under test (default: agar)\n"
      "  --chunks <1..9>     chunks per object for fixed-chunks systems\n"
      "  --cache-mb <n>      cache capacity in MB\n"
      "  --region <name>     client region\n"
      "  --client-regions <a,b,..>  client populations in several regions\n"
      "  --arrival-rate <r>  open-loop Poisson arrivals (reads/s/region)\n"
      "  --workload <w>      'uniform' or a zipf skew like '1.1'\n"
      "  --objects <n>       working-set size\n"
      "  --object-kb <n>     object size in KB\n"
      "  --ops <n>           reads per run\n"
      "  --runs <n>          independent runs\n"
      "  --period-s <n>      reconfiguration period in seconds\n"
      "  --seed <n>          RNG seed\n"
      "  --max-outstanding <n>  per-region concurrent-fetch cap (0 = off)\n"
      "  --verify            move real bytes and RS-decode every read\n";
}

int fail(const std::string& message) {
  std::cerr << "agar_cli: " << message << "\n";
  return 2;
}

void print_schema(const api::ParamSchema& schema, const std::string& indent,
                  const std::string& name_prefix = "") {
  for (const auto& p : schema.params) {
    std::cout << indent << name_prefix << p.name << " ("
              << api::to_string(p.type);
    if (!p.default_value.empty()) std::cout << ", default " << p.default_value;
    std::cout << "): " << p.description << "\n";
  }
}

/// Registry-derived listing: whatever is registered is what prints.
void list_everything() {
  std::cout << "systems (run with --system <name> or system=<name>):\n";
  const auto& strategies = api::StrategyRegistry::instance();
  for (const auto& name : strategies.names()) {
    const auto& entry = strategies.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ");
  }
  std::cout << "\ncache engines (each also runs as a fixed-chunks system "
               "under its own name):\n";
  const auto& engines = api::EngineRegistry::instance();
  for (const auto& name : engines.names()) {
    const auto& entry = engines.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ");
  }
  std::cout << "\nplanners (agar control plane, planner=<name>; sub-params "
               "as planner.<param>=<value>):\n";
  const auto& planners = api::PlannerRegistry::instance();
  for (const auto& name : planners.names()) {
    const auto& entry = planners.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ", "planner.");
  }
  std::cout << "\npopularity estimators (request monitor, monitor=<name>; "
               "sub-params as monitor.<param>=<value>):\n";
  const auto& estimators = api::EstimatorRegistry::instance();
  for (const auto& name : estimators.names()) {
    const auto& entry = estimators.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ", "monitor.");
  }
  std::cout << "\nfetch policies (fault-tolerant reads, fetch=<name>; "
               "sub-params as fetch.<param>=<value>):\n";
  const auto& fetches = api::FetchPolicyRegistry::instance();
  for (const auto& name : fetches.names()) {
    const auto& entry = fetches.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ", "fetch.");
  }
  std::cout << "\ncollab tiers (cooperative caching, collab=<name>; "
               "sub-params as collab.<param>=<value>):\n";
  const auto& collabs = api::CollabRegistry::instance();
  for (const auto& name : collabs.names()) {
    const auto& entry = collabs.at(name);
    std::cout << "  " << name << " -- " << entry.description << "\n";
    print_schema(entry.schema, "      ", "collab.");
  }
  std::cout << "\nexperiment keys (--set key=value or JSON spec members):\n";
  print_schema(api::ExperimentSpec::experiment_keys(), "  ");
  std::cout << "\nscenario events (--scenario file or scenario= script):\n";
  for (const auto& kind : scenario::event_kinds()) {
    std::cout << "  " << kind.name << " -- " << kind.description << "\n";
    print_schema(kind.schema, "      ");
  }
  std::cout << "\nregions:";
  const auto topology = sim::aws_six_regions();
  for (RegionId r = 0; r < topology.num_regions(); ++r) {
    std::cout << " " << topology.name(r);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<api::ExperimentSpec> specs;
  std::vector<std::string> sets;  // applied after --spec, in order
  std::string scenario_file;      // --scenario, applied to all specs
  // Keys set via shorthand flags (--chunks, --cache-mb). Like the old CLI,
  // these are dropped silently for systems that do not declare them
  // (backend takes neither, agar no chunks); --set key=value stays strict.
  std::set<std::string> soft_keys;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "agar_cli: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--list") {
        list_everything();
        return 0;
      } else if (arg == "--spec") {
        const auto loaded = api::load_spec_file(next("--spec"));
        specs.insert(specs.end(), loaded.begin(), loaded.end());
      } else if (arg == "--set") {
        sets.push_back(next("--set"));
      } else if (arg == "--scenario") {
        scenario_file = next("--scenario");
      } else if (arg == "--window-ms") {
        sets.push_back("window_ms=" + next("--window-ms"));
      } else if (arg == "--shards") {
        sets.push_back("shards=" + next("--shards"));
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--verify") {
        sets.push_back("verify=true");
      } else if (arg == "--system") {
        sets.push_back("system=" + next("--system"));
      } else if (arg == "--chunks") {
        sets.push_back("chunks=" + next("--chunks"));
        soft_keys.insert("chunks");
      } else if (arg == "--cache-mb") {
        sets.push_back("cache_bytes=" + next("--cache-mb") + "MB");
        soft_keys.insert("cache_bytes");
      } else if (arg == "--region") {
        sets.push_back("region=" + next("--region"));
      } else if (arg == "--client-regions") {
        sets.push_back("regions=" + next("--client-regions"));
      } else if (arg == "--arrival-rate") {
        sets.push_back("arrival_rate=" + next("--arrival-rate"));
      } else if (arg == "--workload") {
        sets.push_back("workload=" + next("--workload"));
      } else if (arg == "--objects") {
        sets.push_back("objects=" + next("--objects"));
      } else if (arg == "--object-kb") {
        sets.push_back("object_bytes=" + next("--object-kb") + "KB");
      } else if (arg == "--ops") {
        sets.push_back("ops=" + next("--ops"));
      } else if (arg == "--runs") {
        sets.push_back("runs=" + next("--runs"));
      } else if (arg == "--period-s") {
        sets.push_back("period_s=" + next("--period-s"));
      } else if (arg == "--seed") {
        sets.push_back("seed=" + next("--seed"));
      } else if (arg == "--max-outstanding") {
        sets.push_back("max_outstanding=" + next("--max-outstanding"));
      } else {
        usage();
        return fail("unknown flag " + arg);
      }
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }

  try {
    const bool from_file = !specs.empty();
    if (specs.empty()) specs.emplace_back();
    scenario::Scenario scripted;
    if (!scenario_file.empty()) {
      scripted = scenario::load_scenario_file(scenario_file);
    }
    for (auto& spec : specs) {
      for (const auto& pair : sets) spec.set_pair(pair);
      if (!scripted.empty()) spec.experiment.scenario = scripted;
      const auto [name, effective] =
          api::resolve_system(spec.system, spec.params);
      const auto& schema = api::StrategyRegistry::instance().at(name).schema;
      for (const auto& key : soft_keys) {
        if (!schema.has(key)) spec.params.erase(key);
      }
      if (!from_file) {
        // Historical CLI defaults, applied only where the chosen system
        // declares the parameter (backend takes neither; agar only the
        // cache size). Spec files use the registered schema defaults.
        if (schema.has("chunks") && !spec.params.has("chunks")) {
          spec.set("chunks", "5");
        }
        if (schema.has("cache_bytes") && !spec.params.has("cache_bytes")) {
          spec.set("cache_bytes", "10MB");
        }
      }
      spec.validate();
    }

    if (!json) {
      const auto topology = sim::aws_six_regions();
      for (const auto& spec : specs) {
        const auto& e = spec.experiment;
        std::cout << "system=" << spec.label() << " regions=";
        const auto regions = e.effective_client_regions();
        for (std::size_t i = 0; i < regions.size(); ++i) {
          if (i > 0) std::cout << ",";
          std::cout << topology.name(regions[i]);
        }
        std::cout << " cache="
                  << spec.params.get_string("cache_bytes", "(default)")
                  << " workload=" << e.workload.label() << " objects="
                  << e.deployment.num_objects << " ops=" << e.ops_per_run
                  << " x" << e.runs << " runs";
        if (e.arrival_rate_per_s > 0.0) {
          std::cout << " open-loop@" << e.arrival_rate_per_s << "/s";
        }
        if (!e.scenario.empty()) {
          std::cout << " scenario=" << e.scenario.size() << " events";
        }
        std::cout << "\n";
      }
      std::cout << "\n";
    }

    const auto reports = api::run_all(specs);
    const auto results = api::results_of(reports);
    if (json) {
      std::cout << client::results_json(results);
      return 0;
    }
    client::print_results_table(results);
    for (const auto& report : reports) {
      if (!report.spec.experiment.verify_data) continue;
      std::uint64_t verified = 0;
      for (const auto& run : report.result.runs) verified += run.verified;
      std::cout << report.label() << " verified reads: " << verified << "/"
                << report.result.total_ops() << "\n";
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return 0;
}
