// Writes with cache coherence (§VI future work, implemented): a writer in
// Sydney updates an object that readers in Frankfurt have cached; Paxos
// serializes the write and the invalidation reaches every region's cache
// before the write acknowledges.
//
//   $ ./coherent_writes
#include <iostream>

#include "api/api.hpp"
#include "client/agar_strategy.hpp"
#include "client/writer.hpp"

using namespace agar;

int main() {
  std::cout << "Coherent writes through Paxos (quorum 4 of 6 regions)\n\n";

  const auto spec = api::ExperimentSpec::from_pairs(
      {"system=agar", "objects=10", "object_bytes=90KB", "seed=5",
       "verify=true", "region=frankfurt", "cache_bytes=5MB"});
  client::Deployment deployment(spec.experiment.deployment);
  paxos::CoherenceCoordinator coherence(6, &deployment.network());

  // Reader in Frankfurt with an Agar cache, built through the registry.
  const auto strategy =
      api::make_strategy(spec, deployment, spec.experiment.client_region);
  auto& reader = *dynamic_cast<client::AgarStrategy*>(strategy.get());
  reader.warm_up();
  coherence.attach_cache(sim::region::kFrankfurt, &reader.node().cache(), 12);

  // Warm the cache on object0.
  for (int i = 0; i < 30; ++i) (void)reader.read("object0");
  reader.reconfigure();
  const auto warm = reader.read("object0");
  std::cout << "reader, cached       : " << warm.latency_ms << " ms ("
            << warm.cache_chunks << "/9 chunks from cache)\n";

  // Writer in Sydney rewrites object0.
  client::WriterContext wctx;
  wctx.backend = &deployment.backend();
  wctx.network = &deployment.network();
  wctx.region = sim::region::kSydney;
  client::WriterClient writer(wctx, &coherence);
  const Bytes fresh = deterministic_payload("new-object0", 90_KB);
  const auto w = writer.write("object0", BytesView(fresh));
  std::cout << "writer (Sydney)      : " << w.latency_ms
            << " ms total, of which consensus " << w.consensus_ms
            << " ms; version " << w.version << "\n";

  // The reader's stale chunks are gone; the next read refetches and the
  // repopulated cache serves the NEW bytes.
  const auto miss = reader.read("object0");
  std::cout << "reader, post-write   : " << miss.latency_ms << " ms ("
            << miss.cache_chunks << "/9 from cache -- invalidated)\n";
  const auto rehit = reader.read("object0");
  const store::ObjectInfo info = deployment.backend().object_info("object0");
  std::cout << "reader, repopulated  : " << rehit.latency_ms << " ms ("
            << rehit.cache_chunks << "/9 from cache, object size "
            << info.object_size << ")\n";

  std::cout << "\nNo reader anywhere can observe the old value after the "
               "write acknowledged: the invalidation is ordered through "
               "the same Paxos log on every cache.\n";
  return 0;
}
