// Writes with cache coherence (§VI future work, implemented): a writer in
// Sydney updates an object that readers in Frankfurt have cached; Paxos
// serializes the write and the invalidation reaches every region's cache
// before the write acknowledges.
//
//   $ ./coherent_writes
#include <iostream>

#include "client/agar_strategy.hpp"
#include "client/runner.hpp"
#include "client/writer.hpp"

using namespace agar;

int main() {
  std::cout << "Coherent writes through Paxos (quorum 4 of 6 regions)\n\n";

  client::DeploymentConfig dep;
  dep.num_objects = 10;
  dep.object_size_bytes = 90_KB;
  dep.seed = 5;
  client::Deployment deployment(dep);
  paxos::CoherenceCoordinator coherence(6, &deployment.network());

  // Reader in Frankfurt with an Agar cache.
  client::ClientContext rctx;
  rctx.backend = &deployment.backend();
  rctx.network = &deployment.network();
  rctx.region = sim::region::kFrankfurt;
  rctx.verify_data = true;
  core::AgarNodeParams node_params;
  node_params.region = sim::region::kFrankfurt;
  node_params.cache_capacity_bytes = 5_MB;
  node_params.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
  client::AgarStrategy reader(rctx, node_params);
  reader.warm_up();
  coherence.attach_cache(sim::region::kFrankfurt, &reader.node().cache(), 12);

  // Warm the cache on object0.
  for (int i = 0; i < 30; ++i) (void)reader.read("object0");
  reader.reconfigure();
  const auto warm = reader.read("object0");
  std::cout << "reader, cached       : " << warm.latency_ms << " ms ("
            << warm.cache_chunks << "/9 chunks from cache)\n";

  // Writer in Sydney rewrites object0.
  client::WriterContext wctx;
  wctx.backend = &deployment.backend();
  wctx.network = &deployment.network();
  wctx.region = sim::region::kSydney;
  client::WriterClient writer(wctx, &coherence);
  const Bytes fresh = deterministic_payload("new-object0", 90_KB);
  const auto w = writer.write("object0", BytesView(fresh));
  std::cout << "writer (Sydney)      : " << w.latency_ms
            << " ms total, of which consensus " << w.consensus_ms
            << " ms; version " << w.version << "\n";

  // The reader's stale chunks are gone; the next read refetches and the
  // repopulated cache serves the NEW bytes.
  const auto miss = reader.read("object0");
  std::cout << "reader, post-write   : " << miss.latency_ms << " ms ("
            << miss.cache_chunks << "/9 from cache -- invalidated)\n";
  const auto rehit = reader.read("object0");
  const store::ObjectInfo info = deployment.backend().object_info("object0");
  std::cout << "reader, repopulated  : " << rehit.latency_ms << " ms ("
            << rehit.cache_chunks << "/9 from cache, object size "
            << info.object_size << ")\n";

  std::cout << "\nNo reader anywhere can observe the old value after the "
               "write acknowledged: the invalidation is ordered through "
               "the same Paxos log on every cache.\n";
  return 0;
}
