// Adaptation demo: the access pattern shifts mid-run; Agar's EWMA-driven
// reconfiguration follows it, a static LRU-9 cache follows by eviction,
// and the cache contents show the knapsack re-balancing.
//
//   $ ./adaptive_workload
#include <iostream>

#include "client/agar_strategy.hpp"
#include "client/runner.hpp"
#include "sim/event_loop.hpp"

using namespace agar;

namespace {

void print_config(const core::CacheConfiguration& config,
                  const std::string& when) {
  std::cout << "  [" << when << "] cached objects:";
  if (config.entries.empty()) std::cout << " (none)";
  for (const auto& [key, opt] : config.entries) {
    std::cout << " " << key << "(w=" << opt.weight << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Agar adapting to a popularity shift (client: Sydney)\n\n";

  client::DeploymentConfig dep;
  dep.num_objects = 30;
  dep.object_size_bytes = 128_KB;
  dep.seed = 3;
  dep.store_payloads = false;  // latency-only demo
  client::Deployment deployment(dep);

  client::ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.region = sim::region::kSydney;

  core::AgarNodeParams params;
  params.region = sim::region::kSydney;
  params.cache_capacity_bytes = 3 * 128_KB;  // room for ~2 full replicas
  params.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
  client::AgarStrategy agar(ctx, params);
  agar.warm_up();

  auto run_phase = [&](const std::string& name,
                       const std::vector<std::string>& hot_keys,
                       int rounds) {
    stats::Histogram latencies;
    for (int r = 0; r < rounds; ++r) {
      for (const auto& key : hot_keys) {
        latencies.add(agar.read(key).latency_ms);
      }
      // One reconfiguration per round of traffic: in the real system this
      // happens on the 30 s timer; here we drive it explicitly.
      if (r % 10 == 9) agar.node().reconfigure();
    }
    std::cout << name << ": mean " << latencies.mean() << " ms over "
              << latencies.count() << " reads\n";
    print_config(agar.node().cache_manager().current(), name);
  };

  run_phase("phase 1 (hot: object0, object1)", {"object0", "object1"}, 40);
  run_phase("phase 2 (hot: object20, object21)", {"object20", "object21"},
            40);

  std::cout << "\nAfter the shift the old darlings decayed out of the "
               "configuration and the new hot objects took their space.\n";
  return 0;
}
