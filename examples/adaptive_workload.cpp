// Adaptation demo: the access pattern shifts mid-run; Agar's EWMA-driven
// reconfiguration follows it, a static LRU-9 cache follows by eviction,
// and the cache contents show the knapsack re-balancing.
//
//   $ ./adaptive_workload
#include <iostream>

#include "api/api.hpp"
#include "client/agar_strategy.hpp"

using namespace agar;

namespace {

void print_config(const core::CacheConfiguration& config,
                  const std::string& when) {
  std::cout << "  [" << when << "] cached objects:";
  if (config.entries.empty()) std::cout << " (none)";
  for (const auto& [key, opt] : config.entries) {
    std::cout << " " << key << "(w=" << opt.weight << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Agar adapting to a popularity shift (client: Sydney)\n\n";

  // Latency-only demo: a small working set, cache with room for ~2 full
  // replicas. Declared through the same spec the CLI would build.
  const auto spec = api::ExperimentSpec::from_pairs(
      {"system=agar", "objects=30", "object_bytes=128KB", "seed=3",
       "region=sydney",
       "cache_bytes=" + std::to_string(3 * 128_KB)});
  client::DeploymentConfig dep = spec.experiment.deployment;
  dep.store_payloads = false;
  client::Deployment deployment(dep);

  const auto strategy = api::make_strategy(spec, deployment,
                                           spec.experiment.client_region);
  auto& agar = *dynamic_cast<client::AgarStrategy*>(strategy.get());
  agar.warm_up();

  auto run_phase = [&](const std::string& name,
                       const std::vector<std::string>& hot_keys,
                       int rounds) {
    stats::Histogram latencies;
    for (int r = 0; r < rounds; ++r) {
      for (const auto& key : hot_keys) {
        latencies.add(agar.read(key).latency_ms);
      }
      // One reconfiguration per round of traffic: in the real system this
      // happens on the 30 s timer; here we drive it explicitly.
      if (r % 10 == 9) agar.node().reconfigure();
    }
    std::cout << name << ": mean " << latencies.mean() << " ms over "
              << latencies.count() << " reads\n";
    print_config(agar.node().cache_manager().current(), name);
  };

  run_phase("phase 1 (hot: object0, object1)", {"object0", "object1"}, 40);
  run_phase("phase 2 (hot: object20, object21)", {"object20", "object21"},
            40);

  std::cout << "\nAfter the shift the old darlings decayed out of the "
               "configuration and the new hot objects took their space.\n";
  return 0;
}
