// Failure injection demo: erasure coding's whole point. Regions go down,
// clients transparently fall back to parity chunks, and (with verify mode
// on) every read still decodes byte-for-byte.
//
//   $ ./failure_recovery
#include <iostream>

#include "api/api.hpp"
#include "client/runner.hpp"

using namespace agar;

int main() {
  std::cout << "Reading through region failures (RS(9,3): any 9 of 12 "
               "chunks decode)\n\n";

  const auto spec = api::ExperimentSpec::from_pairs(
      {"system=backend", "objects=5", "object_bytes=45KB", "seed=21",
       "verify=true", "region=frankfurt"});
  client::Deployment deployment(spec.experiment.deployment);
  const auto reader =
      api::make_strategy(spec, deployment, spec.experiment.client_region);

  auto read_all = [&](const std::string& label) {
    std::size_t ok = 0;
    double worst = 0.0;
    for (int i = 0; i < 5; ++i) {
      const auto r = reader->read("object" + std::to_string(i));
      ok += r.verified ? 1 : 0;
      worst = std::max(worst, r.latency_ms);
    }
    std::cout << label << ": " << ok << "/5 objects decoded, worst latency "
              << worst << " ms\n";
  };

  read_all("all regions up           ");

  deployment.network().fail_region(sim::region::kTokyo);
  read_all("tokyo down               ");

  deployment.network().fail_region(sim::region::kVirginia);
  // Two regions down = 4 of 12 chunks gone; only 8 remain: 8 < 9 means
  // the object is unreadable. The read completes as a counted failure
  // (ReadResult::failed) — no decode runs, nothing throws.
  std::cout << "virginia down too: only 8 chunks remain -> reads must "
               "fail\n";
  std::size_t failed = 0;
  for (int i = 0; i < 5; ++i) {
    const auto r = reader->read("object" + std::to_string(i));
    if (r.failed && !r.verified) ++failed;
  }
  std::cout << "  reads failed (counted, no crash): " << failed << "/5\n";

  deployment.network().restore_region(sim::region::kTokyo);
  read_all("tokyo restored           ");

  std::cout << "\nWith one region down the client silently pulls parity "
               "chunks from further away: availability is preserved at a "
               "latency cost.\n";
  return 0;
}
