// Failure injection demo: erasure coding's whole point. Regions go down,
// clients transparently fall back to parity chunks, and (with verify mode
// on) every read still decodes byte-for-byte.
//
//   $ ./failure_recovery
#include <iostream>

#include "client/backend_strategy.hpp"
#include "client/runner.hpp"

using namespace agar;

int main() {
  std::cout << "Reading through region failures (RS(9,3): any 9 of 12 "
               "chunks decode)\n\n";

  client::DeploymentConfig dep;
  dep.num_objects = 5;
  dep.object_size_bytes = 45_KB;
  dep.seed = 21;
  client::Deployment deployment(dep);

  client::ClientContext ctx;
  ctx.backend = &deployment.backend();
  ctx.network = &deployment.network();
  ctx.region = sim::region::kFrankfurt;
  ctx.verify_data = true;

  client::BackendStrategy reader(ctx);

  auto read_all = [&](const std::string& label) {
    std::size_t ok = 0;
    double worst = 0.0;
    for (int i = 0; i < 5; ++i) {
      const auto r = reader.read("object" + std::to_string(i));
      ok += r.verified ? 1 : 0;
      worst = std::max(worst, r.latency_ms);
    }
    std::cout << label << ": " << ok << "/5 objects decoded, worst latency "
              << worst << " ms\n";
  };

  read_all("all regions up           ");

  deployment.network().fail_region(sim::region::kTokyo);
  read_all("tokyo down               ");

  deployment.network().fail_region(sim::region::kVirginia);
  // Two regions down = 4 of 12 chunks gone; only 8 remain, but a region
  // holds 2 chunks and we only lose 2+2: 8 < 9 means decode would fail...
  // except Frankfurt clients never needed the Sydney chunks: restore one.
  std::cout << "virginia down too: only 8 chunks remain -> reads must "
               "fail\n";
  bool any_failed = false;
  try {
    for (int i = 0; i < 5; ++i) {
      const auto r = reader.read("object" + std::to_string(i));
      if (!r.verified) any_failed = true;
    }
  } catch (const std::exception& e) {
    any_failed = true;
    std::cout << "  (decode threw: " << e.what() << ")\n";
  }
  std::cout << "  reads failed as expected: " << (any_failed ? "yes" : "no")
            << "\n";

  deployment.network().restore_region(sim::region::kTokyo);
  read_all("tokyo restored           ");

  std::cout << "\nWith one region down the client silently pulls parity "
               "chunks from further away: availability is preserved at a "
               "latency cost.\n";
  return 0;
}
