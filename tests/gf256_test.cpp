// Field-axiom and bulk-operation tests for GF(2^8).
#include "gf/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace agar::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(add(0x00, 0x00), 0x00);
  EXPECT_EQ(add(0xFF, 0xFF), 0x00);
  EXPECT_EQ(add(0x12, 0x34), 0x12 ^ 0x34);
}

TEST(Gf256, AdditionIsOwnInverse) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; b += 7) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(sub(add(x, y), y), x);
    }
  }
}

TEST(Gf256, MulByZeroIsZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, MulByOneIsIdentity) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
  }
}

TEST(Gf256, MulIsCommutative) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, MulIsAssociative) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, MulDistributesOverAdd) {
  Rng rng(456);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW((void)inv(0), std::domain_error);
}

TEST(Gf256, DivisionByZeroThrows) {
  EXPECT_THROW((void)div(1, 0), std::domain_error);
}

TEST(Gf256, LogOfZeroThrows) {
  EXPECT_THROW((void)log(0), std::domain_error);
}

TEST(Gf256, DivIsMulByInverse) {
  Rng rng(789);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(div(a, b), mul(a, inv(b)));
  }
}

TEST(Gf256, DivThenMulRoundTrips) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(mul(div(x, y), y), x);
    }
  }
}

TEST(Gf256, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(exp(log(x)), x);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: 2^i must visit all 255 nonzero
  // elements before repeating.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const std::uint8_t v = exp(i);
    EXPECT_FALSE(seen[v]) << "repeat at i=" << i;
    seen[v] = true;
  }
  EXPECT_EQ(exp(255), exp(0));
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 11) {
    const auto x = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 20; ++n) {
      EXPECT_EQ(pow(x, n), acc) << "a=" << a << " n=" << n;
      acc = mul(acc, x);
    }
  }
}

TEST(Gf256, PowZeroConventions) {
  EXPECT_EQ(pow(0, 0), 1);  // 0^0 == 1 by convention
  EXPECT_EQ(pow(0, 5), 0);
  EXPECT_EQ(pow(7, 0), 1);
}

TEST(Gf256, MulSliceMatchesScalar) {
  Rng rng(42);
  std::vector<std::uint8_t> src(257);
  rng.fill_bytes(src.data(), src.size());
  for (int c : {0, 1, 2, 0x1D, 0xFF}) {
    std::vector<std::uint8_t> dst(src.size());
    mul_slice(static_cast<std::uint8_t>(c), src, dst);
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(dst[i], mul(static_cast<std::uint8_t>(c), src[i]));
    }
  }
}

TEST(Gf256, MulAddSliceMatchesScalar) {
  Rng rng(43);
  std::vector<std::uint8_t> src(129), dst(129), expected(129);
  rng.fill_bytes(src.data(), src.size());
  rng.fill_bytes(dst.data(), dst.size());
  expected = dst;
  const std::uint8_t c = 0x53;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] = add(expected[i], mul(c, src[i]));
  }
  mul_add_slice(c, src, dst);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256, MulAddSliceZeroCoefficientIsNoop) {
  std::vector<std::uint8_t> src(64, 0xAB), dst(64, 0xCD);
  const auto before = dst;
  mul_add_slice(0, src, dst);
  EXPECT_EQ(dst, before);
}

TEST(Gf256, AddSliceIsXor) {
  std::vector<std::uint8_t> src{1, 2, 3}, dst{4, 5, 6};
  add_slice(src, dst);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{5, 7, 5}));
}

TEST(Gf256, SliceSizeMismatchThrows) {
  std::vector<std::uint8_t> a(3), b(4);
  EXPECT_THROW(mul_slice(2, a, b), std::invalid_argument);
  EXPECT_THROW(mul_add_slice(2, a, b), std::invalid_argument);
  EXPECT_THROW(add_slice(a, b), std::invalid_argument);
}

TEST(Gf256, EmptySlicesAreFine) {
  std::vector<std::uint8_t> empty;
  mul_slice(7, empty, empty);
  mul_add_slice(7, empty, empty);
  add_slice(empty, empty);
}

// The reducing polynomial identity: x^8 = x^4 + x^3 + x^2 + 1, i.e.
// mul(0x80, 2) == 0x1D.
TEST(Gf256, ReducingPolynomial) {
  EXPECT_EQ(mul(0x80, 0x02), 0x1D);
}

}  // namespace
}  // namespace agar::gf
