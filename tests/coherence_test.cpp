// Write coherence (§VI extension): versions, invalidation, write ordering.
#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "cache/static_cache.hpp"
#include "paxos/coherence.hpp"
#include "sim/topology.hpp"

namespace agar::paxos {
namespace {

TEST(WriteRecord, EncodeDecodeRoundTrip) {
  WriteRecord r{"object42", 7};
  const WriteRecord back = WriteRecord::decode(r.encode());
  EXPECT_EQ(back.key, "object42");
  EXPECT_EQ(back.version, 7u);
}

TEST(WriteRecord, KeysWithAtSignsSurvive) {
  WriteRecord r{"user@example", 3};
  const WriteRecord back = WriteRecord::decode(r.encode());
  EXPECT_EQ(back.key, "user@example");
  EXPECT_EQ(back.version, 3u);
}

TEST(WriteRecord, MalformedThrows) {
  EXPECT_THROW((void)WriteRecord::decode("no-version-marker"),
               std::invalid_argument);
}

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, {}, 21)),
        coordinator_(6, &network_),
        fra_cache_(1_MB),
        syd_cache_(1_MB) {
    coordinator_.attach_cache(sim::region::kFrankfurt, &fra_cache_, 12);
    coordinator_.attach_cache(sim::region::kSydney, &syd_cache_, 12);
  }

  void populate(cache::CacheEngine& cache, const ObjectKey& key) {
    for (ChunkIndex i = 0; i < 12; ++i) {
      cache.put(ChunkId{key, i}.cache_key(), Bytes(16, 1));
    }
  }

  sim::Topology topology_;
  sim::Network network_;
  CoherenceCoordinator coordinator_;
  cache::LruCache fra_cache_;
  cache::LruCache syd_cache_;
};

TEST_F(CoherenceTest, NullCacheThrows) {
  EXPECT_THROW(coordinator_.attach_cache(0, nullptr, 12),
               std::invalid_argument);
}

TEST_F(CoherenceTest, VersionsStartAtZeroAndIncrement) {
  EXPECT_EQ(coordinator_.version("k"), 0u);
  ASSERT_TRUE(coordinator_.commit_write(0, "k").has_value());
  EXPECT_EQ(coordinator_.version("k"), 1u);
  ASSERT_TRUE(coordinator_.commit_write(3, "k").has_value());
  EXPECT_EQ(coordinator_.version("k"), 2u);
}

TEST_F(CoherenceTest, WriteInvalidatesAllRegionCaches) {
  populate(fra_cache_, "obj");
  populate(syd_cache_, "obj");
  populate(fra_cache_, "other");
  ASSERT_TRUE(coordinator_.commit_write(0, "obj").has_value());
  for (ChunkIndex i = 0; i < 12; ++i) {
    EXPECT_FALSE(fra_cache_.contains(ChunkId{"obj", i}.cache_key()));
    EXPECT_FALSE(syd_cache_.contains(ChunkId{"obj", i}.cache_key()));
    // Unrelated keys untouched.
    EXPECT_TRUE(fra_cache_.contains(ChunkId{"other", i}.cache_key()));
  }
  EXPECT_EQ(coordinator_.invalidations_applied(), 24u);
}

TEST_F(CoherenceTest, CommitLatencyIsPositiveAndBounded) {
  const auto latency = coordinator_.commit_write(sim::region::kSydney, "k");
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 0.0);
  EXPECT_LT(*latency, 4000.0);
}

TEST_F(CoherenceTest, NoQuorumNoCommit) {
  network_.fail_region(1);
  network_.fail_region(2);
  network_.fail_region(3);
  populate(fra_cache_, "obj");
  EXPECT_FALSE(coordinator_.commit_write(0, "obj").has_value());
  // Failed commit must not invalidate.
  EXPECT_TRUE(fra_cache_.contains(ChunkId{"obj", 0}.cache_key()));
  EXPECT_EQ(coordinator_.version("obj"), 0u);
}

TEST_F(CoherenceTest, ConcurrentWritersSerializeThroughLog) {
  for (int i = 0; i < 10; ++i) {
    const RegionId writer = static_cast<RegionId>(i % 6);
    ASSERT_TRUE(coordinator_.commit_write(writer, "hot").has_value());
  }
  EXPECT_EQ(coordinator_.version("hot"), 10u);
  EXPECT_EQ(coordinator_.log().decided_prefix(), 10u);
}

TEST_F(CoherenceTest, InvalidationsApplyInLogSlotOrder) {
  // Interleaved writes to two objects from different regions: the log
  // serializes them, and decoding the slots back must reproduce the exact
  // commit order with per-key versions increasing monotonically — the
  // ordering guarantee that makes write-invalidate coherent.
  const std::vector<std::pair<RegionId, ObjectKey>> writes = {
      {0, "alpha"}, {5, "beta"}, {3, "alpha"}, {1, "beta"}, {4, "alpha"},
  };
  for (const auto& [region, key] : writes) {
    ASSERT_TRUE(coordinator_.commit_write(region, key).has_value());
  }
  ASSERT_EQ(coordinator_.log().decided_prefix(), writes.size());
  std::unordered_map<ObjectKey, std::uint64_t> seen;
  for (std::size_t slot = 0; slot < writes.size(); ++slot) {
    const auto record = coordinator_.log().learned(slot);
    ASSERT_TRUE(record.has_value());
    const WriteRecord w = WriteRecord::decode(*record);
    EXPECT_EQ(w.key, writes[slot].second) << "slot " << slot;
    EXPECT_EQ(w.version, ++seen[w.key]) << "slot " << slot;
  }
  EXPECT_EQ(coordinator_.version("alpha"), 3u);
  EXPECT_EQ(coordinator_.version("beta"), 2u);
}

TEST_F(CoherenceTest, StaticConfigCacheAlsoInvalidates) {
  cache::StaticConfigCache agar_cache(1_MB);
  std::unordered_set<std::string> configured;
  for (ChunkIndex i = 0; i < 12; ++i) {
    configured.insert(ChunkId{"obj", i}.cache_key());
  }
  agar_cache.install_configuration(std::move(configured));
  for (ChunkIndex i = 0; i < 12; ++i) {
    agar_cache.put(ChunkId{"obj", i}.cache_key(), Bytes(8, 2));
  }
  coordinator_.attach_cache(sim::region::kDublin, &agar_cache, 12);
  ASSERT_TRUE(coordinator_.commit_write(0, "obj").has_value());
  EXPECT_EQ(agar_cache.used_bytes(), 0u);
  // The configuration itself survives: the next read repopulates.
  EXPECT_TRUE(agar_cache.is_configured(ChunkId{"obj", 0}.cache_key()));
}

}  // namespace
}  // namespace agar::paxos
