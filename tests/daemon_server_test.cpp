// End-to-end daemon tests over a real Unix-domain socket: lifecycle
// (start -> concurrent clients -> live reload with in-flight requests ->
// clean shutdown), SIGHUP-triggered reload, and the equivalence contract —
// a replayed clients=1 runs=1 key stream served over the socket produces
// the same results_json as the in-process batch runner.
#include "daemon/server.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "api/run.hpp"
#include "client/report.hpp"
#include "client/workload.hpp"
#include "daemon/client.hpp"

namespace agar::daemon {
namespace {

// Short unique /tmp paths: sun_path is 108 bytes and tests may run in
// parallel processes.
std::string temp_path(const std::string& stem, const std::string& suffix) {
  return "/tmp/" + stem + std::to_string(::getpid()) + suffix;
}

std::string route_spec(const std::string& system, const std::string& extra) {
  return R"({"system": ")" + system +
         R"(", "region": "frankfurt", "objects": 40,
             "object_bytes": "9KB", "ops": 200, "runs": 1, "clients": 1,
             "seed": 7)" +
         extra + "}";
}

std::string write_config(const std::string& path, const std::string& listen,
                         const std::string& default_system,
                         const std::string& default_extra = "") {
  const std::string text = R"({
    "listen": ")" + listen +
                           R"(",
    "routes": [
      {"name": "hot", "tag": "hot", "spec": )" +
                           route_spec("lru", R"(, "chunks": 5,
                             "cache_bytes": "200KB")") +
                           R"(},
      {"name": "default", "spec": )" +
                           route_spec(default_system, default_extra) + R"(}
    ]
  })";
  std::ofstream out(path);
  out << text;
  out.close();
  return text;
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    config_path_ = temp_path("agard_cfg", ".json");
    socket_path_ = temp_path("agard", ".sock");
    write_config(config_path_, socket_path_, "backend");
  }

  void TearDown() override {
    ::unlink(config_path_.c_str());
    ::unlink(socket_path_.c_str());
  }

  std::unique_ptr<Server> start_server(bool install_sighup = false) {
    DaemonConfig config = load_daemon_config(config_path_);
    ServerOptions options;
    options.config_path = config_path_;
    options.install_sighup = install_sighup;
    auto server = std::make_unique<Server>(std::move(config),
                                           std::move(options));
    server->start();
    return server;
  }

  std::string config_path_;
  std::string socket_path_;
};

TEST_F(ServerFixture, ServesConcurrentClientsAndShutsDownCleanly) {
  auto server = start_server();

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 30;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DaemonClient connection = DaemonClient::connect_uds(socket_path_);
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "object" + std::to_string((c * 7 + i) % 40);
        const GetResponse response = connection.get("hot", key, false);
        if (response.status == Status::kOk) ++ok;
        EXPECT_EQ(response.route, 0u);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kOpsPerClient);

  DaemonClient control = DaemonClient::connect_uds(socket_path_);
  EXPECT_EQ(control.ping().status, Status::kOk);
  EXPECT_EQ(control.shutdown().status, Status::kOk);
  server->wait();
  server->stop();
  // The socket is gone: no half-dead daemon accepting connections.
  EXPECT_THROW(DaemonClient::connect_uds(socket_path_), std::runtime_error);
}

TEST_F(ServerFixture, UnmatchedAndUnknownRequests) {
  auto server = start_server();
  DaemonClient connection = DaemonClient::connect_uds(socket_path_);
  // 'default' has no tag/prefix filter, so only an unknown key can miss.
  EXPECT_EQ(connection.get("", "object999", false).status,
            Status::kUnknownKey);
  // A garbage body on a live connection gets a bad-request reply, keeps
  // the connection usable and does not kill the server.
  const std::string bad =
      encode_frame(MsgType::kGet, false, std::string("\x01", 1));
  const ControlReply bad_reply =
      decode_control_reply(connection.roundtrip(bad, MsgType::kGet));
  EXPECT_EQ(bad_reply.status, Status::kBadRequest);
  EXPECT_EQ(connection.ping().status, Status::kOk);
  server->stop();
}

TEST_F(ServerFixture, ReloadSwapsRoutesUnderInFlightLoad) {
  auto server = start_server();

  // Hammer the 'hot' route from two threads while the table is swapped.
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> load;
  for (int c = 0; c < 2; ++c) {
    load.emplace_back([&, c] {
      DaemonClient connection = DaemonClient::connect_uds(socket_path_);
      int i = 0;
      while (!done.load()) {
        const GetResponse response = connection.get(
            "hot", "object" + std::to_string((i++ * 11 + c) % 40), false);
        if (response.status != Status::kOk) ++failures;
      }
    });
  }

  // Swap the default route backend -> lfu (a different registered engine)
  // several times mid-load; 'hot' keeps its warm instance every time.
  DaemonClient control = DaemonClient::connect_uds(socket_path_);
  for (int swap = 0; swap < 3; ++swap) {
    if (swap % 2 == 0) {
      write_config(config_path_, socket_path_, "lfu", R"(, "chunks": 5)");
    } else {
      write_config(config_path_, socket_path_, "backend");
    }
    const ControlReply reply = control.reload("");
    ASSERT_EQ(reply.status, Status::kOk) << reply.text;
    EXPECT_NE(reply.text.find("1 kept"), std::string::npos) << reply.text;
  }
  const ControlReply routes = control.routes();
  EXPECT_NE(routes.text.find("\"system\": \"lfu\""), std::string::npos);

  // A config that fails validation must leave the old table serving.
  std::ofstream(config_path_) << R"({"routes": []})";
  EXPECT_EQ(control.reload("").status, Status::kError);
  EXPECT_EQ(control.get("hot", "object1", false).status, Status::kOk);

  done.store(true);
  for (auto& t : load) t.join();
  EXPECT_EQ(failures.load(), 0) << "reload dropped in-flight requests";
  server->stop();
}

TEST_F(ServerFixture, SighupTriggersReload) {
  auto server = start_server(/*install_sighup=*/true);
  DaemonClient control = DaemonClient::connect_uds(socket_path_);
  ASSERT_EQ(control.ping().status, Status::kOk);

  write_config(config_path_, socket_path_, "lfu", R"(, "chunks": 5)");
  ASSERT_EQ(::raise(SIGHUP), 0);
  // The handler only writes a pipe byte; the accept thread applies the
  // reload asynchronously. Poll for the visible effect.
  bool swapped = false;
  for (int i = 0; i < 100 && !swapped; ++i) {
    swapped = control.routes().text.find("\"system\": \"lfu\"") !=
              std::string::npos;
    if (!swapped) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(swapped) << "SIGHUP did not apply the new routing config";
  EXPECT_EQ(control.get("hot", "object1", false).status, Status::kOk);
  server->stop();
}

// The acceptance contract: serving the runner's exact key stream over the
// socket, then draining, yields the same results_json as the in-process
// batch run of the same spec — modulo planning_ms, which is wall clock.
TEST_F(ServerFixture, MetricsMatchInProcessRunForReplayedStream) {
  auto server = start_server();

  DaemonConfig config = load_daemon_config(config_path_);
  const api::ExperimentSpec spec = config.routes[0].spec;
  const auto& experiment = spec.experiment;

  DaemonClient connection = DaemonClient::connect_uds(socket_path_);
  client::Workload workload(
      experiment.workload, experiment.deployment.num_objects,
      client::workload_stream_seed(experiment.deployment.seed, 0, 0));
  for (std::size_t i = 0; i < experiment.ops_per_run; ++i) {
    const GetResponse response =
        connection.get("hot", workload.next_key(), false);
    ASSERT_EQ(response.status, Status::kOk);
  }
  ASSERT_EQ(connection.drain().status, Status::kOk);
  const ControlReply metrics = connection.metrics(/*results_only=*/true);
  ASSERT_EQ(metrics.status, Status::kOk);

  const api::RunReport report = api::run(spec);
  const std::string expected = client::results_json({report.result});

  const std::regex planning("\"planning_ms\": [^,}]*");
  const std::string daemon_norm =
      std::regex_replace(metrics.text, planning, "\"planning_ms\": 0");
  const std::string inproc_norm =
      std::regex_replace(expected, planning, "\"planning_ms\": 0");
  // The daemon dump covers every route; the in-process run is one system.
  // Equivalence = the in-process entry appears verbatim in the daemon dump.
  const std::string inproc_entry = inproc_norm.substr(
      inproc_norm.find('{'),
      inproc_norm.rfind('}') - inproc_norm.find('{') + 1);
  EXPECT_NE(daemon_norm.find(inproc_entry), std::string::npos)
      << "daemon:\n" << daemon_norm << "\nin-process:\n" << inproc_norm;
  server->stop();
}

}  // namespace
}  // namespace agar::daemon
