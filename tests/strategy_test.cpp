// Read strategies: latency composition, hit accounting, verify-mode decode,
// failure fallback.
#include <gtest/gtest.h>

#include <memory>

#include "client/agar_strategy.hpp"
#include "client/backend_strategy.hpp"
#include "client/fixed_chunks_strategy.hpp"
#include "client/lfu_config_strategy.hpp"

#include "api/registry.hpp"

namespace agar::client {
namespace {

/// Build a fixed-chunks strategy with its engine from the api registry.
std::unique_ptr<FixedChunksStrategy> make_fixed(ClientContext ctx,
                                                FixedChunksParams p) {
  auto engine = api::EngineRegistry::instance().create(
      p.engine, api::EngineContext{p.cache_capacity_bytes}, api::ParamMap{});
  return std::make_unique<FixedChunksStrategy>(ctx, p, std::move(engine));
}

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest()
      : topology_(sim::aws_six_regions()),
        network_(sim::LatencyModel(&topology_, zero_jitter(), 3)),
        backend_(6, ec::CodecParams{9, 3},
                 std::make_shared<ec::RoundRobinPlacement>(false)) {
    store::populate_working_set(backend_, 5, 9000);
  }

  static sim::LatencyModelParams zero_jitter() {
    sim::LatencyModelParams p;
    p.jitter_fraction = 0.0;
    // Infinite bandwidth isolates base latencies so expectations are exact.
    p.wan_bandwidth_mbps = std::numeric_limits<double>::infinity();
    p.cache_bandwidth_mbps = std::numeric_limits<double>::infinity();
    p.cache_base_ms = 55.0;
    return p;
  }

  ClientContext ctx(RegionId region, bool verify = true) {
    ClientContext c;
    c.backend = &backend_;
    c.network = &network_;
    c.region = region;
    c.decode_ms_per_mb = 0.0;  // keep latency math exact in tests
    c.verify_data = verify;
    return c;
  }

  sim::Topology topology_;
  sim::Network network_;
  store::BackendCluster backend_;
};

TEST_F(StrategyTest, BackendLatencyIsSlowestNeededChunk) {
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  const ReadResult r = s.read("object0");
  // From Frankfurt the 9th-cheapest chunk lives in Tokyo: base 1130 ms
  // (Table I ordering, scaled).
  EXPECT_DOUBLE_EQ(r.latency_ms, 1130.0);
  EXPECT_EQ(r.backend_chunks, 9u);
  EXPECT_EQ(r.cache_chunks, 0u);
  EXPECT_FALSE(r.partial_hit);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, BackendFromSydneyUsesItsOwnGeography) {
  BackendStrategy s(ctx(sim::region::kSydney));
  const ReadResult r = s.read("object0");
  // Sydney's 9th-cheapest is Frankfurt (1530): Dublin x2 and one Frankfurt
  // chunk are discarded as the m = 3 furthest.
  EXPECT_DOUBLE_EQ(r.latency_ms, 1530.0);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, BackendSurvivesRegionFailure) {
  network_.fail_region(sim::region::kTokyo);
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  const ReadResult r = s.read("object0");
  // Tokyo's chunk is replaced by a fallback (Sydney, 1530 ms).
  EXPECT_EQ(r.backend_chunks, 9u);
  EXPECT_DOUBLE_EQ(r.latency_ms, 1530.0);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, BackendSurvivesMRegionFailures) {
  // RS(9,3) with 2 chunks/region tolerates one full region loss (2 chunks)
  // plus one more chunk; failing Tokyo loses 2 chunks, still decodable.
  network_.fail_region(sim::region::kTokyo);
  BackendStrategy s(ctx(sim::region::kFrankfurt));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(s.read("object" + std::to_string(i)).verified);
  }
}

TEST_F(StrategyTest, LruFirstReadMissesThenHits) {
  FixedChunksParams p;
  p.engine = "lru";
  p.chunks_per_object = 9;
  p.cache_capacity_bytes = 100_MB;
  auto strategy = make_fixed(ctx(sim::region::kFrankfurt), p);
  FixedChunksStrategy& s = *strategy;

  const ReadResult miss = s.read("object0");
  EXPECT_FALSE(miss.partial_hit);
  EXPECT_DOUBLE_EQ(miss.latency_ms, 1130.0);

  const ReadResult hit = s.read("object0");
  EXPECT_TRUE(hit.full_hit);
  EXPECT_EQ(hit.cache_chunks, 9u);
  EXPECT_DOUBLE_EQ(hit.latency_ms, 55.0);
  EXPECT_TRUE(hit.verified);
}

TEST_F(StrategyTest, PartialCacheLatencyIsResidualBackend) {
  FixedChunksParams p;
  p.engine = "lru";
  p.chunks_per_object = 5;  // cache the 5 most distant needed chunks
  p.cache_capacity_bytes = 100_MB;
  auto strategy = make_fixed(ctx(sim::region::kFrankfurt), p);
  FixedChunksStrategy& s = *strategy;
  (void)s.read("object0");
  const ReadResult r = s.read("object0");
  EXPECT_TRUE(r.partial_hit);
  EXPECT_FALSE(r.full_hit);
  EXPECT_EQ(r.cache_chunks, 5u);
  EXPECT_EQ(r.backend_chunks, 4u);
  // Residual chunks: Dublin x2 + Frankfurt x2 -> 100 ms dominates cache 55.
  EXPECT_DOUBLE_EQ(r.latency_ms, 100.0);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, ChunksPerObjectOneBarelyHelps) {
  FixedChunksParams p;
  p.engine = "lru";
  p.chunks_per_object = 1;
  p.cache_capacity_bytes = 100_MB;
  auto strategy = make_fixed(ctx(sim::region::kFrankfurt), p);
  FixedChunksStrategy& s = *strategy;
  (void)s.read("object0");
  const ReadResult r = s.read("object0");
  // Tokyo chunk cached; Sao Paulo (470 ms) now dominates — the §IV
  // worked example's one-cached-chunk improvement (Tokyo - SaoPaulo).
  EXPECT_DOUBLE_EQ(r.latency_ms, 470.0);
}

TEST_F(StrategyTest, EvictionLfuChargesProxyOverhead) {
  FixedChunksParams p;
  p.engine = "lfu";
  p.chunks_per_object = 9;
  p.cache_capacity_bytes = 100_MB;
  p.proxy_overhead_ms = 0.5;
  auto strategy = make_fixed(ctx(sim::region::kFrankfurt), p);
  FixedChunksStrategy& s = *strategy;
  (void)s.read("object0");
  const ReadResult r = s.read("object0");
  EXPECT_DOUBLE_EQ(r.latency_ms, 55.5);
}

TEST_F(StrategyTest, PeriodicLfuHitsAfterReconfiguration) {
  LfuConfigParams p;
  p.chunks_per_object = 9;
  p.cache_capacity_bytes = 100_MB;
  LfuConfigStrategy s(ctx(sim::region::kFrankfurt), p);
  s.warm_up();
  // Before any reconfiguration nothing is configured: full backend read
  // plus the frequency proxy's 0.5 ms.
  const ReadResult cold = s.read("object0");
  EXPECT_DOUBLE_EQ(cold.latency_ms, 1130.5);
  // After the period rolls, object0 is the most frequent and gets its 9
  // designated chunks configured; the next read populates them on-path.
  s.reconfigure();
  (void)s.read("object0");
  const ReadResult hit = s.read("object0");
  EXPECT_TRUE(hit.full_hit);
  EXPECT_DOUBLE_EQ(hit.latency_ms, 55.5);
  EXPECT_TRUE(hit.verified);
}

TEST_F(StrategyTest, PeriodicLfuRanksByFrequency) {
  LfuConfigParams p;
  p.chunks_per_object = 9;
  // Room for exactly one 9-chunk object (1000-byte chunks).
  p.cache_capacity_bytes = 9 * 1000 + 100;
  LfuConfigStrategy s(ctx(sim::region::kFrankfurt), p);
  s.warm_up();
  for (int i = 0; i < 5; ++i) (void)s.read("object1");
  (void)s.read("object0");
  s.reconfigure();
  // Only the most frequent object (object1) fits the configuration.
  (void)s.read("object1");
  EXPECT_TRUE(s.read("object1").full_hit);
  EXPECT_FALSE(s.read("object0").partial_hit);
}

TEST_F(StrategyTest, PeriodicLfuPartialChunks) {
  LfuConfigParams p;
  p.chunks_per_object = 5;
  p.cache_capacity_bytes = 100_MB;
  LfuConfigStrategy s(ctx(sim::region::kFrankfurt), p);
  s.warm_up();
  (void)s.read("object0");
  s.reconfigure();
  (void)s.read("object0");
  const ReadResult r = s.read("object0");
  // 5 most distant needed chunks cached; residual is Dublin (100 ms).
  EXPECT_EQ(r.cache_chunks, 5u);
  EXPECT_FALSE(r.full_hit);
  EXPECT_TRUE(r.partial_hit);
  EXPECT_DOUBLE_EQ(r.latency_ms, 100.5);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, PeriodicLfuZeroChunksThrows) {
  LfuConfigParams p;
  p.chunks_per_object = 0;
  EXPECT_THROW(LfuConfigStrategy(ctx(0), p), std::invalid_argument);
}

TEST_F(StrategyTest, LruEvictsUnderPressure) {
  FixedChunksParams p;
  p.engine = "lru";
  p.chunks_per_object = 9;
  // Room for ~1 object's 9 chunks only (chunk = 1000 bytes for 9000-byte
  // objects).
  p.cache_capacity_bytes = 9 * 1000 + 500;
  auto strategy = make_fixed(ctx(sim::region::kFrankfurt), p);
  FixedChunksStrategy& s = *strategy;
  (void)s.read("object0");
  (void)s.read("object1");  // evicts object0's chunks
  const ReadResult r = s.read("object0");
  EXPECT_FALSE(r.full_hit);
}

TEST_F(StrategyTest, StrategyNames) {
  FixedChunksParams p;
  p.chunks_per_object = 7;
  EXPECT_EQ(make_fixed(ctx(0), p)->name(), "LRU-7");
  p.engine = "lfu";
  p.chunks_per_object = 3;
  EXPECT_EQ(make_fixed(ctx(0), p)->name(), "LFUev-3");
  LfuConfigParams lp;
  lp.chunks_per_object = 3;
  EXPECT_EQ(LfuConfigStrategy(ctx(0), lp).name(), "LFU-3");
  EXPECT_EQ(BackendStrategy(ctx(0)).name(), "Backend");
}

TEST_F(StrategyTest, ZeroChunksPerObjectThrows) {
  FixedChunksParams p;
  p.chunks_per_object = 0;
  EXPECT_THROW(make_fixed(ctx(0), p), std::invalid_argument);
}

core::AgarNodeParams agar_params(std::size_t cache_bytes) {
  core::AgarNodeParams p;
  p.region = sim::region::kFrankfurt;
  p.cache_capacity_bytes = cache_bytes;
  p.cache_manager.candidate_weights = {1, 3, 5, 7, 9};
  p.cache_manager.cache_latency_ms = 55.0;
  return p;
}

TEST_F(StrategyTest, AgarColdReadMatchesBackendPlusMonitor) {
  AgarStrategy s(ctx(sim::region::kFrankfurt), agar_params(10_MB));
  s.warm_up();
  const ReadResult r = s.read("object0");
  EXPECT_DOUBLE_EQ(r.latency_ms, 1130.5);  // backend + 0.5 ms monitor
  EXPECT_FALSE(r.partial_hit);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, AgarReadsFromCacheAfterReconfiguration) {
  AgarStrategy s(ctx(sim::region::kFrankfurt), agar_params(100_MB));
  s.warm_up();
  for (int i = 0; i < 50; ++i) (void)s.read("object0");
  s.node().reconfigure();
  // Population happened during the post-reconfig reads.
  (void)s.read("object0");
  const ReadResult r = s.read("object0");
  EXPECT_TRUE(r.full_hit);
  EXPECT_DOUBLE_EQ(r.latency_ms, 55.5);
  EXPECT_TRUE(r.verified);
}

TEST_F(StrategyTest, AgarPartialConfigurationsYieldPartialHits) {
  // Cache sized for ~2 full objects; make several objects warm so the
  // solver spreads weights.
  AgarStrategy s(ctx(sim::region::kFrankfurt),
                 agar_params(2 * 9 * 1000 + 100));
  s.warm_up();
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 5; ++k) {
      (void)s.read("object" + std::to_string(k));
    }
  }
  s.node().reconfigure();
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 5; ++k) {
      (void)s.read("object" + std::to_string(k));
    }
  }
  // At least one object must now be served with a partial hit, and all
  // reads still verify.
  bool any_hit = false;
  for (int k = 0; k < 5; ++k) {
    const ReadResult r = s.read("object" + std::to_string(k));
    any_hit |= r.partial_hit || r.full_hit;
    EXPECT_TRUE(r.verified);
  }
  EXPECT_TRUE(any_hit);
}

TEST_F(StrategyTest, AgarSurvivesRegionFailure) {
  AgarStrategy s(ctx(sim::region::kFrankfurt), agar_params(10_MB));
  s.warm_up();
  network_.fail_region(sim::region::kVirginia);
  const ReadResult r = s.read("object0");
  EXPECT_EQ(r.cache_chunks + r.backend_chunks, 9u);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace agar::client
