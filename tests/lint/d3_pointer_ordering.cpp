// agar-lint fixture: rule D3 — pointer-keyed ordered containers and
// pointer-order comparators. Address order is ASLR-dependent, so any
// ordering derived from raw pointer values changes run to run.
//
// Not compiled into any target; parsed by tools/agar-lint --self-test.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

// --- violations ---------------------------------------------------------
inline int count_by_node(const std::vector<Node*>& nodes) {
  std::map<const Node*, int> counts;  // expect(D3)
  for (Node* n : nodes) ++counts[n];
  return static_cast<int>(counts.size());
}

inline bool track(Node* n) {
  std::set<Node*> seen;  // expect(D3)
  return seen.insert(n).second;
}

using NodeOrder = std::less<Node*>;  // expect(D3)

inline void sort_by_address(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });  // expect(D3)
}

// --- waivered -----------------------------------------------------------
inline int scratch_count(const std::vector<Node*>& nodes) {
  // agar-lint: ptr-order-ok(fixture: scratch map, never iterated for output)
  std::map<const Node*, int> counts;
  for (const Node* n : nodes) ++counts[n];
  return static_cast<int>(counts.size());
}

// --- clean: stable-id keys and field comparators -------------------------
inline int count_by_id(const std::vector<Node*>& nodes) {
  std::map<int, int> counts;
  for (const Node* n : nodes) ++counts[n->id];
  return static_cast<int>(counts.size());
}

inline void sort_by_id(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}

}  // namespace fixture
