// agar-lint fixture: rule D2 — wall-clock / global-entropy sources. The
// simulation has exactly one timeline (EventLoop virtual time) and exactly
// one entropy source (seeded common::Rng streams); everything else makes
// results differ run to run.
//
// Not compiled into any target; parsed by tools/agar-lint --self-test.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

// --- violations ---------------------------------------------------------
inline long wall_clock_ms() {
  auto now = std::chrono::system_clock::now();  // expect(D2)
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

inline long unix_seconds() {
  return static_cast<long>(std::time(nullptr));  // expect(D2)
}

inline int global_rand() {
  std::srand(42);        // expect(D2)
  return std::rand();    // expect(D2)
}

inline unsigned hardware_entropy() {
  std::random_device rd;  // expect(D2)
  return rd();
}

// --- waivered -----------------------------------------------------------
inline long waived_wall_clock() {
  // agar-lint: wallclock-ok(fixture stand-in for bench-harness timing)
  auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

// --- clean: steady_clock intervals and seeded PRNG ----------------------
inline long interval_ns() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
      .count();
}

inline unsigned seeded_draw(unsigned seed) {
  std::mt19937 gen(seed);
  return gen();
}

}  // namespace fixture
