// agar-lint fixture: rule D4 — mutable namespace-scope / static state.
// Shared mutable state leaks across lanes and shard threads: the same spec
// can produce different results at different shard counts, the exact bug
// class the (when, lane, seq) event keying exists to prevent.
//
// Not compiled into any target; parsed by tools/agar-lint --self-test.
#include <cstdint>
#include <string>

namespace fixture {

// --- violations ---------------------------------------------------------
int g_total_reads = 0;  // expect(D4)

static double g_last_latency_ms = 0.0;  // expect(D4)

thread_local std::uint64_t tl_scratch = 0;  // expect(D4)

inline int next_id() {
  static int counter = 0;  // expect(D4)
  return ++counter;
}

class Telemetry {
 public:
  static std::uint64_t live_instances;  // expect(D4)
};

// --- waivered -----------------------------------------------------------
inline std::string& process_name() {
  // agar-lint: global-ok(fixture: construct-on-first-use singleton, mutated
  // only during static initialization)
  static std::string name = "agar";
  return name;
}

// --- clean: constants ----------------------------------------------------
constexpr int kMaxRetries = 5;

const std::string kDefaultRegion = "eu-west-1";

static const int kWeights[] = {1, 3, 5, 7, 9};

inline int lookup_weight(int i) { return kWeights[i % 5]; }

}  // namespace fixture
