// agar-lint fixture: rule D1 — iteration over unordered containers in a
// deterministic-domain file. Lines carrying a marker comment must be
// reported as unwaived findings; the waivered variant must be detected but
// waived; the clean variants must produce nothing.
//
// Not compiled into any target; parsed by tools/agar-lint --self-test.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// --- violation: member iteration --------------------------------------
class PopularityTable {
 public:
  int total() const {
    int sum = 0;
    for (const auto& [key, count] : counts_) {  // expect(D1)
      sum += count;
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, int> counts_;
};

// --- violation: local variable, range-for -----------------------------
inline int sum_keys() {
  std::unordered_set<int> keys{1, 2, 3};
  int sum = 0;
  for (int k : keys) {  // expect(D1)
    sum += k;
  }
  return sum;
}

// --- violation: iterator loop -----------------------------------------
inline void drain(std::unordered_map<int, int>& table) {
  for (auto it = table.begin(); it != table.end(); ++it) {  // expect(D1)
    it->second = 0;
  }
}

// --- violation: iterating a function's unordered return ---------------
std::unordered_map<int, int> make_table();

inline int sum_table() {
  int sum = 0;
  for (const auto& [k, v] : make_table()) {  // expect(D1)
    sum += v;
  }
  return sum;
}

// --- waivered: detected but not a failure ------------------------------
inline int count_all(const std::unordered_set<int>& pending) {
  int n = 0;
  // agar-lint: ordered-ok(count-only reduction; order cannot change the sum)
  for (int v : pending) {
    n += v > 0 ? 1 : 0;
  }
  return n;
}

// --- clean: ordered containers and vectors -----------------------------
inline int sum_sorted(const std::map<std::string, int>& sorted) {
  int sum = 0;
  for (const auto& [key, count] : sorted) {
    sum += count;
  }
  return sum;
}

// --- clean: member access sharing a local unordered name ---------------
// Regression for a real false positive: `result.chosen` is a vector field;
// the local unordered map that happens to share the name must not fire.
struct PlanResult {
  std::vector<int> chosen;
};

inline int stitch(const PlanResult& result) {
  std::unordered_map<int, int> chosen;
  int sum = 0;
  for (int v : result.chosen) {
    sum += v;
  }
  chosen.emplace(sum, sum);
  return sum;
}

}  // namespace fixture
