// Per-period frequency tracking with EWMA smoothing.
#include "stats/freq_tracker.hpp"

#include <gtest/gtest.h>

namespace agar::stats {
namespace {

TEST(FreqTracker, CountsWithinPeriod) {
  FreqTracker t(0.8);
  t.record("a");
  t.record("a");
  t.record("b");
  EXPECT_EQ(t.current_count("a"), 2u);
  EXPECT_EQ(t.current_count("b"), 1u);
  EXPECT_EQ(t.current_count("c"), 0u);
}

TEST(FreqTracker, PopularityZeroBeforeFirstRoll) {
  FreqTracker t(0.8);
  t.record("a");
  EXPECT_DOUBLE_EQ(t.popularity("a"), 0.0);
}

TEST(FreqTracker, RollAppliesPaperFormula) {
  FreqTracker t(0.8);
  for (int i = 0; i < 100; ++i) t.record("key1");
  t.roll_period();
  EXPECT_DOUBLE_EQ(t.popularity("key1"), 80.0);  // paper's §IV example
  for (int i = 0; i < 50; ++i) t.record("key1");
  t.roll_period();
  EXPECT_DOUBLE_EQ(t.popularity("key1"), 56.0);  // 0.8*50 + 0.2*80
}

TEST(FreqTracker, RollResetsCounts) {
  FreqTracker t(0.8);
  t.record("a");
  t.roll_period();
  EXPECT_EQ(t.current_count("a"), 0u);
}

TEST(FreqTracker, ColdKeysDecayAway) {
  FreqTracker t(0.8, /*drop_below=*/1e-3);
  t.record("once");
  t.roll_period();  // popularity 0.8
  EXPECT_GT(t.popularity("once"), 0.0);
  // 0.8 * 0.2^n < 1e-3 after a handful of idle periods.
  for (int i = 0; i < 6; ++i) t.roll_period();
  EXPECT_DOUBLE_EQ(t.popularity("once"), 0.0);
  EXPECT_EQ(t.tracked_keys(), 0u);
}

TEST(FreqTracker, HotKeysStayTracked) {
  FreqTracker t(0.8);
  for (int p = 0; p < 10; ++p) {
    for (int i = 0; i < 20; ++i) t.record("hot");
    t.roll_period();
  }
  EXPECT_NEAR(t.popularity("hot"), 20.0, 0.1);
  EXPECT_EQ(t.tracked_keys(), 1u);
}

TEST(FreqTracker, SnapshotListsTrackedKeys) {
  FreqTracker t(0.8);
  t.record("a");
  t.record("b");
  t.roll_period();
  auto snap = t.snapshot();
  std::sort(snap.begin(), snap.end());
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_DOUBLE_EQ(snap[0].second, 0.8);
}

TEST(FreqTracker, PeriodsCount) {
  FreqTracker t;
  EXPECT_EQ(t.periods(), 0u);
  t.roll_period();
  t.roll_period();
  EXPECT_EQ(t.periods(), 2u);
}

TEST(FreqTracker, RollReturnsTrackedKeyCount) {
  FreqTracker t(0.8);
  t.record("a");
  t.record("b");
  EXPECT_EQ(t.roll_period(), 2u);
}

TEST(FreqTracker, DistinguishesManyKeys) {
  FreqTracker t(0.8);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    for (int j = 0; j <= i; ++j) t.record(key);
  }
  t.roll_period();
  // Popularity must be monotone in access count.
  EXPECT_LT(t.popularity("k10"), t.popularity("k50"));
  EXPECT_LT(t.popularity("k50"), t.popularity("k99"));
}

}  // namespace
}  // namespace agar::stats
