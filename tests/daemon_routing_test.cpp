// Routing-config tests: the declarative table is the only thing standing
// between a config edit and the data plane, so parsing, matching and the
// reject matrix all get exercised directly (no sockets involved).
#include "daemon/routing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace agar::daemon {
namespace {

std::string route(const std::string& name, const std::string& tag,
                  const std::string& prefix, const std::string& spec_extra) {
  return R"({"name": ")" + name + R"(", "tag": ")" + tag +
         R"(", "prefix": ")" + prefix +
         R"(", "spec": {"system": "lru", "chunks": 5, "objects": 20,
                        "object_bytes": "9KB", "ops": 10, "runs": 1,
                        "clients": 1)" +
         spec_extra + "}}";
}

std::string config(const std::string& routes) {
  return R"({"listen": "/tmp/t.sock", "routes": [)" + routes + "]}";
}

TEST(DaemonRouting, ParsesMinimalConfig) {
  const DaemonConfig parsed = parse_daemon_config(config(route("a", "", "", "")));
  EXPECT_EQ(parsed.listen, "/tmp/t.sock");
  EXPECT_EQ(parsed.tcp_port, 0);
  EXPECT_EQ(parsed.idle_tick_ms, 0u);
  ASSERT_EQ(parsed.routes.size(), 1u);
  EXPECT_EQ(parsed.routes[0].name, "a");
  EXPECT_EQ(parsed.routes[0].spec.system, "lru");
  // Route identity is the canonical re-serialization, not the input text.
  EXPECT_EQ(parsed.routes[0].spec_json, parsed.routes[0].spec.to_json());
}

TEST(DaemonRouting, FirstMatchWins) {
  const DaemonConfig parsed = parse_daemon_config(config(
      route("hot", "hot", "", "") + "," + route("cold", "", "cold", "") +
      "," + route("fallback", "", "", "")));
  const auto& routes = parsed.routes;
  EXPECT_EQ(match_route(routes, "hot", "object1"), 0u);
  // Tagged requests can still fall through to untagged rules.
  EXPECT_EQ(match_route(routes, "other", "coldstore3"), 1u);
  EXPECT_EQ(match_route(routes, "", "object1"), 2u);
  EXPECT_EQ(match_route(routes, "hot", "coldstore3"), 0u)
      << "tag match outranks prefix by file order";
}

TEST(DaemonRouting, NoMatchIsEmpty) {
  const DaemonConfig parsed =
      parse_daemon_config(config(route("only", "tagged", "", "")));
  EXPECT_FALSE(match_route(parsed.routes, "", "object1").has_value());
  EXPECT_FALSE(match_route(parsed.routes, "other", "object1").has_value());
}

TEST(DaemonRouting, PrefixMatchesKeyStart) {
  const DaemonConfig parsed =
      parse_daemon_config(config(route("p", "", "obj", "")));
  EXPECT_TRUE(match_route(parsed.routes, "", "object9").has_value());
  EXPECT_FALSE(match_route(parsed.routes, "", "xobject9").has_value());
}

TEST(DaemonRouting, RejectsEmptyRouteList) {
  EXPECT_THROW(parse_daemon_config(R"({"routes": []})"),
               std::invalid_argument);
}

TEST(DaemonRouting, RejectsDuplicateNames) {
  EXPECT_THROW(parse_daemon_config(
                   config(route("a", "", "", "") + "," + route("a", "x", "", ""))),
               std::invalid_argument);
}

TEST(DaemonRouting, RejectsMissingName) {
  EXPECT_THROW(
      parse_daemon_config(config(R"({"spec": {"system": "backend"}})")),
      std::invalid_argument);
}

TEST(DaemonRouting, RejectsMissingSpec) {
  EXPECT_THROW(parse_daemon_config(config(R"({"name": "a"})")),
               std::invalid_argument);
}

TEST(DaemonRouting, RejectsUnknownSystem) {
  EXPECT_THROW(parse_daemon_config(config(
                   R"({"name": "a", "spec": {"system": "nonesuch"}})")),
               std::invalid_argument);
}

TEST(DaemonRouting, RejectsBatchOnlySpecShapes) {
  // Multi-region, sharded, scripted, windowed and cooperative specs are
  // batch-run features; each must fail at parse time, not at serve time.
  EXPECT_THROW(parse_daemon_config(config(route(
                   "a", "", "", R"(, "regions": "frankfurt,dublin")"))),
               std::invalid_argument);
  EXPECT_THROW(
      parse_daemon_config(config(route("a", "", "", R"(, "shards": 2)"))),
      std::invalid_argument);
  EXPECT_THROW(parse_daemon_config(config(route(
                   "a", "", "",
                   R"(, "scenario": [{"at_ms": 10, "event": "drop_region",
                       "region": "dublin", "p": 0.5}])"))),
               std::invalid_argument);
  EXPECT_THROW(parse_daemon_config(
                   config(route("a", "", "", R"(, "window_ms": 1000)"))),
               std::invalid_argument);
  EXPECT_THROW(parse_daemon_config(config(route(
                   "a", "", "", R"(, "collab": "broadcast")"))),
               std::invalid_argument);
}

TEST(DaemonRouting, RejectsOutOfRangeListenerSettings) {
  EXPECT_THROW(parse_daemon_config(
                   R"({"tcp_port": 70000, "routes": [)" +
                   route("a", "", "", "") + "]}"),
               std::invalid_argument);
}

TEST(DaemonRouting, LoadRejectsMissingFile) {
  EXPECT_THROW(load_daemon_config("/nonexistent/nope.json"),
               std::invalid_argument);
}

}  // namespace
}  // namespace agar::daemon
