// Topology: validation plus the paper's six-region deployment invariants.
#include "sim/topology.hpp"

#include <gtest/gtest.h>

namespace agar::sim {
namespace {

TEST(Topology, RejectsNonSquare) {
  EXPECT_THROW(Topology({"a", "b"}, {{1, 2}}), std::invalid_argument);
  EXPECT_THROW(Topology({"a", "b"}, {{1, 2}, {2}}), std::invalid_argument);
}

TEST(Topology, RejectsAsymmetric) {
  EXPECT_THROW(Topology({"a", "b"}, {{0, 1}, {2, 0}}), std::invalid_argument);
}

TEST(Topology, RejectsNegativeLatency) {
  EXPECT_THROW(Topology({"a", "b"}, {{0, -1}, {-1, 0}}),
               std::invalid_argument);
}

TEST(Topology, IdOfLookup) {
  const Topology t = aws_six_regions();
  EXPECT_EQ(t.id_of("frankfurt"), region::kFrankfurt);
  EXPECT_EQ(t.id_of("sydney"), region::kSydney);
  EXPECT_THROW((void)t.id_of("mars"), std::out_of_range);
}

TEST(Topology, SixRegions) {
  const Topology t = aws_six_regions();
  EXPECT_EQ(t.num_regions(), 6u);
  EXPECT_EQ(t.name(region::kFrankfurt), "frankfurt");
  EXPECT_EQ(t.name(region::kDublin), "dublin");
  EXPECT_EQ(t.name(region::kVirginia), "virginia");
  EXPECT_EQ(t.name(region::kSaoPaulo), "saopaulo");
  EXPECT_EQ(t.name(region::kTokyo), "tokyo");
  EXPECT_EQ(t.name(region::kSydney), "sydney");
}

TEST(Topology, MatrixIsSymmetric) {
  const Topology t = aws_six_regions();
  for (RegionId a = 0; a < 6; ++a) {
    for (RegionId b = 0; b < 6; ++b) {
      EXPECT_EQ(t.base_latency_ms(a, b), t.base_latency_ms(b, a));
    }
  }
}

TEST(Topology, LocalIsCheapest) {
  const Topology t = aws_six_regions();
  for (RegionId r = 0; r < 6; ++r) {
    for (RegionId other = 0; other < 6; ++other) {
      if (other == r) continue;
      EXPECT_LT(t.base_latency_ms(r, r), t.base_latency_ms(r, other));
    }
  }
}

// The paper's Table I ordering as seen from Frankfurt:
// Frankfurt < Dublin < N. Virginia < Sao Paulo < Tokyo < Sydney.
TEST(Topology, TableOneOrderingFromFrankfurt) {
  const Topology t = aws_six_regions();
  const auto order = t.regions_by_distance(region::kFrankfurt);
  EXPECT_EQ(order[0], region::kFrankfurt);
  EXPECT_EQ(order[1], region::kDublin);
  EXPECT_EQ(order[2], region::kVirginia);
  EXPECT_EQ(order[3], region::kSaoPaulo);
  EXPECT_EQ(order[4], region::kTokyo);
  EXPECT_EQ(order[5], region::kSydney);
}

TEST(Topology, SydneyIsFarFromEverythingButTokyo) {
  // §V-B: "Sydney ... being far away from all other regions"; its nearest
  // backend neighbours are Tokyo (and in our matrix Virginia).
  const Topology t = aws_six_regions();
  const auto order = t.regions_by_distance(region::kSydney);
  EXPECT_EQ(order[0], region::kSydney);
  EXPECT_EQ(order[1], region::kTokyo);
}

TEST(Topology, RegionsByDistanceIsPermutation) {
  const Topology t = aws_six_regions();
  for (RegionId r = 0; r < 6; ++r) {
    auto order = t.regions_by_distance(r);
    std::sort(order.begin(), order.end());
    for (RegionId i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace agar::sim
